//! Meta-crate re-exporting the whole reproduction suite.
pub use dsp;
pub use hspa_phy;
pub use resilience_core;
pub use silicon;
