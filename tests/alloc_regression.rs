//! Steady-state zero-allocation invariant of the packet hot path.
//!
//! `simulate_packet_with` is documented to perform no heap allocation
//! once its [`PacketScratch`] is warm: every buffer in the chain —
//! encode bit vectors, symbol/LLR vectors, the turbo trellis matrices,
//! the MMSE design workspace, the channel realization — lives in the
//! scratch and is reused in place. This test pins the invariant by
//! snapshotting the capacity of every reachable heap buffer
//! ([`PacketScratch::heap_capacities`]) after a warm-up packet and
//! asserting that further packets never grow any of them. A regression
//! (someone reintroducing a per-packet `Vec` into scratch state) shows
//! up as a capacity that changed between runs.

use rand::SeedableRng;

use resilience_core::config::{ChannelKind, SystemConfig};
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{LinkSimulator, PacketScratch};

fn assert_steady_state(cfg: SystemConfig, storage: &StorageConfig, snr_db: f64, label: &str) {
    let sim = LinkSimulator::new(cfg);
    let mut buffer = build_buffer(&cfg, storage, 7);
    let mut scratch = PacketScratch::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Warm-up: first packet sizes every buffer (and, on fading channels,
    // the largest realization seen so far sizes the tap vector — run a
    // few packets so steady state is actually reached).
    for p in 0..4u64 {
        buffer.begin_packet(p);
        sim.simulate_packet_with(snr_db, &mut buffer, &mut rng, &mut scratch);
    }
    let warm = scratch.heap_capacities();
    assert!(
        warm.iter().any(|&c| c > 0),
        "{label}: scratch should own warm buffers"
    );
    for p in 4..12u64 {
        buffer.begin_packet(p);
        sim.simulate_packet_with(snr_db, &mut buffer, &mut rng, &mut scratch);
        assert_eq!(
            warm,
            scratch.heap_capacities(),
            "{label}: a scratch buffer grew after warm-up (packet {p}) — \
             the steady-state zero-allocation invariant is broken"
        );
    }
}

#[test]
fn awgn_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::fast_test();
    assert_steady_state(cfg, &StorageConfig::Perfect, 8.0, "awgn/perfect");
}

#[test]
fn faulty_storage_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::fast_test();
    let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
    // Low SNR: retransmissions and full decoder iterations exercised.
    assert_steady_state(cfg, &storage, 2.0, "awgn/faulty10");
}

#[test]
fn dispersive_mmse_chain_is_allocation_free_after_warmup() {
    // Vehicular A at chip rate: the full Toeplitz/Cholesky MMSE design
    // runs every transmission — the heaviest scratch user.
    let mut cfg = SystemConfig::fast_test();
    cfg.channel = ChannelKind::VehicularA;
    cfg.equalizer_taps = 21;
    assert_steady_state(cfg, &StorageConfig::Quantized, 15.0, "veha/quantized");
}

#[test]
fn paper_config_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::paper_64qam();
    let storage = StorageConfig::msb_protected(4, 0.10, cfg.llr_bits);
    assert_steady_state(cfg, &storage, 12.0, "paper/hybrid4msb");
}
