//! Steady-state zero-allocation invariant of the packet hot path.
//!
//! `simulate_packet_with` is documented to perform no heap allocation
//! once its [`PacketScratch`] is warm: every buffer in the chain —
//! encode bit vectors, symbol/LLR vectors, the turbo trellis matrices,
//! the MMSE design workspace, the channel realization — lives in the
//! scratch and is reused in place. This test pins the invariant by
//! snapshotting the capacity of every reachable heap buffer
//! ([`PacketScratch::heap_capacities`]) after a warm-up packet and
//! asserting that further packets never grow any of them. A regression
//! (someone reintroducing a per-packet `Vec` into scratch state) shows
//! up as a capacity that changed between runs.

use rand::SeedableRng;

use resilience_core::config::{ChannelKind, SystemConfig};
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{LinkSimulator, PacketScratch};

fn assert_steady_state(cfg: SystemConfig, storage: &StorageConfig, snr_db: f64, label: &str) {
    let sim = LinkSimulator::new(cfg);
    let mut buffer = build_buffer(&cfg, storage, 7);
    let mut scratch = PacketScratch::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Warm-up: first packet sizes every buffer (and, on fading channels,
    // the largest realization seen so far sizes the tap vector — run a
    // few packets so steady state is actually reached).
    for p in 0..4u64 {
        buffer.begin_packet(p);
        sim.simulate_packet_with(snr_db, &mut buffer, &mut rng, &mut scratch);
    }
    let warm = scratch.heap_capacities();
    assert!(
        warm.iter().any(|&c| c > 0),
        "{label}: scratch should own warm buffers"
    );
    for p in 4..12u64 {
        buffer.begin_packet(p);
        sim.simulate_packet_with(snr_db, &mut buffer, &mut rng, &mut scratch);
        assert_eq!(
            warm,
            scratch.heap_capacities(),
            "{label}: a scratch buffer grew after warm-up (packet {p}) — \
             the steady-state zero-allocation invariant is broken"
        );
    }
}

#[test]
fn awgn_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::fast_test();
    assert_steady_state(cfg, &StorageConfig::Perfect, 8.0, "awgn/perfect");
}

#[test]
fn faulty_storage_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::fast_test();
    let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
    // Low SNR: retransmissions and full decoder iterations exercised.
    assert_steady_state(cfg, &storage, 2.0, "awgn/faulty10");
}

#[test]
fn dispersive_mmse_chain_is_allocation_free_after_warmup() {
    // Vehicular A at chip rate: the full Toeplitz/Cholesky MMSE design
    // runs every transmission — the heaviest scratch user.
    let mut cfg = SystemConfig::fast_test();
    cfg.channel = ChannelKind::VehicularA;
    cfg.equalizer_taps = 21;
    assert_steady_state(cfg, &StorageConfig::Quantized, 15.0, "veha/quantized");
}

#[test]
fn paper_config_chain_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::paper_64qam();
    let storage = StorageConfig::msb_protected(4, 0.10, cfg.llr_bits);
    assert_steady_state(cfg, &storage, 12.0, "paper/hybrid4msb");
}

#[test]
fn earlystop_tier_is_allocation_free_after_warmup() {
    let cfg = SystemConfig::fast_test().with_tier(hspa_phy::turbo::AccuracyTier::EarlyStop);
    let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
    assert_steady_state(cfg, &storage, 2.0, "earlystop/faulty10");
}

#[test]
fn fast32_tier_is_allocation_free_after_warmup() {
    // Fast32 routes the scalar per-packet path through a one-lane
    // `TurboBatchScratch`, whose buffers `PacketScratch::heap_capacities`
    // now reports — this pins the f32 lane storage too.
    let cfg = SystemConfig::fast_test().with_tier(hspa_phy::turbo::AccuracyTier::Fast32);
    let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
    assert_steady_state(cfg, &storage, 2.0, "fast32/faulty10");
}

/// The batched wave path: after one warm wave, further waves must not
/// grow any heap buffer — per-lane `PacketScratch`es, the shared
/// `TurboBatchScratch` (SoA trellis + staging + per-lane outputs), or
/// the `WaveScratch` bookkeeping.
#[test]
fn batched_wave_path_is_allocation_free_after_warmup() {
    use resilience_core::simulator::{PacketOutcome, WaveScratch};

    const LANES: usize = 8;
    for tier in hspa_phy::turbo::AccuracyTier::ALL {
        let cfg = SystemConfig::fast_test().with_tier(tier);
        let sim = LinkSimulator::new(cfg);
        let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
        let mut buffers: Vec<_> = (0..LANES)
            .map(|l| build_buffer(&cfg, &storage, 7 + l as u64))
            .collect();
        let mut scratches: Vec<PacketScratch> = (0..LANES).map(|_| PacketScratch::new()).collect();
        let mut batch = hspa_phy::turbo::TurboBatchScratch::new();
        let mut wave = WaveScratch::new();
        let mut out = vec![PacketOutcome::default(); LANES];

        let capacities = |scratches: &[PacketScratch],
                          batch: &hspa_phy::turbo::TurboBatchScratch,
                          wave: &WaveScratch| {
            let mut caps: Vec<usize> = Vec::new();
            for s in scratches {
                caps.extend(s.heap_capacities());
            }
            batch.heap_capacities(&mut caps);
            wave.heap_capacities(&mut caps);
            caps
        };

        let run_wave = |wave_idx: u64,
                        buffers: &mut [Box<dyn hspa_phy::harq::LlrBuffer + Send>],
                        scratches: &mut [PacketScratch],
                        batch: &mut hspa_phy::turbo::TurboBatchScratch,
                        wave: &mut WaveScratch,
                        out: &mut [PacketOutcome]| {
            let mut rngs: Vec<rand::rngs::StdRng> = (0..LANES)
                .map(|l| {
                    let pseed = dsp::rng::packet_seed(3, wave_idx * LANES as u64 + l as u64);
                    buffers[l].begin_packet(pseed);
                    rand::rngs::StdRng::seed_from_u64(pseed)
                })
                .collect();
            sim.simulate_wave_with(2.0, buffers, &mut rngs, scratches, batch, wave, out);
        };

        for w in 0..4u64 {
            run_wave(
                w,
                &mut buffers,
                &mut scratches,
                &mut batch,
                &mut wave,
                &mut out,
            );
        }
        let warm = capacities(&scratches, &batch, &wave);
        assert!(
            warm.iter().any(|&c| c > 0),
            "{tier}: wave scratch should own warm buffers"
        );
        for w in 4..10u64 {
            run_wave(
                w,
                &mut buffers,
                &mut scratches,
                &mut batch,
                &mut wave,
                &mut out,
            );
            assert_eq!(
                warm,
                capacities(&scratches, &batch, &wave),
                "{tier}: a wave-path buffer grew after warm-up (wave {w}) — \
                 the batched steady-state zero-allocation invariant is broken"
            );
        }
    }
}
