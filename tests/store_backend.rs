//! Cross-backend equivalence of the result-store redesign: the storage
//! backend is an operational knob, never part of a campaign's identity.
//! For any settings, a campaign run against the indexed segment backend
//! must produce a manifest **byte-identical** to the JSONL run's — and
//! that must survive every workflow that rewrites or replays stores:
//! resume, shard merge, a rescue over a truncated store, and the
//! `export`/`import` interchange path.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use resilience_core::campaign::store::{self, ChunkId};
use resilience_core::campaign::{
    shard, BackendKind, Campaign, CampaignPoint, CampaignSettings, ShardSpec,
};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;

const NAME: &str = "xbackend";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-backend-prop-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn demo_points(cfg: &SystemConfig, max_packets: usize) -> Vec<CampaignPoint> {
    vec![
        CampaignPoint {
            label: "clean high SNR".into(),
            storage: StorageConfig::Quantized,
            snr_db: 25.0,
            max_packets,
            seed: 31,
            fault_seed: None,
        },
        CampaignPoint {
            label: "faulty low SNR".into(),
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 4.0,
            max_packets,
            seed: 32,
            fault_seed: None,
        },
    ]
}

/// Runs the demo campaign in `dir`, returning its report.
fn run_campaign(
    dir: &Path,
    settings: CampaignSettings,
    max_packets: usize,
) -> resilience_core::campaign::CampaignReport {
    let cfg = SystemConfig::fast_test();
    let sim = LinkSimulator::new(cfg);
    let campaign = Campaign::new(NAME, settings, SimulationEngine::serial()).with_store_dir(dir);
    campaign.run(&sim, &demo_points(&cfg, max_packets))
}

fn manifest_bytes(dir: &Path, settings: &CampaignSettings) -> Vec<u8> {
    fs::read(dir.join(shard::manifest_file(NAME, settings.shard))).unwrap()
}

fn store_path(dir: &Path, settings: &CampaignSettings) -> PathBuf {
    dir.join(shard::store_file(NAME, settings.shard, settings.backend))
}

/// The store's record set in canonical (sorted) order.
fn sorted_records(path: &Path) -> Vec<(ChunkId, hspa_phy::harq::HarqStats)> {
    let (mut records, torn) = store::load_all(path).unwrap();
    assert_eq!(torn, 0, "{}: unexpected torn records", path.display());
    records.sort_by_key(|(id, _)| *id);
    records
}

/// Manifest bytes after the degenerate 0/1 merge, which normalizes the
/// resume-provenance counters away — a resumed run records its store
/// hits in the manifest, so byte-comparing it against a fresh run only
/// makes sense post-merge (exactly what the dispatcher relies on).
fn merged_manifest_bytes(dir: &Path, settings: &CampaignSettings, tag: &str) -> Vec<u8> {
    let out = dir.join(format!("merged-{tag}"));
    shard::merge_manifests(
        NAME,
        &[dir.join(shard::manifest_file(NAME, settings.shard))],
        &out,
    )
    .unwrap();
    fs::read(out.join(shard::manifest_file(NAME, ShardSpec::single()))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any chunk schedule: (a) JSONL and indexed runs end with
    /// byte-identical manifests and identical record sets; (b) resuming
    /// the indexed store serves everything from disk and leaves the
    /// manifest untouched; (c) a rescue over a truncated indexed store
    /// (any cut point) reconverges to the same bytes.
    #[test]
    fn indexed_backend_is_byte_identical_to_jsonl(
        initial_chunk in 1usize..5,
        max_packets in 1usize..16,
        cut_code in 0usize..1000,
    ) {
        let tag = format!("eq-{initial_chunk}-{max_packets}-{cut_code}");
        let jsonl_dir = temp_dir(&format!("{tag}-jsonl"));
        let seg_dir = temp_dir(&format!("{tag}-seg"));
        let jsonl = CampaignSettings {
            initial_chunk,
            backend: BackendKind::Jsonl,
            ..Default::default()
        };
        let seg = CampaignSettings {
            backend: BackendKind::Indexed,
            ..jsonl
        };

        run_campaign(&jsonl_dir, jsonl, max_packets);
        run_campaign(&seg_dir, seg, max_packets);
        let reference = manifest_bytes(&jsonl_dir, &jsonl);
        prop_assert_eq!(
            &reference,
            &manifest_bytes(&seg_dir, &seg),
            "backend choice leaked into the manifest"
        );
        let records = sorted_records(&store_path(&jsonl_dir, &jsonl));
        prop_assert_eq!(&records, &sorted_records(&store_path(&seg_dir, &seg)));

        // Resume: every chunk comes back from the segment index, and
        // after provenance normalization the manifest bytes still match
        // the fresh JSONL run's.
        let normalized = merged_manifest_bytes(&jsonl_dir, &jsonl, "ref");
        let resumed = run_campaign(&seg_dir, seg, max_packets);
        prop_assert_eq!(resumed.chunks_from_store(), records.len() as u64);
        prop_assert_eq!(&normalized, &merged_manifest_bytes(&seg_dir, &seg, "resume"));

        // Rescue: keep only a prefix of the indexed store (what a killed
        // leg leaves) and reconverge over it.
        let seg_store = store_path(&seg_dir, &seg);
        let (full, _) = store::load_all(&seg_store).unwrap();
        let k = cut_code % (full.len() + 1);
        store::write_records(&seg_store, &full[..k]).unwrap();
        let rescued = run_campaign(&seg_dir, seg, max_packets);
        prop_assert_eq!(rescued.chunks_from_store(), k as u64);
        prop_assert_eq!(&normalized, &merged_manifest_bytes(&seg_dir, &seg, "rescue"));
        prop_assert_eq!(&records, &sorted_records(&seg_store));

        let _ = fs::remove_dir_all(&jsonl_dir);
        let _ = fs::remove_dir_all(&seg_dir);
    }

    /// Sharded legs on the indexed backend merge to the same bytes as a
    /// single-host JSONL run — the dispatched-campaign CI invariant,
    /// now across backends.
    #[test]
    fn indexed_shards_merge_to_the_single_host_jsonl_manifest(
        initial_chunk in 1usize..5,
        max_packets in 1usize..16,
    ) {
        let tag = format!("merge-{initial_chunk}-{max_packets}");
        let single_dir = temp_dir(&format!("{tag}-single"));
        let shard_dir = temp_dir(&format!("{tag}-shards"));
        let single = CampaignSettings {
            initial_chunk,
            ..Default::default()
        };
        run_campaign(&single_dir, single, max_packets);

        for i in 0..2 {
            let leg = CampaignSettings {
                shard: ShardSpec::new(i, 2).unwrap(),
                backend: BackendKind::Indexed,
                ..single
            };
            run_campaign(&shard_dir, leg, max_packets);
        }
        let report = shard::merge(NAME, &shard_dir, &shard_dir).unwrap();
        prop_assert_eq!(
            fs::read(&report.manifest_path).unwrap(),
            manifest_bytes(&single_dir, &single),
            "merged indexed shards diverge from the single-host run"
        );
        // The merged store inherits the legs' backend and holds the
        // same canonical record set as the single-host store.
        prop_assert!(report.store_path.extension().is_some_and(|e| e == "seg"));
        prop_assert_eq!(
            sorted_records(&report.store_path),
            sorted_records(&store_path(&single_dir, &single))
        );

        let _ = fs::remove_dir_all(&single_dir);
        let _ = fs::remove_dir_all(&shard_dir);
    }

    /// `export` → `import` → `export` is an identity: the JSONL
    /// interchange file comes back byte-for-byte, and the re-imported
    /// segment store backs the campaign exactly like the original.
    #[test]
    fn export_import_round_trip_is_lossless(
        initial_chunk in 1usize..5,
        max_packets in 1usize..16,
    ) {
        let tag = format!("io-{initial_chunk}-{max_packets}");
        let dir = temp_dir(&tag);
        let seg = CampaignSettings {
            initial_chunk,
            backend: BackendKind::Indexed,
            ..Default::default()
        };
        run_campaign(&dir, seg, max_packets);
        let seg_store = store_path(&dir, &seg);
        let reference = merged_manifest_bytes(&dir, &seg, "ref");

        let export1 = dir.join("interchange-1.jsonl");
        let export2 = dir.join("interchange-2.jsonl");
        store::convert(&seg_store, &export1).unwrap();

        // Import into a fresh campaign directory, then export again.
        let dir2 = temp_dir(&format!("{tag}-reimport"));
        fs::create_dir_all(&dir2).unwrap();
        let reimported = dir2.join(shard::store_file(NAME, seg.shard, seg.backend));
        store::convert(&export1, &reimported).unwrap();
        store::convert(&reimported, &export2).unwrap();
        prop_assert_eq!(
            fs::read(&export1).unwrap(),
            fs::read(&export2).unwrap(),
            "export -> import -> export must be byte-identical"
        );

        // The re-imported store resumes the campaign without simulating
        // a single packet, to the identical normalized manifest.
        let resumed = run_campaign(&dir2, seg, max_packets);
        prop_assert_eq!(resumed.chunks_from_store(), sorted_records(&reimported).len() as u64);
        prop_assert_eq!(&reference, &merged_manifest_bytes(&dir2, &seg, "reimport"));

        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }
}
