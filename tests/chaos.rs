//! Chaos-hardening integration tests: the failure-shaped store states a
//! killed or faulty leg leaves behind must degrade into *counted*,
//! recoverable conditions, never corruption of campaign results.
//!
//! * A torn JSONL tail (a writer killed mid-append) is dropped on
//!   resume, counted in `store_torn_tails_dropped`, and the store stays
//!   appendable.
//! * A segment-index entry pointing at an unreadable frame is served as
//!   a miss, counted in `store_index_stale_misses` — never wrong data.
//! * `partition_store_into_slices` (elastic re-sharding's storage half)
//!   moves every surviving record to exactly the slice that owns it and
//!   removes the parent store.
//! * A partial merge of the surviving shards of an abandoned dispatch
//!   names the missing points and still passes `verify` — including the
//!   `--strict` provenance audit.

use std::fs;
use std::path::PathBuf;

use hspa_phy::harq::HarqStats;
use resilience_core::campaign::store::{self, ChunkId, ResultStore};
use resilience_core::campaign::{
    hash, shard, BackendKind, Campaign, CampaignPoint, CampaignSettings, ShardSpec,
};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;
use resilience_core::telemetry::{self, Counter};

const NAME: &str = "chaos";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-itest-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A store record valid under the append-time invariants: the stats
/// cover exactly the chunk's packet range.
fn record(point: u64, first_packet: usize) -> (ChunkId, HarqStats) {
    let id = ChunkId {
        point,
        first_packet,
        n_packets: 8,
    };
    let stats = HarqStats {
        packets: 8,
        delivered: 6,
        transmissions: 14,
        info_bits: 120,
        failures_at: vec![3, 2, 2, 2],
    };
    (id, stats)
}

#[test]
fn torn_jsonl_tail_is_dropped_counted_and_the_store_stays_appendable() {
    let dir = temp_dir("torn-jsonl");
    let path = dir.join(shard::store_file(
        NAME,
        ShardSpec::single(),
        BackendKind::Jsonl,
    ));
    let records = vec![record(1, 0), record(1, 8), record(2, 0)];
    store::write_records(&path, &records).unwrap();

    // Kill the writer mid-append: the file ends in a prefix of a valid
    // record line, with no terminating newline.
    let full = fs::read_to_string(&path).unwrap();
    assert!(full.ends_with('\n'));
    let torn = &full[..full.len() - 12];
    fs::write(&path, torn).unwrap();

    let before = telemetry::snapshot().counter(Counter::StoreTornTailsDropped);
    let mut resumed = ResultStore::open(&path, true).unwrap();
    let after = telemetry::snapshot().counter(Counter::StoreTornTailsDropped);
    assert!(
        after > before,
        "dropping a torn tail must bump store_torn_tails_dropped ({before} -> {after})"
    );

    // The intact records survive; the torn one is a miss, and appending
    // it fresh must not concatenate onto the torn tail.
    assert_eq!(resumed.len(), 2);
    let (torn_id, torn_stats) = &records[2];
    assert!(resumed.fetch(*torn_id).is_none());
    assert_eq!(resumed.fetch(records[0].0).as_ref(), Some(&records[0].1));
    resumed.put(*torn_id, torn_stats).unwrap();
    drop(resumed);
    let (reloaded, malformed) = store::load_all(&path).unwrap();
    assert_eq!(malformed, 1, "the terminated torn line stays skippable");
    let mut ids: Vec<ChunkId> = reloaded.iter().map(|(id, _)| *id).collect();
    ids.sort();
    let mut want: Vec<ChunkId> = records.iter().map(|(id, _)| *id).collect();
    want.sort();
    assert_eq!(ids, want, "re-appended record restores the full chunk set");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_segment_index_entry_is_a_counted_miss_not_wrong_data() {
    let dir = temp_dir("stale-index");
    let path = dir.join(shard::store_file(
        NAME,
        ShardSpec::single(),
        BackendKind::Indexed,
    ));
    let records = vec![record(1, 0), record(2, 0)];
    store::write_records(&path, &records).unwrap();
    assert!(
        path.with_extension("seg.idx").exists(),
        "replace_all must leave an index sidecar for this test to corrupt under"
    );

    // Rot the last frame's payload in place. The sidecar still points
    // at it, the segment length is unchanged — only the checksum can
    // tell, and only at fetch time.
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&path, &bytes).unwrap();

    let mut resumed = ResultStore::open(&path, true).unwrap();
    assert_eq!(resumed.backend_kind(), BackendKind::Indexed);
    let before = telemetry::snapshot().counter(Counter::StoreIndexStaleMisses);
    assert!(
        resumed.fetch(records[1].0).is_none(),
        "an unreadable frame must read as a miss"
    );
    let after = telemetry::snapshot().counter(Counter::StoreIndexStaleMisses);
    assert!(
        after > before,
        "a stale index hit must bump store_index_stale_misses ({before} -> {after})"
    );
    // The undamaged frame is unaffected.
    assert_eq!(resumed.fetch(records[0].0).as_ref(), Some(&records[0].1));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn partition_moves_every_record_to_the_slice_that_owns_it() {
    for backend in [BackendKind::Jsonl, BackendKind::Indexed] {
        let dir = temp_dir(&format!("partition-{backend:?}"));
        let parent = ShardSpec::single();
        let parent_path = dir.join(shard::store_file(NAME, parent, backend));
        let records: Vec<(ChunkId, HarqStats)> = (0..10).map(|p| record(p, 0)).collect();
        store::write_records(&parent_path, &records).unwrap();

        let slices = shard::partition_store_into_slices(NAME, &dir, parent, 3).unwrap();
        assert_eq!(
            slices,
            (0..3)
                .map(|j| parent.slice_of(j, 3).unwrap())
                .collect::<Vec<_>>()
        );
        assert!(
            !parent_path.exists(),
            "the parent store must not survive as a second source of truth"
        );

        let mut gathered: Vec<(ChunkId, HarqStats)> = Vec::new();
        for spec in &slices {
            let slice_path = dir.join(shard::store_file(NAME, *spec, backend));
            let (recs, malformed) = store::load_all(&slice_path).unwrap();
            assert_eq!(malformed, 0);
            for (id, _) in &recs {
                assert!(
                    spec.owns(id.point),
                    "record {:016x} landed in slice {spec} which does not own it",
                    id.point
                );
            }
            gathered.extend(recs);
        }
        gathered.sort_by_key(|(id, _)| *id);
        let mut want = records;
        want.sort_by_key(|(id, _)| *id);
        assert_eq!(gathered, want, "partition must move records losslessly");

        let _ = fs::remove_dir_all(&dir);
    }
}

fn demo_points(cfg: &SystemConfig) -> Vec<CampaignPoint> {
    [(25.0, 41u64), (4.0, 42), (12.0, 43), (8.0, 44)]
        .iter()
        .map(|&(snr_db, seed)| CampaignPoint {
            label: format!("point {snr_db} dB"),
            storage: StorageConfig::unprotected(0.05, cfg.llr_bits),
            snr_db,
            max_packets: 12,
            seed,
            fault_seed: None,
        })
        .collect()
}

#[test]
fn partial_merge_of_the_surviving_shard_names_missing_points_and_verifies() {
    let dir = temp_dir("partial-merge");
    let cfg = SystemConfig::fast_test();
    let sim = LinkSimulator::new(cfg);
    let points = demo_points(&cfg);
    for index in 0..2 {
        let settings = CampaignSettings {
            shard: ShardSpec::new(index, 2).unwrap(),
            initial_chunk: 4,
            ..Default::default()
        };
        let campaign =
            Campaign::new(NAME, settings, SimulationEngine::serial()).with_store_dir(&dir);
        campaign.run(&sim, &points);
    }
    // Global point indices each shard owns, straight from the same
    // fingerprint hash the campaign itself shards by.
    let owned_by = |spec: ShardSpec| -> Vec<u64> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                spec.owns(hash::point_key(&hash::point_fingerprint(
                    &cfg,
                    &p.storage,
                    p.snr_db,
                    p.seed,
                    p.fault_seed,
                )))
            })
            .map(|(i, _)| i as u64)
            .collect()
    };
    let owned = [
        owned_by(ShardSpec::new(0, 2).unwrap()),
        owned_by(ShardSpec::new(1, 2).unwrap()),
    ];
    assert!(
        owned.iter().all(|o| !o.is_empty()),
        "both shards must own points for a partial merge to mean anything (got {owned:?})"
    );

    // Shard 1 is "abandoned": its attempts are exhausted and its
    // artifacts never reach the merge.
    let survivor = dir.join(shard::manifest_file(NAME, ShardSpec::new(0, 2).unwrap()));
    let out = dir.join("merged");

    // A complete merge refuses the hole...
    let err = shard::merge_manifests(NAME, std::slice::from_ref(&survivor), &out).unwrap_err();
    assert!(
        err.to_string().contains("not a complete partition"),
        "unexpected error: {err}"
    );

    // ...the partial merge forgives it, names every missing index, and
    // the surviving results still verify — strict provenance included.
    let report = shard::merge_manifests_allowing_partial(NAME, &[survivor], &out, true).unwrap();
    assert_eq!(report.points, owned[0].len());
    assert_eq!(report.missing_points_total, owned[1].len() as u64);
    assert_eq!(
        report.missing_points, owned[1],
        "the report must name exactly the abandoned shard's point indices"
    );
    for strict in [false, true] {
        let verify = shard::verify_with(NAME, &out, ShardSpec::single(), strict).unwrap();
        assert!(
            verify.ok(),
            "partial merge must stay verifiable (strict={strict}): {:?}",
            verify.problems
        );
        assert_eq!(verify.points, owned[0].len());
        assert_eq!(verify.covered_points, owned[0].len());
    }

    let _ = fs::remove_dir_all(&dir);
}
