//! Smoke tests running every figure experiment end to end at tiny budget —
//! the same code paths the `bench` binaries use for full regeneration.

use resilience_core::config::SystemConfig;
use resilience_core::experiments::{
    fig2, fig3, fig5, fig6, fig7, fig8, fig9, power, ExperimentBudget,
};

fn cfg() -> SystemConfig {
    SystemConfig::fast_test()
}

#[test]
fn fig2_smoke() {
    let res = fig2::run(&cfg(), ExperimentBudget::smoke());
    assert_eq!(res.bler.len(), 3);
    // High-SNR regime decodes far better than low-SNR on the first try.
    let low = &res.bler[0];
    let high = &res.bler[2];
    assert!(low.snr_db < high.snr_db);
    assert!(high.bler[0] <= low.bler[0]);
    assert!(!res.table().is_empty());
}

#[test]
fn fig3_smoke() {
    let res = fig3::run();
    assert_eq!(res.log10_p.len(), 3);
    assert!(res.table().contains("Vdd"));
}

#[test]
fn fig5_smoke() {
    let res = fig5::run_for(50 * 1024);
    assert!(!res.n_f.is_empty());
    for c in &res.curves {
        assert!(c.yields.iter().all(|&y| (0.0..=1.0).contains(&y)));
    }
}

#[test]
fn fig6_smoke() {
    let res = fig6::run_with_fractions(&cfg(), ExperimentBudget::smoke(), &[0.0, 0.05]);
    assert_eq!(res.curves.len(), 2);
    assert!(res.table_throughput().contains("SNR"));
    assert!(res.curves.iter().all(|c| c
        .avg_transmissions
        .iter()
        .all(|&t| (1.0..=4.0).contains(&t))));
}

#[test]
fn fig7_smoke() {
    let panel = fig7::run_panel(&cfg(), ExperimentBudget::smoke(), 0.05);
    assert_eq!(panel.throughput.len(), fig7::PROTECTED_BITS.len());
    assert!(panel.table().contains("defect-free"));
}

#[test]
fn fig8_smoke() {
    let res = fig8::run(&cfg(), ExperimentBudget::smoke(), 12.0);
    // 0..=10 protected bits plus the ECC row.
    assert_eq!(res.rows.len(), 12);
    // Efficiency is finite and positive everywhere.
    assert!(res
        .rows
        .iter()
        .all(|r| r.efficiency.is_finite() && r.efficiency >= 0.0));
}

#[test]
fn fig9_smoke() {
    let res = fig9::run(&cfg(), ExperimentBudget::smoke());
    assert_eq!(res.throughput.len(), fig9::BIT_WIDTHS.len());
    assert!(res.storage_cells.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn power_smoke() {
    let res = power::run(&cfg(), ExperimentBudget::smoke(), 12.0);
    assert_eq!(res.rows.len(), 4);
    // Savings ordering: lower voltage, lower power.
    assert!(res.rows[3].relative_power < res.rows[0].relative_power);
    assert!(res.table().contains("Vdd"));
}
