//! Integration tests of the telemetry contract: observability must be
//! a pure *read-side* of the campaign — turning it on or off changes
//! which exposition files exist, and nothing else.
//!
//! * **Determinism** — at 1, 2 and 8 worker threads, a campaign run
//!   with telemetry enabled produces byte-identical manifest files and
//!   identical outcomes to the same campaign with telemetry disabled.
//! * **Exposition** — telemetry-off writes no `.telemetry.json`,
//!   `.telemetry.jsonl` or `.prom` files; telemetry-on writes all
//!   three, the snapshot parses, and its totals agree with the report.

use std::path::{Path, PathBuf};

use resilience_core::campaign::{shard, Campaign, CampaignPoint, CampaignSettings, ShardSpec};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;
use resilience_core::telemetry::LiveSnapshot;

const SEED: u64 = 0xdac1_2012;

fn sim() -> LinkSimulator {
    LinkSimulator::new(SystemConfig::fast_test())
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("telemetry-itest-{}-{tag}", std::process::id()))
}

fn points(cfg: &SystemConfig, max_packets: usize) -> Vec<CampaignPoint> {
    vec![
        CampaignPoint {
            label: "clean 25 dB".into(),
            storage: StorageConfig::Quantized,
            snr_db: 25.0,
            max_packets,
            seed: SEED,
            fault_seed: None,
        },
        CampaignPoint {
            label: "10% defects 8 dB".into(),
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 8.0,
            max_packets,
            seed: SEED.wrapping_add(1),
            fault_seed: None,
        },
    ]
}

fn settings() -> CampaignSettings {
    CampaignSettings {
        initial_chunk: 8,
        ..Default::default()
    }
}

/// Every telemetry exposition file a campaign named `name` could write
/// into `dir` (single-shard naming — these tests never shard).
fn exposition_files(name: &str, dir: &Path) -> [PathBuf; 3] {
    let single = ShardSpec::single();
    [
        dir.join(shard::telemetry_file(name, single)),
        dir.join(shard::events_file(name, single)),
        dir.join(shard::prom_file(name, single)),
    ]
}

#[test]
fn telemetry_does_not_change_results_or_manifests() {
    let sim = sim();
    let cfg = *sim.config();
    let pts = points(&cfg, 24);

    let run_at = |threads: usize, telemetry: bool| {
        let dir = temp_dir(&format!("det-{threads}-{telemetry}"));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("tel", settings(), SimulationEngine::with_threads(threads))
            .with_store_dir(&dir)
            .with_telemetry(telemetry);
        let report = campaign.run(&sim, &pts);
        let manifest_bytes =
            std::fs::read(campaign.manifest_path()).expect("campaign must write its manifest");
        (report, manifest_bytes, dir)
    };

    let (reference, reference_manifest, ref_dir) = run_at(1, false);
    let _ = std::fs::remove_dir_all(&ref_dir);

    for threads in [1, 2, 8] {
        let (with_tel, manifest_on, dir_on) = run_at(threads, true);
        let (without_tel, manifest_off, dir_off) = run_at(threads, false);
        assert_eq!(
            with_tel.outcomes, without_tel.outcomes,
            "telemetry must not change outcomes at {threads} threads"
        );
        assert_eq!(
            with_tel.outcomes, reference.outcomes,
            "outcomes at {threads} threads must match the serial reference"
        );
        assert_eq!(
            manifest_on, manifest_off,
            "manifest must be byte-identical with telemetry on vs off at {threads} threads"
        );
        assert_eq!(
            manifest_on, reference_manifest,
            "manifest at {threads} threads must be byte-identical to the serial reference"
        );
        let _ = std::fs::remove_dir_all(&dir_on);
        let _ = std::fs::remove_dir_all(&dir_off);
    }
}

#[test]
fn telemetry_off_writes_no_exposition_files() {
    let sim = sim();
    let cfg = *sim.config();
    let dir = temp_dir("off");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new("quiet", settings(), SimulationEngine::with_threads(2))
        .with_store_dir(&dir)
        .with_telemetry(false);
    campaign.run(&sim, &points(&cfg, 16));
    for path in exposition_files("quiet", &dir) {
        assert!(
            !path.exists(),
            "telemetry-off campaign must not write {}",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_on_writes_consistent_exposition() {
    let sim = sim();
    let cfg = *sim.config();
    let dir = temp_dir("on");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new("loud", settings(), SimulationEngine::with_threads(2))
        .with_store_dir(&dir)
        .with_telemetry(true);
    let report = campaign.run(&sim, &points(&cfg, 16));

    let [snap_path, events_path, prom_path] = exposition_files("loud", &dir);
    for path in [&snap_path, &events_path, &prom_path] {
        assert!(path.exists(), "missing exposition file {}", path.display());
    }

    // The final live snapshot agrees with the report it narrates.
    let snap = LiveSnapshot::read(&snap_path).expect("final snapshot must parse");
    assert!(snap.done, "final snapshot must be marked done");
    assert_eq!(snap.points_total, report.outcomes.len() as u64);
    assert_eq!(
        snap.points_converged,
        report.outcomes.iter().filter(|o| o.converged).count() as u64
    );
    assert_eq!(
        snap.packets_realized,
        report
            .outcomes
            .iter()
            .map(|o| o.packets() as u64)
            .sum::<u64>()
    );
    assert_eq!(snap.points.len(), report.outcomes.len());

    // The event log is one JSON object per line, bracketed by the run
    // lifecycle events, with monotonically increasing sequence numbers.
    let events = std::fs::read_to_string(&events_path).expect("read event log");
    let lines: Vec<&str> = events.lines().collect();
    assert!(lines.first().is_some_and(|l| l.contains("\"run_started\"")));
    assert!(lines.last().is_some_and(|l| l.contains("\"run_finished\"")));
    assert!(lines.iter().any(|l| l.contains("\"chunk_done\"")));
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with("{\"seq\": ") && line.ends_with('}'),
            "malformed: {line}"
        );
        let seq: u64 = line["{\"seq\": ".len()..]
            .split(',')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("seq field");
        assert_eq!(seq, i as u64, "event seq must be contiguous from 0: {line}");
    }

    // The Prometheus snapshot exposes the core counters.
    let prom = std::fs::read_to_string(&prom_path).expect("read prom snapshot");
    for metric in [
        "resilience_packets_simulated",
        "resilience_chunks_scheduled",
        "resilience_points_converged",
    ] {
        assert!(prom.contains(metric), "prom snapshot missing {metric}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
