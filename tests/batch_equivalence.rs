//! Property tests: batched lockstep decoding is bit-identical, lane for
//! lane, to N independent scalar decodes — hard decisions, the raw
//! `f64` bit patterns of every posterior LLR, and the per-lane
//! iteration counts all must match exactly, for random block lengths,
//! random noise, random injected fault patterns, and every tier.
//!
//! This is the contract that lets the engine turn batching on by
//! default: a batched campaign must be indistinguishable from an
//! unbatched one at the level of individual bits, not just statistics.

use proptest::prelude::*;

use hspa_phy::turbo::{
    AccuracyTier, DecodeResult, DecoderConfig, MaxLogMapDecoder, TurboBatchScratch, TurboCode,
    TurboScratch,
};

/// BPSK/AWGN LLRs with a crude injected fault pattern: a slice of the
/// positions (chosen by `fault_seed`) gets its LLR sign flipped and
/// another slice gets saturated — the kinds of corruption a faulty LLR
/// memory produces, applied identically to the scalar and batched runs.
fn corrupted_llrs(
    coded: &[u8],
    snr_db: f64,
    seed: u64,
    fault_seed: u64,
    fault_pct: u8,
) -> Vec<f64> {
    let mut rng = dsp::rng::seeded(seed);
    let esn0 = dsp::stats::db_to_linear(snr_db);
    let sigma2 = 1.0 / (2.0 * esn0);
    let mut llrs: Vec<f64> = coded
        .iter()
        .map(|&b| {
            let x = 1.0 - 2.0 * b as f64;
            let y = x + sigma2.sqrt() * dsp::rng::standard_normal(&mut rng);
            2.0 * y / sigma2
        })
        .collect();
    let mut frng = dsp::rng::seeded(fault_seed);
    for l in llrs.iter_mut() {
        let roll = dsp::rng::standard_normal(&mut frng).abs();
        if roll < fault_pct as f64 / 200.0 {
            *l = -*l;
        } else if roll > 2.5 {
            *l = 31.75_f64.copysign(*l);
        }
    }
    llrs
}

/// One lane's scalar reference decode (the exact path the unbatched
/// engine runs), plus the inputs so the batch can replay it.
struct Lane {
    llrs: Vec<f64>,
    reference: DecodeResult,
}

#[allow(clippy::type_complexity)]
fn build_lanes(
    code: &TurboCode,
    lanes: usize,
    snr_db: f64,
    seed: u64,
    fault_pct: u8,
    iterations: usize,
    stop: Option<&dyn Fn(&[u8]) -> bool>,
) -> Vec<Lane> {
    let mut scratch = TurboScratch::new();
    (0..lanes)
        .map(|lane| {
            let lseed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ lane as u64;
            let mut rng = dsp::rng::seeded(lseed);
            let bits = dsp::rng::random_bits(&mut rng, code.k());
            let coded = code.encode(&bits);
            let llrs = corrupted_llrs(&coded, snr_db, lseed ^ 0x5eed, lseed ^ 0xfa17, fault_pct);
            let mut reference = DecodeResult::new();
            match stop {
                None => code.decode_into(&llrs, iterations, &mut scratch, &mut reference),
                Some(f) => {
                    code.decode_into_with_stop(&llrs, iterations, &mut scratch, &mut reference, f)
                }
            }
            Lane { llrs, reference }
        })
        .collect()
}

/// Asserts lane `i` of `batch` equals its scalar reference bit for bit.
fn assert_lane_identical(
    batch: &TurboBatchScratch,
    i: usize,
    lane: &Lane,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(batch.bits(i), &lane.reference.bits[..], "bits, lane {}", i);
    prop_assert_eq!(
        batch.iterations_run(i),
        lane.reference.iterations_run,
        "iteration count, lane {}",
        i
    );
    let batch_bits: Vec<u64> = batch.llrs(i).iter().map(|l| l.to_bits()).collect();
    let ref_bits: Vec<u64> = lane.reference.llrs.iter().map(|l| l.to_bits()).collect();
    prop_assert_eq!(batch_bits, ref_bits, "LLR f64 bit patterns, lane {}", i);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact tier: batched == N independent scalar `decode_into` calls.
    #[test]
    fn batched_exact_equals_scalar_lanes(
        k in 40usize..400,
        lanes in 1usize..12,
        snr_x10 in -40i32..35,
        seed in 0u64..u64::MAX,
        fault_pct in 0u8..25,
        iterations in 1usize..8,
    ) {
        let code = TurboCode::new(k).expect("valid k");
        let lane_data = build_lanes(&code, lanes, snr_x10 as f64 / 10.0, seed, fault_pct, iterations, None);
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        for lane in &lane_data {
            batch.push_lane(&lane.llrs);
        }
        code.decode_batch(DecoderConfig::new(iterations, AccuracyTier::Exact), &mut batch, None);
        for (i, lane) in lane_data.iter().enumerate() {
            assert_lane_identical(&batch, i, lane)?;
        }
    }

    /// EarlyStop tier: batched (with a per-lane stop callback) == N
    /// scalar `decode_into_with_stop` calls using the same predicate.
    #[test]
    fn batched_earlystop_equals_scalar_lanes(
        k in 40usize..300,
        lanes in 1usize..10,
        snr_x10 in -40i32..35,
        seed in 0u64..u64::MAX,
        fault_pct in 0u8..25,
    ) {
        // A deterministic stand-in for the CRC: accept when the bit sum
        // is divisible by 3. Arbitrary, but identical on both paths —
        // what is under test is the stop *plumbing*, not the predicate.
        let stop = |bits: &[u8]| bits.iter().map(|&b| b as u32).sum::<u32>() % 3 == 0;
        let code = TurboCode::new(k).expect("valid k");
        let lane_data = build_lanes(&code, lanes, snr_x10 as f64 / 10.0, seed, fault_pct, 8, Some(&stop));
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        for lane in &lane_data {
            batch.push_lane(&lane.llrs);
        }
        code.decode_batch(
            DecoderConfig::new(8, AccuracyTier::EarlyStop),
            &mut batch,
            Some(&|_lane, bits: &[u8]| stop(bits)),
        );
        for (i, lane) in lane_data.iter().enumerate() {
            assert_lane_identical(&batch, i, lane)?;
        }
    }

    /// Fast32 tier: an N-lane batch equals N one-lane batches — the f32
    /// kernel has no separate scalar implementation, so one-lane batches
    /// are its reference semantics (and are themselves pinned by the
    /// `GOLDEN_DECODES_FAST32` table in `decode_golden.rs`).
    #[test]
    fn batched_fast32_equals_single_lane_batches(
        k in 40usize..300,
        lanes in 2usize..10,
        snr_x10 in -40i32..35,
        seed in 0u64..u64::MAX,
        fault_pct in 0u8..25,
    ) {
        let cfg = DecoderConfig::new(8, AccuracyTier::Fast32);
        let code = TurboCode::new(k).expect("valid k");
        // Reuse build_lanes for input generation only; the f64 scalar
        // reference it computes is ignored here.
        let lane_data = build_lanes(&code, lanes, snr_x10 as f64 / 10.0, seed, fault_pct, 8, None);
        let mut batch = TurboBatchScratch::new();
        batch.begin_batch(code.coded_len());
        for lane in &lane_data {
            batch.push_lane(&lane.llrs);
        }
        code.decode_batch(cfg, &mut batch, None);
        let mut single = TurboBatchScratch::new();
        for (i, lane) in lane_data.iter().enumerate() {
            single.begin_batch(code.coded_len());
            single.push_lane(&lane.llrs);
            code.decode_batch(cfg, &mut single, None);
            prop_assert_eq!(batch.bits(i), single.bits(0), "fast32 bits, lane {}", i);
            prop_assert_eq!(
                batch.iterations_run(i),
                single.iterations_run(0),
                "fast32 iterations, lane {}",
                i
            );
            let wide: Vec<u64> = batch.llrs(i).iter().map(|l| l.to_bits()).collect();
            let narrow: Vec<u64> = single.llrs(0).iter().map(|l| l.to_bits()).collect();
            prop_assert_eq!(wide, narrow, "fast32 LLR bit patterns, lane {}", i);
        }
    }
}

/// Scalar decoder sanity: `decode` and `decode_into` agree under the
/// same fault-injected inputs the proptests use (guards the reference
/// side of the equivalence, not just the batched side).
#[test]
fn reference_scalar_paths_agree_under_faults() {
    let code = TurboCode::new(120).expect("valid k");
    let decoder = MaxLogMapDecoder::new(code.k(), code.interleaver());
    let mut scratch = TurboScratch::new();
    let mut out = DecodeResult::new();
    for seed in 0..6u64 {
        let mut rng = dsp::rng::seeded(seed);
        let bits = dsp::rng::random_bits(&mut rng, code.k());
        let coded = code.encode(&bits);
        let llrs = corrupted_llrs(&coded, -1.0, seed ^ 0x5eed, seed ^ 0xfa17, 15);
        decoder.decode_into(&llrs, 8, &mut scratch, &mut out);
        assert_eq!(out, code.decode(&llrs, 8), "seed {seed}");
    }
}
