//! Cross-crate integration: the full PHY chain, component by component,
//! wired exactly as the link simulator wires it.

use dsp::rng::{random_bits, seeded};
use hspa_phy::bits::hamming_distance;
use hspa_phy::channel::{AwgnChannel, ChannelModel};
use hspa_phy::crc::Crc;
use hspa_phy::harq::{HarqCombining, HarqProcess, PerfectLlrBuffer};
use hspa_phy::interleave::ChannelInterleaver;
use hspa_phy::rate_match::RateMatcher;
use hspa_phy::turbo::TurboCode;
use hspa_phy::Modulation;

/// Manually-assembled TX→RX chain (no simulator) delivering a packet over
/// AWGN: proves the public APIs compose without the `resilience-core`
/// glue.
#[test]
fn manual_chain_delivers_over_awgn() {
    let payload_bits = 200;
    let crc = Crc::gcrc24();
    let mut rng = seeded(5);
    let payload = random_bits(&mut rng, payload_bits);
    let block = crc.attach(&payload);
    let code = TurboCode::new(block.len()).expect("in range");
    let coded = code.encode(&block);

    let modulation = Modulation::Qam16;
    let target = 720;
    let rm = RateMatcher::new(block.len(), target);
    let il = ChannelInterleaver::new(target);
    let mut harq = HarqProcess::new(
        &rm,
        HarqCombining::IncrementalRedundancy,
        PerfectLlrBuffer::new(rm.coded_len()),
    );
    harq.start_block();

    let snr_db = 10.0;
    let channel = AwgnChannel;
    let mut delivered = false;
    for attempt in 0..4 {
        let rv = HarqCombining::IncrementalRedundancy.rv(attempt);
        let tx = rm.rate_match(&coded, rv);
        let symbols = modulation.modulate(&il.interleave(&tx));
        let real = channel.realize(snr_db, &mut rng);
        let rx = real.apply(&symbols, &mut rng);
        let llrs = modulation.demodulate_soft(&rx, real.noise_var);
        let combined = harq.combine_transmission(attempt, &il.deinterleave(&llrs));
        let decoded = code.decode(&combined, 6);
        if crc.check(&decoded.bits) {
            assert_eq!(&decoded.bits[..payload_bits], &payload[..]);
            delivered = true;
            break;
        }
    }
    assert!(
        delivered,
        "packet must decode within the HARQ budget at 10 dB"
    );
}

/// Uncoded QAM BER over AWGN tracks within a factor of the analytic
/// QPSK reference — validates modulator, channel and demapper jointly.
#[test]
fn uncoded_qpsk_ber_matches_theory() {
    let mut rng = seeded(9);
    let m = Modulation::Qpsk;
    let snr_db = 7.0;
    let n_bits = 60_000;
    let bits = random_bits(&mut rng, n_bits);
    let tx = m.modulate(&bits);
    let channel = AwgnChannel;
    let real = channel.realize(snr_db, &mut rng);
    let rx = real.apply(&tx, &mut rng);
    let hard = m.demodulate_hard(&rx);
    let ber = hamming_distance(&hard, &bits) as f64 / n_bits as f64;
    // QPSK: Eb/N0 = SNR - 3dB → BER = Q(sqrt(2*EbN0)).
    let ebn0 = dsp::stats::db_to_linear(snr_db) / 2.0;
    let theory = dsp::stats::bpsk_ber_awgn(ebn0);
    assert!(
        ber > 0.3 * theory && ber < 3.0 * theory,
        "ber {ber:.2e} vs theory {theory:.2e}"
    );
}

/// The coded chain exhibits a waterfall: hugely better BLER at high SNR.
#[test]
fn coded_chain_has_waterfall() {
    use resilience_core::config::SystemConfig;
    use resilience_core::montecarlo::{run_point, StorageConfig};

    let cfg = SystemConfig::fast_test();
    let low = run_point(&cfg, &StorageConfig::Perfect, -2.0, 10, 3);
    let high = run_point(&cfg, &StorageConfig::Perfect, 16.0, 10, 3);
    assert!(high.normalized_throughput() > low.normalized_throughput());
    assert!(high.normalized_throughput() > 0.9);
    assert!(high.avg_transmissions() < low.avg_transmissions());
}

/// Full determinism across the entire stack: same seed, same numbers.
#[test]
fn whole_stack_is_reproducible() {
    use resilience_core::config::SystemConfig;
    use resilience_core::montecarlo::{run_point, StorageConfig};

    let cfg = SystemConfig::fast_test();
    let s = StorageConfig::msb_protected(3, 0.08, cfg.llr_bits);
    let a = run_point(&cfg, &s, 8.0, 8, 1234);
    let b = run_point(&cfg, &s, 8.0, 8, 1234);
    assert_eq!(a, b);
    let c = run_point(&cfg, &s, 8.0, 8, 1235);
    assert!(
        a != c || a.delivered == c.delivered,
        "different seed may differ"
    );
}
