//! Properties of the dispatcher's work stealing at the library level
//! (the process-level end-to-end lives in `crates/bench/tests/`):
//! a rescue leg that resumes the store a killed leg left behind must
//! **never re-simulate a stored chunk** — for any campaign settings and
//! any kill point, the replayed schedule serves every surviving record
//! from disk and simulates only the remainder — and the merged manifest
//! must stay byte-identical to a fresh run's no matter how much of the
//! store was resumed (chunk provenance is normalized away). The same
//! holds for a **multi-way steal** (elastic re-sharding): the dead
//! leg's store partitioned into slice sub-shards, each resumed by its
//! own rescue leg, must merge back to the identical bytes.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use resilience_core::campaign::store::{self, ChunkId};
use resilience_core::campaign::{shard, Campaign, CampaignPoint, CampaignSettings};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;

const NAME: &str = "steal";

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dispatch-prop-{}-{tag}", std::process::id()))
}

fn demo_points(cfg: &SystemConfig, max_packets: usize) -> Vec<CampaignPoint> {
    vec![
        CampaignPoint {
            label: "clean high SNR".into(),
            storage: StorageConfig::Quantized,
            snr_db: 25.0,
            max_packets,
            seed: 21,
            fault_seed: None,
        },
        CampaignPoint {
            label: "faulty low SNR".into(),
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 4.0,
            max_packets,
            seed: 22,
            fault_seed: None,
        },
    ]
}

/// Runs the demo campaign in `dir`, returning its report.
fn run_campaign(
    dir: &Path,
    settings: CampaignSettings,
    max_packets: usize,
) -> resilience_core::campaign::CampaignReport {
    let cfg = SystemConfig::fast_test();
    let sim = LinkSimulator::new(cfg);
    let campaign = Campaign::new(NAME, settings, SimulationEngine::serial()).with_store_dir(dir);
    campaign.run(&sim, &demo_points(&cfg, max_packets))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any chunk schedule and any kill point, a rescue run over the
    /// truncated store (a) serves every surviving record from disk —
    /// `chunks_from_store` equals exactly the record count, (b) appends
    /// no duplicate chunk (the signature of a re-simulation), (c) ends
    /// with the identical record set and statistics as the uninterrupted
    /// run, and (d) merges to a byte-identical manifest.
    #[test]
    fn rescue_resume_never_resimulates_a_stored_chunk(
        initial_chunk in 1usize..7,
        max_packets in 1usize..30,
        cut_code in 0usize..1000,
    ) {
        let tag = format!("{initial_chunk}-{max_packets}-{cut_code}");
        let ref_dir = temp_dir(&format!("{tag}-ref"));
        let rescue_dir = temp_dir(&format!("{tag}-rescue"));
        let _ = fs::remove_dir_all(&ref_dir);
        let _ = fs::remove_dir_all(&rescue_dir);
        let settings = CampaignSettings {
            initial_chunk,
            ..Default::default()
        };

        // The uninterrupted reference run.
        let reference = run_campaign(&ref_dir, settings, max_packets);
        let store_name = shard::store_file(NAME, settings.shard, settings.backend);
        let full = fs::read_to_string(ref_dir.join(&store_name)).unwrap();
        let lines: Vec<&str> = full.lines().collect();

        // "Kill" the leg after `k` stored chunks: a killed process
        // leaves a line-prefix of the store (appends are sequential).
        let k = cut_code % (lines.len() + 1);
        fs::create_dir_all(&rescue_dir).unwrap();
        let mut truncated: String = lines[..k].join("\n");
        if k > 0 {
            truncated.push('\n');
        }
        fs::write(rescue_dir.join(&store_name), truncated).unwrap();

        // The rescue run resumes the truncated store.
        let rescue = run_campaign(&rescue_dir, settings, max_packets);
        prop_assert_eq!(
            rescue.chunks_from_store(),
            k as u64,
            "every surviving record must be a store hit"
        );
        prop_assert_eq!(reference.stats(), rescue.stats());

        // The rescued store holds the same chunk set, each exactly once
        // — a re-simulated chunk would have been appended twice.
        let (rescued_records, malformed) =
            store::load_all(&rescue_dir.join(&store_name)).unwrap();
        prop_assert_eq!(malformed, 0);
        let mut ids: Vec<ChunkId> = rescued_records.iter().map(|(id, _)| *id).collect();
        let total = ids.len();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), total, "duplicate chunk records after rescue");
        let (mut ref_records, _) = store::load_all(&ref_dir.join(&store_name)).unwrap();
        let mut rescued_sorted = rescued_records;
        rescued_sorted.sort_by_key(|(id, _)| *id);
        ref_records.sort_by_key(|(id, _)| *id);
        prop_assert_eq!(rescued_sorted, ref_records);

        // Provenance normalization: the degenerate 0/1 merge of both
        // manifests must produce byte-identical files even though the
        // rescue manifest records store-resumed chunks.
        let manifest_name = shard::manifest_file(NAME, settings.shard);
        let ref_out = ref_dir.join("merged");
        let rescue_out = rescue_dir.join("merged");
        shard::merge_manifests(NAME, &[ref_dir.join(&manifest_name)], &ref_out).unwrap();
        shard::merge_manifests(NAME, &[rescue_dir.join(&manifest_name)], &rescue_out).unwrap();
        prop_assert_eq!(
            fs::read_to_string(ref_out.join(&manifest_name)).unwrap(),
            fs::read_to_string(rescue_out.join(&manifest_name)).unwrap(),
            "merged manifests must not leak resume provenance"
        );

        let _ = fs::remove_dir_all(&ref_dir);
        let _ = fs::remove_dir_all(&rescue_dir);
    }

    /// A multi-way steal — the dead leg's truncated store partitioned
    /// into `slices` slice sub-shards, each resumed by its own rescue
    /// leg — must (a) serve every surviving record from disk across the
    /// slices combined, and (b) merge the slice manifests back to bytes
    /// identical to the uninterrupted run's merged manifest.
    #[test]
    fn multi_way_steal_merges_byte_identical(
        initial_chunk in 1usize..7,
        max_packets in 1usize..30,
        cut_code in 0usize..1000,
        slices in 2u32..=4,
    ) {
        let tag = format!("multi-{initial_chunk}-{max_packets}-{cut_code}-{slices}");
        let ref_dir = temp_dir(&format!("{tag}-ref"));
        let steal_dir = temp_dir(&format!("{tag}-steal"));
        let _ = fs::remove_dir_all(&ref_dir);
        let _ = fs::remove_dir_all(&steal_dir);
        let settings = CampaignSettings {
            initial_chunk,
            ..Default::default()
        };

        run_campaign(&ref_dir, settings, max_packets);
        let store_name = shard::store_file(NAME, settings.shard, settings.backend);
        let full = fs::read_to_string(ref_dir.join(&store_name)).unwrap();
        let lines: Vec<&str> = full.lines().collect();

        // Kill the leg mid-run, leaving a line-prefix of its store.
        let k = cut_code % (lines.len() + 1);
        fs::create_dir_all(&steal_dir).unwrap();
        let mut truncated: String = lines[..k].join("\n");
        if k > 0 {
            truncated.push('\n');
        }
        fs::write(steal_dir.join(&store_name), truncated).unwrap();

        // Elastic re-sharding: split the dead leg's store and resume
        // each slice with its own in-process "rescue leg".
        let slice_specs = shard::partition_store_into_slices(
            NAME,
            &steal_dir,
            settings.shard,
            slices,
        )
        .unwrap();
        prop_assert_eq!(slice_specs.len(), slices as usize);
        let mut served = 0u64;
        for spec in &slice_specs {
            let slice_settings = CampaignSettings {
                shard: *spec,
                ..settings
            };
            let report = run_campaign(&steal_dir, slice_settings, max_packets);
            served += report.chunks_from_store();
        }
        prop_assert_eq!(
            served,
            k as u64,
            "across the slices, every surviving record must be a store hit"
        );

        // The slice manifests merge to the reference run's exact bytes.
        let manifest_name = shard::manifest_file(NAME, settings.shard);
        let ref_out = ref_dir.join("merged");
        shard::merge_manifests(NAME, &[ref_dir.join(&manifest_name)], &ref_out).unwrap();
        let slice_manifests: Vec<PathBuf> = slice_specs
            .iter()
            .map(|spec| steal_dir.join(shard::manifest_file(NAME, *spec)))
            .collect();
        let steal_out = steal_dir.join("merged");
        shard::merge_manifests(NAME, &slice_manifests, &steal_out).unwrap();
        prop_assert_eq!(
            fs::read_to_string(ref_out.join(&manifest_name)).unwrap(),
            fs::read_to_string(steal_out.join(&manifest_name)).unwrap(),
            "a re-sharded steal must not leak into the merged manifest"
        );

        let _ = fs::remove_dir_all(&ref_dir);
        let _ = fs::remove_dir_all(&steal_dir);
    }
}
