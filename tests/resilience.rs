//! Integration tests of the paper's headline claims at smoke scale.

use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{run_point, DefectSpec, StorageConfig};
use silicon::fault_map::FaultKind;

const SNR: f64 = 14.0;
const PACKETS: usize = 12;
const SEED: u64 = 2012;

/// Claim 1 (Fig. 6): small defect rates are free; large ones cost
/// throughput. The ordering clean ≥ 0.1 % ≥ 25 % must hold.
#[test]
fn defect_tolerance_ordering() {
    let cfg = SystemConfig::fast_test();
    let clean = run_point(&cfg, &StorageConfig::Quantized, SNR, PACKETS, SEED);
    let tiny = run_point(
        &cfg,
        &StorageConfig::unprotected(0.001, cfg.llr_bits),
        SNR,
        PACKETS,
        SEED,
    );
    let huge = run_point(
        &cfg,
        &StorageConfig::unprotected(0.25, cfg.llr_bits),
        SNR,
        PACKETS,
        SEED,
    );
    assert_eq!(clean.delivered, tiny.delivered, "0.1% must be transparent");
    assert!(
        huge.normalized_throughput() < clean.normalized_throughput(),
        "heavy defects must degrade: {} !< {}",
        huge.normalized_throughput(),
        clean.normalized_throughput()
    );
    assert!(
        huge.avg_transmissions() >= clean.avg_transmissions(),
        "defects must cost retransmissions"
    );
}

/// Claim 2 (Fig. 7): protecting the MSBs recovers throughput lost to a
/// high defect rate in the remaining bits.
#[test]
fn msb_protection_recovers() {
    let cfg = SystemConfig::fast_test();
    let frac = 0.20;
    let none = run_point(
        &cfg,
        &StorageConfig::msb_protected(0, frac, cfg.llr_bits),
        SNR,
        PACKETS,
        SEED,
    );
    let four = run_point(
        &cfg,
        &StorageConfig::msb_protected(4, frac, cfg.llr_bits),
        SNR,
        PACKETS,
        SEED,
    );
    let clean = run_point(&cfg, &StorageConfig::Quantized, SNR, PACKETS, SEED);
    assert!(
        four.normalized_throughput() >= none.normalized_throughput(),
        "4-MSB protection must not lose to none: {} vs {}",
        four.normalized_throughput(),
        none.normalized_throughput()
    );
    // Protected system sits close to the defect-free reference.
    assert!(
        clean.normalized_throughput() - four.normalized_throughput() <= 0.35,
        "protected {} too far below clean {}",
        four.normalized_throughput(),
        clean.normalized_throughput()
    );
}

/// Claim 3 (§6.2): SECDED over the whole word also restores throughput at
/// sparse defect rates — it is the *area*, not the function, that damns it.
#[test]
fn ecc_restores_at_sparse_rates() {
    let cfg = SystemConfig::fast_test();
    let clean = run_point(&cfg, &StorageConfig::Quantized, SNR, PACKETS, SEED);
    let ecc = run_point(
        &cfg,
        &StorageConfig::Ecc {
            defects: DefectSpec::Fraction(0.002),
            fault_kind: FaultKind::Flip,
        },
        SNR,
        PACKETS,
        SEED,
    );
    assert_eq!(
        clean.delivered, ecc.delivered,
        "sparse faults fully corrected by SECDED"
    );
}

/// Claim 4 (Fig. 9): at a fixed high defect rate, wider LLR words do not
/// help (quantization noise is not the bottleneck; fault exposure is).
#[test]
fn wider_words_do_not_help_under_defects() {
    let mut cfg10 = SystemConfig::fast_test();
    cfg10.llr_bits = 10;
    let mut cfg12 = SystemConfig::fast_test();
    cfg12.llr_bits = 12;
    let frac = 0.15;
    let t10 = run_point(
        &cfg10,
        &StorageConfig::unprotected(frac, 10),
        SNR,
        PACKETS,
        SEED,
    );
    let t12 = run_point(
        &cfg12,
        &StorageConfig::unprotected(frac, 12),
        SNR,
        PACKETS,
        SEED,
    );
    assert!(
        t12.normalized_throughput() <= t10.normalized_throughput() + 0.15,
        "12-bit {} should not beat 10-bit {} under defects",
        t12.normalized_throughput(),
        t10.normalized_throughput()
    );
}

/// Claim 5 (stuck-at vs flip): stuck faults corrupt only ~half the reads
/// (the stored bit may already equal the stuck value), so flips are the
/// worst case — as the paper assumes.
#[test]
fn flips_are_at_least_as_bad_as_stuck() {
    let cfg = SystemConfig::fast_test();
    let frac = 0.2;
    let mk = |kind| StorageConfig::Faulty {
        plan: silicon::ProtectionPlan::uniform(cfg.llr_bits, silicon::BitCellKind::Sram6T),
        defects: DefectSpec::Fraction(frac),
        fault_kind: kind,
    };
    let flip = run_point(&cfg, &mk(FaultKind::Flip), SNR, PACKETS, SEED);
    let sa0 = run_point(&cfg, &mk(FaultKind::StuckAt0), SNR, PACKETS, SEED);
    assert!(
        flip.normalized_throughput() <= sa0.normalized_throughput() + 0.2,
        "flips {} should be at least as harmful as stuck-at-0 {}",
        flip.normalized_throughput(),
        sa0.normalized_throughput()
    );
}

/// Yield model and throughput tie together: the defect fraction a 95 %
/// yield target forces at low voltage is one the system tolerates.
#[test]
fn yield_and_throughput_compose() {
    use silicon::cell::{BitCellKind, CellFailureModel};
    use silicon::yield_model::min_accepted_faults;

    let cfg = SystemConfig::fast_test();
    let cells = cfg.storage_cells();
    let model = CellFailureModel::dac12();
    let p = model.p_cell(BitCellKind::Sram6T, 0.8);
    let nf = min_accepted_faults(cells, p, 0.95).expect("target reachable");
    let frac = nf as f64 / cells as f64;
    assert!(
        frac < 0.01,
        "0.8 V should need well under 1% acceptance, got {frac}"
    );
    let clean = run_point(&cfg, &StorageConfig::Quantized, SNR, PACKETS, SEED);
    let scaled = run_point(
        &cfg,
        &StorageConfig::Faulty {
            plan: silicon::ProtectionPlan::uniform(cfg.llr_bits, BitCellKind::Sram6T),
            defects: DefectSpec::Count(nf as usize),
            fault_kind: FaultKind::Flip,
        },
        SNR,
        PACKETS,
        SEED,
    );
    assert_eq!(
        clean.delivered, scaled.delivered,
        "the yield-driven defect count must be transparent to the link"
    );
}
