//! Integration tests of the parallel Monte-Carlo engine's determinism
//! contract: the same master seed must produce bit-identical aggregate
//! statistics for any worker count, shard size, and for the serial
//! `montecarlo` wrappers.

use resilience_core::config::SystemConfig;
use resilience_core::engine::{PointSpec, SimulationEngine};
use resilience_core::montecarlo::{run_point, run_sweep, StorageConfig};
use resilience_core::simulator::LinkSimulator;

const SEED: u64 = 0xdac1_2012;

fn sim() -> LinkSimulator {
    LinkSimulator::new(SystemConfig::fast_test())
}

#[test]
fn engine_is_thread_count_invariant() {
    let sim = sim();
    let cfg = *sim.config();
    let storage = StorageConfig::msb_protected(3, 0.08, cfg.llr_bits);
    let run = |threads: usize| {
        SimulationEngine::with_threads(threads).run_point(&sim, &storage, 10.0, 16, SEED)
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, eight, "1 vs 8 workers");
    assert_eq!(one.packets, 16);
}

#[test]
fn shard_size_does_not_change_results() {
    let sim = sim();
    let cfg = *sim.config();
    let storage = StorageConfig::unprotected(0.10, cfg.llr_bits);
    let run = |threads: usize, shard: usize| {
        SimulationEngine::with_threads(threads)
            .shard_packets(shard)
            .run_point(&sim, &storage, 12.0, 13, SEED)
    };
    let reference = run(1, 13);
    for (threads, shard) in [(1, 1), (2, 5), (8, 2), (3, 13)] {
        assert_eq!(
            reference,
            run(threads, shard),
            "threads={threads} shard={shard}"
        );
    }
}

#[test]
fn serial_wrappers_match_engine() {
    let cfg = SystemConfig::fast_test();
    let sim = LinkSimulator::new(cfg);
    let storage = StorageConfig::unprotected(0.05, cfg.llr_bits);

    let wrapper = run_point(&cfg, &storage, 14.0, 10, 77);
    let engine = SimulationEngine::with_threads(8).run_point(&sim, &storage, 14.0, 10, 77);
    assert_eq!(wrapper, engine, "run_point must equal the parallel engine");

    let snrs = [6.0, 14.0];
    let sweep = run_sweep(&sim, &storage, &snrs, 8, 3);
    let par = SimulationEngine::with_threads(4).run_sweep(&sim, &storage, &snrs, 8, 3);
    assert_eq!(sweep, par, "run_sweep must equal the parallel engine");
}

#[test]
fn grid_matches_pointwise_reruns() {
    // Grid results must be reproducible and structurally sound; rows
    // share one die so identical (storage, snr, seed) reruns agree.
    let sim = sim();
    let cfg = *sim.config();
    let storages = [
        StorageConfig::Quantized,
        StorageConfig::unprotected(0.10, cfg.llr_bits),
    ];
    let snrs = [8.0, 16.0];
    let a = SimulationEngine::with_threads(1).run_grid(&sim, &storages, &snrs, 6, SEED);
    let b = SimulationEngine::with_threads(8).run_grid(&sim, &storages, &snrs, 6, SEED);
    assert_eq!(a, b, "grid must be thread-count invariant");
    assert_eq!(a.stats.len(), storages.len());
    for row in &a.stats {
        assert_eq!(row.len(), snrs.len());
        for stats in row {
            assert_eq!(stats.packets, 6);
        }
    }
}

#[test]
fn correlated_fading_is_thread_count_invariant() {
    // Regression: the slow-fading channel once kept a shared advancing
    // clock, making fades depend on global call order across workers.
    // Fades are now anchored per packet (block_phase), so the correlated
    // channel must satisfy the same determinism contract as the rest.
    let mut cfg = SystemConfig::fast_test();
    cfg.channel = resilience_core::config::ChannelKind::CorrelatedSlowFading;
    let sim = LinkSimulator::new(cfg);
    let storage = StorageConfig::unprotected(0.05, cfg.llr_bits);
    let run = |threads: usize| {
        SimulationEngine::with_threads(threads)
            .shard_packets(2)
            .run_point(&sim, &storage, 12.0, 12, SEED)
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "1 vs 4 workers under correlated fading");
    assert_eq!(serial, run(8), "1 vs 8 workers under correlated fading");
}

#[test]
fn batch_seeds_are_independent() {
    // Two points with the same settings but different seeds must (with
    // overwhelming probability at low SNR) differ; identical seeds must
    // agree exactly.
    let sim = sim();
    let cfg = *sim.config();
    let mk = |seed| PointSpec {
        storage: StorageConfig::unprotected(0.15, cfg.llr_bits),
        snr_db: 4.0,
        n_packets: 10,
        seed,
    };
    let stats = SimulationEngine::with_threads(2).run_batch(&sim, &[mk(1), mk(2), mk(1)]);
    assert_eq!(stats[0], stats[2], "same seed, same point");
    assert_eq!(stats[0].packets, stats[1].packets);
}
