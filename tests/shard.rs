//! Integration tests of the multi-host sharding coordinator
//! (`resilience_core::campaign::shard`) and its admin tooling:
//!
//! * **Partition determinism** — any split of a fig6-style grid into
//!   1–4 shards, run independently and merged in any order, yields a
//!   manifest **byte-identical** to the single-host run's and a store
//!   holding the identical chunk set (this is the invariant the
//!   `sharded-campaign` CI job re-proves with real binaries).
//! * **Ownership** — every point is owned by exactly one shard; foreign
//!   points stay placeholders and never touch store or manifest.
//! * **gc/verify round trip** — orphaned and duplicate store records
//!   are detected, collected, and the store still serves a full re-run
//!   afterwards; gc is idempotent.

use std::fs;
use std::path::{Path, PathBuf};

use hspa_phy::harq::HarqStats;
use resilience_core::campaign::store::{self, ChunkId};
use resilience_core::campaign::{shard, Campaign, CampaignSettings, ShardSpec};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;

const SEED: u64 = 0xdac1_2012;
const NAME: &str = "grid";

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("shard-itest-{}-{tag}", std::process::id()))
}

fn settings(spec: ShardSpec) -> CampaignSettings {
    CampaignSettings {
        initial_chunk: 6,
        shard: spec,
        ..Default::default()
    }
}

/// Runs the reference (defect × SNR) grid for one shard spec into
/// `dir`, returning the campaign (manifest already written).
fn run_grid(dir: &Path, spec: ShardSpec) -> Campaign {
    let cfg = SystemConfig::fast_test();
    let sim = LinkSimulator::new(cfg);
    let storages = [
        StorageConfig::Quantized,
        StorageConfig::unprotected(0.10, cfg.llr_bits),
    ];
    let snrs = [4.0, 12.0, 25.0];
    let campaign =
        Campaign::new(NAME, settings(spec), SimulationEngine::with_threads(2)).with_store_dir(dir);
    campaign.run_grid(&sim, &storages, &snrs, 18, SEED);
    campaign
}

/// Store records sorted into canonical order (single-host stores are in
/// execution order, merged stores in key order — compare as sets).
fn canonical_records(path: &Path) -> Vec<(ChunkId, HarqStats)> {
    let (mut records, malformed) = store::load_all(path).expect("store readable");
    assert_eq!(malformed, 0, "no torn lines expected in {}", path.display());
    records.sort_by_key(|(id, _)| *id);
    records
}

/// Applies the `code`-th permutation (factorial number system) to
/// `items` — lets the proptest below merge shards in every order.
fn permute<T>(mut items: Vec<T>, mut code: usize) -> Vec<T> {
    let mut out = Vec::new();
    while !items.is_empty() {
        let i = code % items.len();
        code /= items.len();
        out.push(items.remove(i));
    }
    out
}

#[test]
fn two_shards_merge_back_to_the_single_host_run() {
    let ref_dir = temp_dir("two-ref");
    let shard_dir = temp_dir("two-shards");
    let out_dir = shard_dir.join("merged");
    for d in [&ref_dir, &shard_dir] {
        let _ = fs::remove_dir_all(d);
    }

    let reference = run_grid(&ref_dir, ShardSpec::single());
    for i in 0..2 {
        let c = run_grid(&shard_dir, ShardSpec::new(i, 2).unwrap());
        // A shard's files are suffixed and hold only what it owns.
        assert!(c
            .store_path()
            .ends_with(format!("grid.shard-{i}-of-2.jsonl")));
        assert!(c.store_path().exists());
    }

    let report = shard::merge(NAME, &shard_dir, &out_dir).expect("merge succeeds");
    assert_eq!(report.shards, 2);
    assert_eq!(report.points, 6);
    assert_eq!(report.duplicate_chunks, 0);

    // The merged manifest is byte-identical to the single-host one...
    let merged_manifest = fs::read_to_string(&report.manifest_path).unwrap();
    let reference_manifest = fs::read_to_string(reference.manifest_path()).unwrap();
    assert_eq!(
        merged_manifest, reference_manifest,
        "merged manifest must be byte-identical to the single-host run"
    );
    // ...and the merged store holds the identical chunk set.
    assert_eq!(
        canonical_records(&report.store_path),
        canonical_records(&reference.store_path()),
    );
    // The merged pair passes consistency verification.
    let verify = shard::verify(NAME, &out_dir, ShardSpec::single()).unwrap();
    assert!(verify.ok(), "{:?}", verify.problems);
    assert_eq!(verify.covered_points, 6);
    assert_eq!(verify.orphan_chunks, 0);

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&shard_dir);
}

#[test]
fn every_point_is_owned_by_exactly_one_shard() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("own-{i}"))).collect();
    for d in &dirs {
        let _ = fs::remove_dir_all(d);
    }
    let mut owners_per_point: Vec<usize> = vec![0; 6];
    for i in 0..3 {
        let c = run_grid(&dirs[i as usize], ShardSpec::new(i, 3).unwrap());
        let manifest = c.manifest();
        assert_eq!(manifest.points_enumerated, 6);
        for p in &manifest.points {
            owners_per_point[p.index as usize] += 1;
            assert!(p.packets > 0, "owned points simulate");
        }
        // The store contains chunks only for owned keys.
        let owned_keys: Vec<u64> = manifest.points.iter().map(|p| p.key).collect();
        for (id, _) in canonical_records(&c.store_path()) {
            assert!(owned_keys.contains(&id.point), "foreign chunk in store");
        }
    }
    assert_eq!(owners_per_point, vec![1; 6], "exactly one owner per point");
    for d in &dirs {
        let _ = fs::remove_dir_all(d);
    }
}

#[test]
fn gc_and_verify_round_trip() {
    let dir = temp_dir("gc");
    let _ = fs::remove_dir_all(&dir);
    let campaign = run_grid(&dir, ShardSpec::single());
    let store_path = campaign.store_path();

    // A fresh run verifies clean: every chunk is part of its point's
    // cover, nothing is orphaned.
    let clean = shard::verify(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(clean.ok(), "{:?}", clean.problems);
    assert_eq!(
        (
            clean.orphan_chunks,
            clean.stale_chunks,
            clean.duplicate_chunks
        ),
        (0, 0, 0)
    );

    // Pollute the store: one orphan (key no manifest point references)
    // and one exact duplicate of a live chunk.
    let (records, _) = store::load_all(&store_path).unwrap();
    let kept_before = records.len();
    let mut rs = resilience_core::campaign::ResultStore::open(&store_path, true).unwrap();
    let cfg = SystemConfig::fast_test();
    let mut orphan_stats = HarqStats::new(cfg.max_transmissions, cfg.payload_bits);
    orphan_stats.packets = 4;
    orphan_stats.delivered = 4;
    orphan_stats.transmissions = 4;
    rs.put(
        ChunkId {
            point: 0xdead_beef,
            first_packet: 0,
            n_packets: 4,
        },
        &orphan_stats,
    )
    .unwrap();
    drop(rs);
    let dup = records[0].clone();
    let mut all = records;
    all.push((dup.0, dup.1));
    all.push((
        ChunkId {
            point: 0xdead_beef,
            first_packet: 0,
            n_packets: 4,
        },
        orphan_stats,
    ));
    store::write_records(&store_path, &all).unwrap();

    let dirty = shard::verify(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(
        dirty.ok(),
        "orphans/dups are GC fodder, not inconsistencies"
    );
    assert_eq!(dirty.orphan_chunks, 1);
    assert_eq!(dirty.duplicate_chunks, 1);

    // gc drops exactly the pollution and keeps the cover.
    let gc = shard::gc(NAME, &dir, ShardSpec::single()).unwrap();
    assert_eq!(gc.kept, kept_before);
    assert_eq!(gc.dropped_orphans, 1);
    assert_eq!(gc.dropped_duplicates, 1);
    assert_eq!((gc.dropped_stale, gc.dropped_malformed), (0, 0));
    let after = shard::verify(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(after.ok());
    assert_eq!((after.orphan_chunks, after.duplicate_chunks), (0, 0));

    // gc is idempotent...
    let gc2 = shard::gc(NAME, &dir, ShardSpec::single()).unwrap();
    assert_eq!(gc2.kept, kept_before);
    assert_eq!(
        (
            gc2.dropped_orphans,
            gc2.dropped_duplicates,
            gc2.dropped_stale
        ),
        (0, 0, 0)
    );
    // ...and the collected store still serves a full re-run from disk.
    let rerun = run_grid(&dir, ShardSpec::single());
    let report = rerun.manifest();
    let totals = report.totals();
    assert_eq!(
        totals.store_chunks, totals.total_chunks,
        "gc'd store must fully serve an identical re-run"
    );

    // A store that loses a needed chunk fails verification.
    let (mut records, _) = store::load_all(&store_path).unwrap();
    records.remove(0);
    store::write_records(&store_path, &records).unwrap();
    let broken = shard::verify(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(!broken.ok(), "missing chunk must be reported");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_records_error_loudly_and_gc_recovers() {
    let dir = temp_dir("corrupt");
    let _ = fs::remove_dir_all(&dir);
    let campaign = run_grid(&dir, ShardSpec::single());
    let store_path = campaign.store_path();

    // A record that parses but claims more deliveries than packets
    // would underflow `packets - delivered` into a garbage BLER. Every
    // strict load path must refuse it and point at the recovery tool.
    let corrupt = "{\"point\":\"00000000000000aa\",\"first\":0,\"len\":8,\"packets\":8,\
                   \"delivered\":9,\"transmissions\":8,\"info_bits\":100,\"failures_at\":[]}";
    let mut text = fs::read_to_string(&store_path).unwrap();
    text.push_str(corrupt);
    text.push('\n');
    fs::write(&store_path, text).unwrap();

    for result in [
        shard::verify(NAME, &dir, ShardSpec::single()).map(|_| ()),
        shard::stats(NAME, &dir, ShardSpec::single()).map(|_| ()),
        store::load_all(&store_path).map(|_| ()),
        resilience_core::campaign::ResultStore::open(&store_path, true).map(|_| ()),
    ] {
        let err = result.expect_err("strict path must refuse a corrupt record");
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");
    }

    // gc — the tool those errors name — drops exactly the corruption.
    let gc = shard::gc(NAME, &dir, ShardSpec::single()).unwrap();
    assert_eq!(gc.dropped_corrupt, 1);
    assert_eq!(gc.dropped_orphans, 0);
    let after = shard::verify(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(after.ok(), "{:?}", after.problems);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stats_summarizes_store_and_manifest() {
    let dir = temp_dir("stats");
    let _ = fs::remove_dir_all(&dir);
    run_grid(&dir, ShardSpec::single());
    let text = shard::stats(NAME, &dir, ShardSpec::single()).unwrap();
    assert!(text.contains("campaign grid"), "{text}");
    assert!(text.contains("6 points recorded of 6 enumerated"), "{text}");
    assert!(text.contains("chunk records"), "{text}");
    let _ = fs::remove_dir_all(&dir);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Any partition of the grid into 1–4 shards, merged in any
        /// order, reproduces the unsharded run: manifest byte-identical,
        /// store chunk-set identical.
        #[test]
        fn any_partition_merges_to_the_unsharded_run(
            n_shards in 1usize..5,
            perm_code in 0usize..24,
        ) {
            let tag = format!("prop-{n_shards}-{perm_code}");
            let ref_dir = temp_dir(&format!("{tag}-ref"));
            let shard_dir = temp_dir(&format!("{tag}-shards"));
            let out_dir = shard_dir.join("merged");
            let _ = fs::remove_dir_all(&ref_dir);
            let _ = fs::remove_dir_all(&shard_dir);

            let reference = run_grid(&ref_dir, ShardSpec::single());
            let mut manifests = Vec::new();
            for i in 0..n_shards {
                let spec = ShardSpec::new(i as u32, n_shards as u32).unwrap();
                let c = run_grid(&shard_dir, spec);
                manifests.push(c.manifest_path());
            }
            let manifests = permute(manifests, perm_code);
            let report = shard::merge_manifests(NAME, &manifests, &out_dir)
                .expect("complete shard sets must merge");

            prop_assert_eq!(report.shards, n_shards);
            prop_assert_eq!(report.points, 6);
            let merged = fs::read_to_string(&report.manifest_path).unwrap();
            let single = fs::read_to_string(reference.manifest_path()).unwrap();
            prop_assert_eq!(merged, single);
            prop_assert_eq!(
                canonical_records(&report.store_path),
                canonical_records(&reference.store_path())
            );

            let _ = fs::remove_dir_all(&ref_dir);
            let _ = fs::remove_dir_all(&shard_dir);
        }
    }
}
