//! Integration tests of the campaign subsystem's contracts:
//!
//! * **Determinism** — an adaptive chunked campaign at a fixed seed
//!   reproduces bit-identical `HarqStats` to a one-shot engine run with
//!   the same realized packet count, at 1, 2 and 8 worker threads.
//! * **Resumability** — a campaign interrupted after its first
//!   escalation level (or whose store is deleted entirely) finishes with
//!   identical final results.
//! * **Adaptivity** — on a fig6-style (defect × SNR) grid the controller
//!   realizes measurably fewer packets than the fixed budget while
//!   reaching the precision target on the points it stops early.

use std::path::PathBuf;

use resilience_core::campaign::{Campaign, CampaignPoint, CampaignSettings};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::montecarlo::StorageConfig;
use resilience_core::simulator::LinkSimulator;

const SEED: u64 = 0xdac1_2012;

fn sim() -> LinkSimulator {
    LinkSimulator::new(SystemConfig::fast_test())
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("campaign-itest-{}-{tag}", std::process::id()))
}

fn waterfall_points(cfg: &SystemConfig, max_packets: usize) -> Vec<CampaignPoint> {
    vec![
        CampaignPoint {
            label: "clean 25 dB".into(),
            storage: StorageConfig::Quantized,
            snr_db: 25.0,
            max_packets,
            seed: SEED,
            fault_seed: None,
        },
        CampaignPoint {
            label: "10% defects 12 dB".into(),
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 12.0,
            max_packets,
            seed: SEED.wrapping_add(1),
            fault_seed: None,
        },
        CampaignPoint {
            label: "10% defects 5 dB".into(),
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 5.0,
            max_packets,
            seed: SEED.wrapping_add(2),
            fault_seed: None,
        },
    ]
}

fn settings(initial_chunk: usize) -> CampaignSettings {
    CampaignSettings {
        initial_chunk,
        ..Default::default()
    }
}

#[test]
fn adaptive_campaign_is_thread_invariant_and_matches_one_shot() {
    let sim = sim();
    let cfg = *sim.config();
    let points = waterfall_points(&cfg, 24);

    // Each thread count gets its own store so every run simulates from
    // scratch — this isolates engine determinism from store replay.
    let run_at = |threads: usize| {
        let dir = temp_dir(&format!("threads-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new("det", settings(8), SimulationEngine::with_threads(threads))
            .with_store_dir(&dir);
        let report = campaign.run(&sim, &points);
        let _ = std::fs::remove_dir_all(&dir);
        report
    };

    let serial = run_at(1);
    for threads in [2, 8] {
        let parallel = run_at(threads);
        assert_eq!(
            serial.outcomes, parallel.outcomes,
            "adaptive campaign must be bit-identical at {threads} threads"
        );
    }

    // The realized statistics of every point equal a one-shot engine run
    // over exactly the realized packet count.
    let engine = SimulationEngine::with_threads(8);
    for (outcome, point) in serial.outcomes.iter().zip(&points) {
        let one_shot = engine.run_point(
            &sim,
            &point.storage,
            point.snr_db,
            outcome.packets(),
            point.seed,
        );
        assert_eq!(
            outcome.stats,
            one_shot,
            "chunked adaptive result of '{}' must equal a one-shot run of {} packets",
            point.label,
            outcome.packets()
        );
    }
}

#[test]
fn interrupted_campaign_resumes_to_identical_results() {
    let sim = sim();
    let cfg = *sim.config();
    let dir = temp_dir("resume");
    let _ = std::fs::remove_dir_all(&dir);
    let engine = SimulationEngine::with_threads(2);

    // Reference: the full campaign with no store help at all.
    let fresh_dir = temp_dir("resume-fresh");
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let reference = Campaign::new("res", settings(4), engine.clone())
        .with_store_dir(&fresh_dir)
        .run(&sim, &waterfall_points(&cfg, 16));
    let _ = std::fs::remove_dir_all(&fresh_dir);

    // "Interrupted" campaign: the same points capped at the first
    // escalation level populate a partial store...
    let partial = Campaign::new("res", settings(4), engine.clone())
        .with_store_dir(&dir)
        .run(&sim, &waterfall_points(&cfg, 4));
    assert!(partial.outcomes.iter().all(|o| o.packets() == 4));

    // ...and the full campaign resumes on top of it: early chunks come
    // from the store, later chunks simulate, results are identical.
    // (Only the store-provenance counters may differ between a resumed
    // and a from-scratch run — everything scientific must match.)
    let essentials = |report: &resilience_core::CampaignReport| {
        report
            .outcomes
            .iter()
            .map(|o| (o.stats.clone(), o.converged, o.check, o.chunks))
            .collect::<Vec<_>>()
    };
    let resumed = Campaign::new("res", settings(4), engine.clone())
        .with_store_dir(&dir)
        .run(&sim, &waterfall_points(&cfg, 16));
    assert!(resumed.chunks_from_store() > 0, "must reuse stored chunks");
    assert_eq!(reference.stats(), resumed.stats());
    assert_eq!(essentials(&reference), essentials(&resumed));

    // Deleting the store mid-way changes nothing about the results: a
    // re-run from an empty store still converges to the same outcomes.
    let _ = std::fs::remove_dir_all(&dir);
    let after_delete = Campaign::new("res", settings(4), engine)
        .with_store_dir(&dir)
        .run(&sim, &waterfall_points(&cfg, 16));
    assert_eq!(after_delete.chunks_from_store(), 0);
    assert_eq!(essentials(&reference), essentials(&after_delete));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_grid_saves_packets_vs_fixed_budget() {
    // A fig6-style (defect × SNR) grid: high-SNR points are easy and
    // must stop at the first chunk, so the campaign realizes measurably
    // fewer packets than `storages × snrs × max_packets`.
    let sim = sim();
    let cfg = *sim.config();
    let dir = temp_dir("grid");
    let _ = std::fs::remove_dir_all(&dir);
    let storages = [
        StorageConfig::Quantized,
        StorageConfig::unprotected(0.10, cfg.llr_bits),
    ];
    let snrs = [4.0, 12.0, 25.0];
    let max_packets = 64;
    let campaign =
        Campaign::new("grid", settings(32), SimulationEngine::auto()).with_store_dir(&dir);
    let grid = campaign.run_grid(&sim, &storages, &snrs, max_packets, SEED);
    assert_eq!(grid.stats.len(), storages.len());
    assert_eq!(grid.stats[0].len(), snrs.len());

    let totals = campaign.manifest().totals();
    let fixed = (storages.len() * snrs.len() * max_packets) as u64;
    assert_eq!(totals.budget_packets, fixed);
    assert!(
        totals.realized_packets < fixed,
        "adaptive grid must beat the fixed budget ({} vs {fixed})",
        totals.realized_packets
    );
    assert!(totals.saved_vs_fixed() > 0.0);
    // The clean 25 dB point decodes everything first try: it must have
    // stopped at the initial chunk.
    let clean_easy = &grid.stats[0][snrs.len() - 1];
    assert_eq!(clean_easy.packets, 32, "easy point stops after one chunk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhaustive_campaign_grid_and_sweep_match_the_engine() {
    // Campaign::run_grid / run_sweep re-derive the engine's seed tree
    // (row seed, shared die, the 0x100+column offset); this pins the two
    // paths together so neither copy can silently diverge.
    let sim = sim();
    let cfg = *sim.config();
    let dir = temp_dir("engine-parity");
    let _ = std::fs::remove_dir_all(&dir);
    let storages = [
        StorageConfig::Quantized,
        StorageConfig::unprotected(0.10, cfg.llr_bits),
    ];
    let snrs = [8.0, 16.0];
    let engine = SimulationEngine::with_threads(2);
    let never_stop = CampaignSettings {
        initial_chunk: 3,
        ..CampaignSettings::exhaustive()
    };

    let campaign = Campaign::new("parity", never_stop, engine.clone()).with_store_dir(&dir);
    assert_eq!(
        campaign.run_grid(&sim, &storages, &snrs, 7, SEED),
        engine.run_grid(&sim, &storages, &snrs, 7, SEED),
        "exhaustive campaign grid must equal the one-shot engine grid"
    );
    assert_eq!(
        campaign.run_sweep(&sim, &storages[1], &snrs, 7, SEED),
        engine.run_sweep(&sim, &storages[1], &snrs, 7, SEED),
        "exhaustive campaign sweep must equal the one-shot engine sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

mod properties {
    use super::*;
    use hspa_phy::harq::HarqStats;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any two-way split of a point's packet range merges to the
        /// one-shot statistics, for any thread count and shard size.
        #[test]
        fn chunk_merged_stats_equal_one_shot(
            n in 2usize..14,
            cut in 1usize..13,
            threads in 1usize..5,
            shard in 1usize..5,
        ) {
            let cut = 1 + (cut - 1) % (n - 1); // 1..n
            let sim = sim();
            let cfg = *sim.config();
            let storage = StorageConfig::unprotected(0.08, cfg.llr_bits);
            let engine = SimulationEngine::with_threads(threads).shard_packets(shard);
            let one_shot = engine.run_point(&sim, &storage, 10.0, n, SEED);
            let mut merged = HarqStats::new(cfg.max_transmissions, cfg.payload_bits);
            merged.merge(&engine.run_point_resumed(&sim, &storage, 10.0, 0, cut, SEED));
            merged.merge(&engine.run_point_resumed(&sim, &storage, 10.0, cut, n - cut, SEED));
            prop_assert_eq!(one_shot, merged);
        }
    }
}
