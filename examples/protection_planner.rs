//! Protection planner: pick the cheapest storage scheme for a defect rate.
//!
//! ```text
//! cargo run --release --example protection_planner [-- <defect_pct> <packets>]
//! ```
//!
//! Given a defect rate (e.g. from operating at a scaled supply), compares
//! every storage option the paper discusses — unprotected 6T, each
//! MSB-protection depth, and full-word SECDED — on throughput, area and
//! the gain/area efficiency metric of Fig. 8, then recommends one.

use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{run_point_with, DefectSpec, StorageConfig};
use resilience_core::report::render_table;
use resilience_core::simulator::LinkSimulator;
use silicon::area_power::protection_efficiency;
use silicon::ecc::Secded;
use silicon::fault_map::FaultKind;
use silicon::ProtectionPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defect_pct: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let packets: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let frac = defect_pct / 100.0;
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let snr = 12.0;

    let reference = run_point_with(&sim, &StorageConfig::Quantized, snr, packets, 7)
        .normalized_throughput()
        .max(1e-9);
    println!(
        "planning for Nf = {defect_pct}% at {snr} dB ({packets} packets/point); defect-free throughput {reference:.3}\n"
    );

    let mut rows = Vec::new();
    let mut best: Option<(String, f64)> = None;
    for protected in 0..=cfg.llr_bits {
        let plan = ProtectionPlan::msb_protected(cfg.llr_bits, protected);
        let storage = StorageConfig::msb_protected(protected, frac, cfg.llr_bits);
        let thr = run_point_with(&sim, &storage, snr, packets, 7 + protected as u64)
            .normalized_throughput();
        let overhead = plan.area_overhead_vs_6t();
        let eff = protection_efficiency(thr / reference, overhead);
        let label = format!("{protected} MSBs in 8T");
        if best.as_ref().map(|(_, e)| eff > *e).unwrap_or(true) {
            best = Some((label.clone(), eff));
        }
        rows.push(vec![
            label,
            format!("{:.1}%", overhead * 100.0),
            format!("{thr:.3}"),
            format!("{:.3}", thr / reference),
            format!("{eff:.3}"),
        ]);
    }
    let ecc = Secded::new(cfg.llr_bits);
    let thr = run_point_with(
        &sim,
        &StorageConfig::Ecc {
            defects: DefectSpec::Fraction(frac),
            fault_kind: FaultKind::Flip,
        },
        snr,
        packets,
        99,
    )
    .normalized_throughput();
    let eff = protection_efficiency(thr / reference, ecc.storage_overhead());
    rows.push(vec![
        format!("SECDED({},{})", ecc.codeword_bits(), ecc.data_bits()),
        format!("{:.1}%", ecc.storage_overhead() * 100.0),
        format!("{thr:.3}"),
        format!("{:.3}", thr / reference),
        format!("{eff:.3}"),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "scheme".into(),
                "area ovh".into(),
                "throughput".into(),
                "gain".into(),
                "gain/area".into()
            ],
            &rows
        )
    );
    if let Some((label, eff)) = best {
        println!("recommended: {label} (efficiency {eff:.3})");
    }
    println!("\nexpected: 3-4 protected MSBs maximize gain/area, as in the paper's Fig. 8.");
}
