//! Voltage scaling: find the lowest safe supply for the HARQ LLR memory.
//!
//! ```text
//! cargo run --release --example voltage_scaling [-- <packets>]
//! ```
//!
//! Sweeps the supply voltage; at each point the cell-failure model
//! dictates the defect population of the LLR array (manufacturing view,
//! Bernoulli per cell), and a Monte-Carlo run measures the throughput at
//! the 3GPP check point (18 dB). Prints the voltage/power/throughput
//! trade-off for the plain 6T array and the 4-MSB hybrid.

use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{run_point_with, DefectSpec, StorageConfig};
use resilience_core::simulator::LinkSimulator;
use silicon::area_power::PowerModel;
use silicon::cell::{BitCellKind, CellFailureModel};
use silicon::fault_map::FaultKind;
use silicon::ProtectionPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let packets: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(30);
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let model = CellFailureModel::dac12();
    let pm = PowerModel::dac12();
    let snr = 18.0;
    let requirement = 0.53;

    let plans = [
        (
            "plain 6T",
            ProtectionPlan::uniform(cfg.llr_bits, BitCellKind::Sram6T),
        ),
        (
            "hybrid 4MSB/8T",
            ProtectionPlan::msb_protected(cfg.llr_bits, 4),
        ),
    ];

    println!("throughput @ {snr} dB vs supply voltage ({packets} packets/point)");
    println!("3GPP requirement for this mode: {requirement}\n");
    for (name, plan) in &plans {
        println!(
            "--- {name} (area overhead {:.0}%)",
            plan.area_overhead_vs_6t() * 100.0
        );
        println!(
            "{:>6} {:>12} {:>11} {:>11} {:>8}",
            "Vdd", "E[defect %]", "throughput", "rel power", "meets?"
        );
        let mut min_ok_vdd = f64::NAN;
        for i in 0..=8 {
            let vdd = 1.0 - 0.05 * i as f64;
            let storage = StorageConfig::Faulty {
                plan: plan.clone(),
                defects: DefectSpec::AtVdd(vdd),
                fault_kind: FaultKind::Flip,
            };
            let stats = run_point_with(&sim, &storage, snr, packets, 42 + i);
            let thr = stats.normalized_throughput();
            let frac = plan.expected_defect_fraction(&model, vdd);
            let power = pm.cell_power(plan.relative_area(), vdd) / pm.cell_power(1.0, 1.0);
            let ok = thr >= requirement;
            if ok {
                min_ok_vdd = vdd;
            }
            println!(
                "{vdd:>6.2} {:>11.4}% {thr:>11.3} {power:>11.3} {:>8}",
                frac * 100.0,
                if ok { "yes" } else { "NO" }
            );
        }
        if min_ok_vdd.is_finite() {
            println!("lowest safe supply: {min_ok_vdd:.2} V\n");
        } else {
            println!("no safe supply found in the sweep\n");
        }
    }
    println!("expected: the hybrid array stays above the requirement well below the");
    println!("6T limit, which is where the paper's ~30% power saving comes from.");
}
