//! Yield explorer: how many defective cells should a manufacturer accept?
//!
//! ```text
//! cargo run --release --example yield_explorer [-- <cells> <target>]
//! ```
//!
//! Walks the paper's Section 4 yield methodology: for each supply voltage
//! the cell-failure model gives `P_cell`; Eq. (2) then says how many
//! faulty cells must be accepted to hit the yield target, and what defect
//! *fraction* that is — the number the throughput experiments consume.

use silicon::cell::{BitCellKind, CellFailureModel};
use silicon::yield_model::{min_accepted_faults, yield_accepting, yield_zero_defect};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cells: u64 = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200 * 1024);
    let target: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.95);
    let model = CellFailureModel::dac12();

    println!(
        "array: {cells} cells, yield target {:.0}%\n",
        target * 100.0
    );
    println!(
        "{:>6} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "Vdd", "Pcell(6T)", "Y(zero-defect)", "Nf@target", "defect %", "verdict"
    );
    println!("{}", "-".repeat(70));
    for i in 0..=10 {
        let vdd = 1.0 - 0.04 * i as f64;
        let p = model.p_cell(BitCellKind::Sram6T, vdd);
        let y0 = yield_zero_defect(cells, p);
        let nf = min_accepted_faults(cells, p, target);
        let (nf_str, frac_str, verdict) = match nf {
            Some(n) => {
                let frac = n as f64 / cells as f64;
                let verdict = if frac <= 0.001 {
                    "free lunch"
                } else if frac <= 0.10 {
                    "needs resilience"
                } else {
                    "needs protection"
                };
                (n.to_string(), format!("{:.4}%", frac * 100.0), verdict)
            }
            None => ("-".into(), "-".into(), "hopeless"),
        };
        println!("{vdd:>6.2} {p:>10.1e} {y0:>14.3e} {nf_str:>12} {frac_str:>12} {verdict:>10}");
    }

    // The paper's Fig. 5 anchor, spelled out.
    let p = 1e-4;
    let nf_01pct = (cells as f64 * 0.001) as u64;
    println!("\nFig. 5 anchor: Pcell = 1e-4 on this array:");
    println!(
        "  zero-defect yield      = {:.2e}",
        yield_zero_defect(cells, p)
    );
    println!(
        "  accepting 0.1% defects = {:.4}",
        yield_accepting(cells, p, nf_01pct)
    );
    println!("  -> accepting a tiny defect count converts scrap into sellable dies.");
}
