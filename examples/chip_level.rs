//! Chip-level waveform demo: the parts the symbol-level simulator skips.
//!
//! ```text
//! cargo run --release --example chip_level
//! ```
//!
//! Builds the full HS-PDSCH transmit waveform — 64QAM symbols on several
//! SF16 OVSF codes, Gold-scrambled, RRC-shaped at 4 samples/chip — sends
//! it through an AWGN channel, runs the matched-filter front-end, and
//! checks the recovered symbol quality (EVM) and bit errors per code.

use dsp::rng::{complex_gaussian, random_bits, seeded};
use dsp::stats::{db_to_linear, linear_to_db};
use hspa_phy::bits::hamming_distance;
use hspa_phy::hsdpa::HsdpaFrontend;
use hspa_phy::Modulation;

fn main() {
    let n_codes = 8;
    let n_sym = 64; // per code
    let modulation = Modulation::Qam64;
    let snr_db = 25.0;
    let fe = HsdpaFrontend::new(n_codes, 5, 4);
    let mut rng = seeded(11);

    // Independent 64QAM streams per channelization code.
    let mut bits = Vec::new();
    let mut streams = Vec::new();
    for _ in 0..n_codes {
        let b = random_bits(&mut rng, n_sym * modulation.bits_per_symbol());
        streams.push(modulation.modulate(&b));
        bits.push(b);
    }

    let wave = fe.transmit(&streams);
    println!(
        "waveform: {} samples ({} codes x {} symbols x SF16 x {} sps + filter tails)",
        wave.len(),
        n_codes,
        n_sym,
        fe.sps()
    );

    // Per-chip SNR: the waveform carries n_codes streams at 1/n_codes
    // power each, so per-sample signal power ≈ 1/sps after shaping.
    let sig_power = wave.iter().map(|w| w.norm_sqr()).sum::<f64>() / wave.len() as f64;
    let noise_var = sig_power / db_to_linear(snr_db);
    let rx: Vec<_> = wave
        .iter()
        .map(|&w| w + complex_gaussian(&mut rng, noise_var))
        .collect();

    let recovered = fe.receive(&rx, n_sym);
    println!("\nper-code results at {snr_db} dB chip SNR:");
    let mut total_err = 0usize;
    let mut total_bits = 0usize;
    for k in 0..n_codes {
        let evm: f64 = streams[k]
            .iter()
            .zip(&recovered[k])
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / n_sym as f64;
        let hard = modulation.demodulate_hard(&recovered[k]);
        let errs = hamming_distance(&hard, &bits[k]);
        total_err += errs;
        total_bits += bits[k].len();
        println!(
            "  code {k:2}: EVM {:6.1} dB, bit errors {errs}/{}",
            linear_to_db(evm),
            bits[k].len()
        );
    }
    println!(
        "\ntotal raw BER: {:.4} ({} / {} bits)",
        total_err as f64 / total_bits as f64,
        total_err,
        total_bits
    );
    println!("despreading gain (SF16 = 12 dB) makes the symbol SNR comfortable for 64QAM.");
}
