//! Quickstart: simulate an HSPA+ packet through a defective LLR memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's 64QAM link, injects 1 % flip faults into the HARQ
//! LLR storage, and walks one packet through encode → fade → equalize →
//! demap → store-in-faulty-memory → combine → decode, printing what the
//! HARQ entity saw at every transmission.

use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{build_buffer, run_point, StorageConfig};
use resilience_core::simulator::LinkSimulator;

fn main() {
    // The paper's evaluation mode: 64QAM, 10-bit LLRs, <=4 transmissions.
    let cfg = SystemConfig::paper_64qam();
    println!(
        "HSPA+ link: {} info bits + CRC24 -> {} coded bits,",
        cfg.payload_bits,
        cfg.coded_len()
    );
    println!(
        "            {} channel bits/tx ({} {} symbols), rate {:.2}",
        cfg.channel_bits_per_tx,
        cfg.symbols_per_tx(),
        cfg.modulation,
        cfg.initial_rate()
    );
    println!(
        "LLR memory: {} words x {} bits = {} cells\n",
        cfg.coded_len(),
        cfg.llr_bits,
        cfg.storage_cells()
    );

    // A die that passed inspection with 1% defective cells.
    let storage = StorageConfig::unprotected(0.01, cfg.llr_bits);
    let sim = LinkSimulator::new(cfg);
    let mut buffer = build_buffer(&cfg, &storage, 42);
    let mut rng = dsp::rng::seeded(7);

    println!(
        "--- single packets at 12 dB on the defective die ({})",
        storage.label()
    );
    for p in 0..5 {
        let out = sim.simulate_packet(12.0, &mut buffer, &mut rng);
        match out.success_after {
            Some(t) => println!("packet {p}: delivered after {t} transmission(s)"),
            None => println!(
                "packet {p}: FAILED after {} transmissions",
                out.transmissions_used
            ),
        }
    }

    // Monte-Carlo at two SNRs: the resilience headline in two lines.
    println!("\n--- Monte-Carlo (30 packets/point)");
    for snr in [9.0, 18.0] {
        let clean = run_point(&cfg, &StorageConfig::Quantized, snr, 30, 1);
        let faulty = run_point(&cfg, &storage, snr, 30, 1);
        println!(
            "SNR {snr:>4.1} dB: defect-free throughput {:.3} | 1% defects {:.3}",
            clean.normalized_throughput(),
            faulty.normalized_throughput()
        );
    }
    println!("\nA wireless receiver keeps working on imperfect silicon - the paper's point.");
}
