//! Quick decoder micro-benchmark (worst case: max iterations).
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let k = 624usize;
    let code = hspa_phy::turbo::TurboCode::new(k).unwrap();
    let mut rng = dsp::rng::seeded(1);
    let bits = dsp::rng::random_bits(&mut rng, k);
    let coded = code.encode(&bits);
    // Very noisy LLRs: no early stop, all 6 iterations run.
    let llrs: Vec<f64> = coded
        .iter()
        .map(|&b| {
            0.3 * (if b == 0 { 1.0 } else { -1.0 }) + 2.0 * dsp::rng::standard_normal(&mut rng)
        })
        .collect();
    let mut scratch = hspa_phy::turbo::TurboScratch::new();
    let mut out = hspa_phy::turbo::DecodeResult::new();
    // warmup
    for _ in 0..5 {
        code.decode_into(&llrs, 6, &mut scratch, &mut out);
    }
    let reps = 200;
    let t = Instant::now();
    for _ in 0..reps {
        code.decode_into(black_box(&llrs), 6, &mut scratch, &mut out);
        black_box(&out);
    }
    let el = t.elapsed().as_secs_f64();
    let per_decode = el / reps as f64 * 1e6;
    let sisos = 2 * out.iterations_run;
    println!(
        "iterations_run={} {:.1} us/decode, {:.1} us/SISO, {:.1} ns/trellis-step",
        out.iterations_run,
        per_decode,
        per_decode / sisos as f64,
        per_decode * 1000.0 / (sisos * (k + 3)) as f64
    );
    // Clean LLRs: early stop path.
    let clean: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 6.0 } else { -6.0 })
        .collect();
    for _ in 0..5 {
        code.decode_into(&clean, 6, &mut scratch, &mut out);
    }
    let t = Instant::now();
    for _ in 0..reps {
        code.decode_into(black_box(&clean), 6, &mut scratch, &mut out);
        black_box(&out);
    }
    println!(
        "clean: iterations_run={} {:.1} us/decode",
        out.iterations_run,
        t.elapsed().as_secs_f64() / reps as f64 * 1e6
    );
}
