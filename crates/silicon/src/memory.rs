//! Bit-accurate faulty storage array.
//!
//! [`FaultyMemory`] is the LLR-storage stand-in: a word-addressable array
//! that behaves like perfect SRAM except where a [`FaultMap`] marks cells
//! defective. Following the paper, corruption is applied when data passes
//! through the array (a stored bit mapped onto a faulty cell is read back
//! inverted); the fault map itself never changes during a simulation.

use serde::{Deserialize, Serialize};

use crate::fault_map::FaultMap;

/// A word-addressable memory whose cells may be defective.
///
/// # Example
///
/// ```
/// use silicon::{FaultMap, FaultyMemory};
/// use silicon::fault_map::FaultKind;
///
/// let map = FaultMap::random_exact(64, 10, 32, FaultKind::Flip, 1);
/// let mut mem = FaultyMemory::new(map);
/// mem.write(3, 0b11_1111_1111);
/// let v = mem.read(3); // possibly corrupted
/// assert!(v <= 0b11_1111_1111);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyMemory {
    map: FaultMap,
    data: Vec<u32>,
}

impl FaultyMemory {
    /// Creates a zero-initialized memory with the given fault map.
    pub fn new(map: FaultMap) -> Self {
        let data = vec![0u32; map.words() as usize];
        Self { map, data }
    }

    /// Number of addressable words.
    pub fn words(&self) -> u32 {
        self.map.words()
    }

    /// Word width in bits.
    pub fn bits_per_word(&self) -> u8 {
        self.map.bits_per_word()
    }

    /// The underlying fault map.
    pub fn fault_map(&self) -> &FaultMap {
        &self.map
    }

    /// Stores `value` at word `addr` (the value is kept pristine; faults
    /// manifest on read, which models read-path inversion and also keeps
    /// flip faults involutive as in the paper's methodology).
    ///
    /// Bits above the word width are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: u32, value: u32) {
        let mask = word_mask(self.map.bits_per_word());
        self.data[addr as usize] = value & mask;
    }

    /// Reads word `addr`, applying any faults on the way out.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: u32) -> u32 {
        let raw = self.data[addr as usize];
        self.map.corrupt(addr, raw)
    }

    /// Reads word `addr` without fault corruption (test/inspection hook).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_pristine(&self, addr: u32) -> u32 {
        self.data[addr as usize]
    }

    /// The pristine backing words (no fault corruption) — bulk readers
    /// pair this with [`FaultMap::masks`](crate::fault_map::FaultMap::masks)
    /// to fuse corruption with their per-word decode.
    #[inline]
    pub fn pristine_words(&self) -> &[u32] {
        &self.data
    }

    /// Writes a whole slice starting at address 0.
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the array.
    pub fn write_all(&mut self, values: &[u32]) {
        assert!(
            values.len() <= self.data.len(),
            "slice longer than memory ({} > {})",
            values.len(),
            self.data.len()
        );
        let mask = word_mask(self.map.bits_per_word());
        for (slot, &v) in self.data.iter_mut().zip(values) {
            *slot = v & mask;
        }
    }

    /// Reads `n` words starting at address 0, with fault corruption.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the array size.
    pub fn read_all(&self, n: usize) -> Vec<u32> {
        assert!(n <= self.data.len(), "read beyond memory size");
        let mut out = Vec::with_capacity(n);
        self.read_stream(n, |v| out.push(v));
        out
    }

    /// Streams the first `n` words (fault corruption applied) through
    /// `f` — the bulk form of [`FaultyMemory::read`], with the per-word
    /// addressing overhead hoisted out of the loop.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the array size.
    #[inline]
    pub fn read_stream(&self, n: usize, f: impl FnMut(u32)) {
        assert!(n <= self.data.len(), "read beyond memory size");
        self.map.corrupt_stream(&self.data[..n], f);
    }

    /// Overwrites words `0..` from an iterator of values (masked to the
    /// word width like [`FaultyMemory::write`]) — the bulk form of a
    /// store loop. Values beyond the array size are ignored.
    #[inline]
    pub fn fill_from(&mut self, values: impl IntoIterator<Item = u32>) {
        let mask = word_mask(self.map.bits_per_word());
        for (slot, v) in self.data.iter_mut().zip(values) {
            *slot = v & mask;
        }
    }

    /// Fused store + read-back over words `0..`: each element of `data`
    /// is mapped to a word via `to_word` (masked to the word width like
    /// [`FaultyMemory::write`]), stored, and replaced in place with
    /// `from_word` of the corrupted read-back — the write-then-read
    /// round trip of a soft-combining pass in one sweep. Elements beyond
    /// the array size are ignored, like [`FaultyMemory::fill_from`].
    #[inline]
    pub fn write_read_all<T>(
        &mut self,
        data: &mut [T],
        mut to_word: impl FnMut(&T) -> u32,
        mut from_word: impl FnMut(u32) -> T,
    ) {
        let mask = word_mask(self.map.bits_per_word());
        match self.map.masks() {
            None => {
                for (slot, d) in self.data.iter_mut().zip(data.iter_mut()) {
                    let w = to_word(d) & mask;
                    *slot = w;
                    *d = from_word(w);
                }
            }
            Some((xor, clear, set)) => {
                for ((slot, d), ((&x, &c), &s)) in self
                    .data
                    .iter_mut()
                    .zip(data.iter_mut())
                    .zip(xor.iter().zip(clear).zip(set))
                {
                    let w = to_word(d) & mask;
                    *slot = w;
                    *d = from_word(((w ^ x) & !c) | s);
                }
            }
        }
    }

    /// Clears all stored words to zero (fault map unchanged).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

fn word_mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_map::{FaultKind, FaultMap};
    use proptest::prelude::*;

    #[test]
    fn defect_free_memory_is_transparent() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(16, 10));
        for (i, v) in [0u32, 1, 0x3ff, 0x2aa].iter().enumerate() {
            mem.write(i as u32, *v);
            assert_eq!(mem.read(i as u32), *v);
        }
    }

    #[test]
    fn width_masking() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(4, 8));
        mem.write(0, 0xffff_ffff);
        assert_eq!(mem.read(0), 0xff);
    }

    #[test]
    fn faults_corrupt_reads_not_storage() {
        let map = FaultMap::random_exact(8, 8, 16, FaultKind::Flip, 5);
        let mut mem = FaultyMemory::new(map);
        mem.write(0, 0xaa);
        let _ = mem.read(0);
        assert_eq!(mem.read_pristine(0), 0xaa, "storage must stay pristine");
        // Reading twice gives the same corrupted value (faults are static).
        assert_eq!(mem.read(0), mem.read(0));
    }

    #[test]
    fn corrupted_bits_match_fault_count_for_all_ones() {
        let n_faults = 40;
        let map = FaultMap::random_exact(32, 10, n_faults, FaultKind::Flip, 9);
        let mut mem = FaultyMemory::new(map);
        for a in 0..32 {
            mem.write(a, 0);
        }
        // With all-zero storage, every flip fault reads back as a 1.
        let ones: u32 = (0..32).map(|a| mem.read(a).count_ones()).sum();
        assert_eq!(ones as usize, n_faults);
    }

    #[test]
    fn write_all_read_all_roundtrip_defect_free() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(64, 10));
        let vals: Vec<u32> = (0..64).map(|i| (i * 7) & 0x3ff).collect();
        mem.write_all(&vals);
        assert_eq!(mem.read_all(64), vals);
    }

    #[test]
    fn clear_zeroes_data() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(4, 10));
        mem.write(2, 0x3ff);
        mem.clear();
        assert_eq!(mem.read(2), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_write_panics() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(4, 10));
        mem.write(4, 1);
    }

    #[test]
    #[should_panic(expected = "slice longer")]
    fn oversized_write_all_panics() {
        let mut mem = FaultyMemory::new(FaultMap::defect_free(2, 10));
        mem.write_all(&[0; 3]);
    }

    proptest! {
        #[test]
        fn hamming_distance_bounded_by_faults(seed in 0u64..50, v in 0u32..1024) {
            let map = FaultMap::random_exact(16, 10, 20, FaultKind::Flip, seed);
            let mut mem = FaultyMemory::new(map);
            for a in 0..16u32 {
                mem.write(a, v);
            }
            let mut flipped = 0u32;
            for a in 0..16u32 {
                flipped += (mem.read(a) ^ v).count_ones();
            }
            prop_assert_eq!(flipped, 20);
        }
    }
}
