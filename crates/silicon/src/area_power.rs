//! Relative area and power models (Fig. 8 and Section 6.3).
//!
//! Absolute silicon numbers are technology-library data we cannot obtain;
//! the paper's arguments only use *relative* quantities, which this module
//! models explicitly:
//!
//! * array area — sum of per-cell relative areas from the protection plan
//!   (plus ECC column overhead when configured);
//! * dynamic power — `P ∝ C·V²` with capacitance proportional to area;
//! * leakage power — proportional to area and supply voltage;
//! * the iso-area power-saving comparison of Section 6.3 (hybrid array at
//!   0.6 V vs conventional 6T at its minimum reliable supply).

use serde::{Deserialize, Serialize};

use crate::ecc::Secded;
use crate::hybrid::ProtectionPlan;

/// Relative area of an LLR storage array of `words` words under `plan`,
/// in units of one 6T bit cell.
pub fn array_area(words: u32, plan: &ProtectionPlan) -> f64 {
    words as f64 * plan.bits() as f64 * plan.relative_area()
}

/// Relative area of an ECC-protected array storing `words` words of
/// `data_bits` payload with SECDED check bits, all in 6T cells.
pub fn ecc_array_area(words: u32, data_bits: u8) -> f64 {
    let code = Secded::new(data_bits);
    words as f64 * code.codeword_bits() as f64
}

/// Simple memory power model: dynamic switching plus leakage.
///
/// All quantities are relative; [`PowerModel::dac12`] normalizes so that a
/// plain 6T array at 1.0 V has power 1.0 per cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Nominal supply voltage (volts).
    pub v_nominal: f64,
    /// Fraction of nominal-supply power that is dynamic (`∝ V²`).
    pub dynamic_fraction: f64,
    /// Fraction of nominal-supply power that is leakage (`∝ V`).
    pub leakage_fraction: f64,
}

impl PowerModel {
    /// 65 nm-class defaults: 70 % dynamic, 30 % leakage at nominal supply.
    pub fn dac12() -> Self {
        Self {
            v_nominal: 1.0,
            dynamic_fraction: 0.7,
            leakage_fraction: 0.3,
        }
    }

    /// Relative power of one cell of relative area `area` at supply `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn cell_power(&self, area: f64, vdd: f64) -> f64 {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "supply voltage must be positive"
        );
        let vr = vdd / self.v_nominal;
        area * (self.dynamic_fraction * vr * vr + self.leakage_fraction * vr)
    }

    /// Relative power of a whole array under `plan` at supply `vdd`.
    pub fn array_power(&self, words: u32, plan: &ProtectionPlan, vdd: f64) -> f64 {
        words as f64 * plan.bits() as f64 * self.cell_power(plan.relative_area(), vdd)
    }

    /// Fractional power saving of configuration `(plan_b, v_b)` versus the
    /// reference `(plan_a, v_a)` for the same word count.
    ///
    /// Positive values mean `b` consumes less.
    pub fn power_saving(
        &self,
        plan_a: &ProtectionPlan,
        v_a: f64,
        plan_b: &ProtectionPlan,
        v_b: f64,
    ) -> f64 {
        let pa = self.cell_power(plan_a.relative_area(), v_a) * plan_a.bits() as f64;
        let pb = self.cell_power(plan_b.relative_area(), v_b) * plan_b.bits() as f64;
        1.0 - pb / pa
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::dac12()
    }
}

/// The protection-efficiency metric of Fig. 8:
/// `(throughput with protection / defect-free throughput) / (1 + area overhead)`.
///
/// The paper plots throughput gain against area overhead and identifies
/// the knee; this scalar ranks protection plans by gain per unit area.
pub fn protection_efficiency(throughput_ratio: f64, area_overhead: f64) -> f64 {
    assert!(area_overhead >= 0.0, "area overhead cannot be negative");
    throughput_ratio / (1.0 + area_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::BitCellKind;
    use proptest::prelude::*;

    #[test]
    fn area_of_plain_array() {
        let plan = ProtectionPlan::uniform(10, BitCellKind::Sram6T);
        assert!((array_area(1000, &plan) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_area_matches_plan_overhead() {
        let plan = ProtectionPlan::msb_protected(10, 4);
        let a = array_area(100, &plan);
        assert!((a / 1000.0 - 1.12).abs() < 1e-9);
    }

    #[test]
    fn ecc_area_is_35_to_50_percent_larger() {
        // SECDED on 10 bits stores 15 bits: +50 %. The paper quotes 35 %
        // for bare Hamming (4 check bits); both are far above the hybrid's
        // 12-13 %.
        let base = 10.0 * 100.0;
        let ecc = ecc_array_area(100, 10);
        let overhead = ecc / base - 1.0;
        assert!(overhead >= 0.35, "overhead {overhead}");
    }

    #[test]
    fn nominal_power_is_unity() {
        let pm = PowerModel::dac12();
        assert!((pm.cell_power(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_drops_superlinearly_with_vdd() {
        let pm = PowerModel::dac12();
        let p06 = pm.cell_power(1.0, 0.6);
        // Pure V² would give 0.36; leakage makes it a bit higher.
        assert!(p06 > 0.36 && p06 < 0.6, "p(0.6) = {p06}");
    }

    #[test]
    fn paper_section63_saving_about_30_percent() {
        // Hybrid (4 MSBs in 8T) at 0.6 V vs plain 6T at its 0.8 V
        // resilience-limited supply: the paper quotes ~30 % block power
        // saving. Our model should land in the same band.
        let pm = PowerModel::dac12();
        let plain = ProtectionPlan::uniform(10, BitCellKind::Sram6T);
        let hybrid = ProtectionPlan::msb_protected(10, 4);
        let saving = pm.power_saving(&plain, 0.8, &hybrid, 0.6);
        assert!(saving > 0.20 && saving < 0.45, "saving {saving}");
    }

    #[test]
    fn voltage_scaling_beats_protection_overhead() {
        // Even the full-8T array at 0.6 V beats plain 6T at 1.0 V.
        let pm = PowerModel::dac12();
        let plain = ProtectionPlan::uniform(10, BitCellKind::Sram6T);
        let all8t = ProtectionPlan::uniform(10, BitCellKind::Sram8T);
        assert!(pm.power_saving(&plain, 1.0, &all8t, 0.6) > 0.3);
    }

    #[test]
    fn efficiency_prefers_cheap_protection() {
        // Same throughput recovery, less area → higher efficiency.
        let e4 = protection_efficiency(0.98, 0.12);
        let e10 = protection_efficiency(1.0, 0.30);
        assert!(e4 > e10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_vdd_rejected() {
        let _ = PowerModel::dac12().cell_power(1.0, -0.1);
    }

    proptest! {
        #[test]
        fn power_monotone_in_vdd(v in 0.3f64..1.2, dv in 0.01f64..0.3, area in 0.5f64..2.0) {
            let pm = PowerModel::dac12();
            prop_assert!(pm.cell_power(area, v) < pm.cell_power(area, v + dv));
        }

        #[test]
        fn saving_antisymmetric_sign(v in 0.5f64..0.9) {
            let pm = PowerModel::dac12();
            let plan = ProtectionPlan::uniform(10, BitCellKind::Sram6T);
            let s = pm.power_saving(&plan, 1.0, &plan, v);
            prop_assert!(s > 0.0, "scaling down must save power");
        }
    }
}
