//! Manufacturing-yield model (Eqs. 1–2 of the paper).
//!
//! A die passes inspection when its memory array has at most `N_f` faulty
//! cells. With independent per-cell failure probability `p`, the yield of
//! an `M`-cell array is the binomial CDF
//!
//! ```text
//! Y(N_f) = Σ_{i=0}^{N_f} C(M, i) pⁱ (1-p)^{M-i}
//! ```
//!
//! For the paper's arrays (`M ≈ 2·10⁶` cells) direct evaluation overflows,
//! so terms are accumulated in the log domain with an early-exit once the
//! remaining tail is negligible.

/// Conventional zero-defect yield `Y = (1-p)^M` (Eq. 1).
///
/// # Panics
///
/// Panics if `p_cell` is outside `[0, 1]`.
pub fn yield_zero_defect(cells: u64, p_cell: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_cell),
        "p_cell must be a probability"
    );
    if p_cell == 1.0 {
        return if cells == 0 { 1.0 } else { 0.0 };
    }
    (cells as f64 * (-p_cell).ln_1p()).exp()
}

/// Yield when accepting dies with at most `n_accept` faulty cells (Eq. 2).
///
/// Numerically stable for millions of cells: the binomial PMF is built
/// incrementally in the log domain and summation stops once terms fall
/// 40 decades below the running total (past the distribution's mode).
///
/// # Panics
///
/// Panics if `p_cell` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use silicon::yield_model::yield_accepting;
///
/// let m = 200 * 1024;
/// // With p = 1e-4 the array has ~20 expected faults: rejecting any
/// // defective die is hopeless, accepting 0.1 % (≈ 205 cells) is safe.
/// assert!(yield_accepting(m, 1e-4, 0) < 1e-8);
/// assert!(yield_accepting(m, 1e-4, (m as f64 * 0.001) as u64) > 0.999);
/// ```
pub fn yield_accepting(cells: u64, p_cell: f64, n_accept: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_cell),
        "p_cell must be a probability"
    );
    if p_cell == 0.0 {
        return 1.0;
    }
    if p_cell == 1.0 {
        return if n_accept >= cells { 1.0 } else { 0.0 };
    }
    if n_accept >= cells {
        return 1.0;
    }
    let m = cells as f64;
    let log_p = p_cell.ln();
    let log_q = (-p_cell).ln_1p();
    let log_ratio = log_p - log_q;
    // log PMF(0) = M ln(1-p)
    let mut log_term = m * log_q;
    let mut sum = 0.0f64;
    let mut max_log = f64::NEG_INFINITY;
    let mean = m * p_cell;
    for i in 0..=n_accept {
        if log_term > max_log {
            // Rescale the running sum to the new maximum.
            sum *= (max_log - log_term).exp();
            max_log = log_term;
        }
        sum += (log_term - max_log).exp();
        // Past the mode, terms only shrink; stop once negligible.
        if (i as f64) > mean && log_term < max_log - 92.0 {
            break;
        }
        // term_{i+1} = term_i * (M-i)/(i+1) * p/(1-p)
        log_term += ((m - i as f64) / (i as f64 + 1.0)).ln() + log_ratio;
    }
    (sum.ln() + max_log).exp().clamp(0.0, 1.0)
}

/// Smallest `N_f` such that `yield_accepting(cells, p_cell, N_f) ≥ target`.
///
/// Returns `None` if even accepting every cell faulty cannot reach the
/// target (i.e. `target > 1`).
///
/// # Panics
///
/// Panics if `p_cell` is outside `[0, 1]` or `target` outside `(0, 1]`.
pub fn min_accepted_faults(cells: u64, p_cell: f64, target: f64) -> Option<u64> {
    assert!(
        (0.0..=1.0).contains(&p_cell),
        "p_cell must be a probability"
    );
    assert!(
        target > 0.0 && target <= 1.0,
        "target yield must be in (0, 1]"
    );
    // Binary search over the monotone CDF.
    let (mut lo, mut hi) = (0u64, cells);
    if yield_accepting(cells, p_cell, hi) < target {
        return None;
    }
    if yield_accepting(cells, p_cell, 0) >= target {
        return Some(0);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if yield_accepting(cells, p_cell, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The supply-voltage headroom story of Fig. 5: given a yield target and an
/// acceptable defect *fraction*, returns the largest `p_cell` that still
/// meets the target.
///
/// Used to translate "tolerate x % defects" into "may operate at the Vdd
/// where `P_cell(Vdd)` equals this value".
pub fn max_p_cell_for_target(cells: u64, defect_fraction: f64, target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&defect_fraction));
    let n_accept = (cells as f64 * defect_fraction).floor() as u64;
    // Bisect on log10(p) in [-12, 0].
    let (mut lo, mut hi) = (-12.0f64, 0.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let p = 10f64.powf(mid);
        if yield_accepting(cells, p, n_accept) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    10f64.powf(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_defect_matches_closed_form() {
        let y = yield_zero_defect(1000, 1e-3);
        assert!((y - 0.999f64.powi(1000)).abs() < 1e-12);
    }

    #[test]
    fn accepting_zero_equals_zero_defect() {
        for p in [1e-6, 1e-4, 1e-2] {
            let a = yield_accepting(10_000, p, 0);
            let b = yield_zero_defect(10_000, p);
            assert!((a - b).abs() < 1e-9, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn small_case_matches_direct_sum() {
        // M = 20, p = 0.1, N_f = 3: compute directly.
        let (m, p, nf) = (20u64, 0.1f64, 3u64);
        let mut direct = 0.0;
        for i in 0..=nf {
            let mut c = 1.0f64;
            for k in 0..i {
                c *= (m - k) as f64 / (k + 1) as f64;
            }
            direct += c * p.powi(i as i32) * (1.0 - p).powi((m - i) as i32);
        }
        let fast = yield_accepting(m, p, nf);
        assert!((fast - direct).abs() < 1e-12, "{fast} vs {direct}");
    }

    #[test]
    fn paper_fig5_anchor() {
        // Fig. 5: 200 Kb array, P_cell = 1e-4 → accepting 0.1 % defects
        // meets the 95 % yield target.
        let m = 200 * 1024u64;
        let nf = (m as f64 * 0.001) as u64;
        assert!(yield_accepting(m, 1e-4, nf) > 0.95);
        // ...while zero-defect yield is hopeless.
        assert!(yield_accepting(m, 1e-4, 0) < 0.01);
    }

    #[test]
    fn monotone_in_n_accept() {
        let m = 50_000u64;
        let p = 5e-4;
        let mut prev = 0.0;
        for nf in [0u64, 5, 10, 25, 50, 100, 500] {
            let y = yield_accepting(m, p, nf);
            assert!(y >= prev - 1e-12, "not monotone at nf={nf}");
            prev = y;
        }
    }

    #[test]
    fn large_array_large_p_no_overflow() {
        // 2M cells at 10 % failure: mean 200k faults.
        let m = 2_000_000u64;
        let y_low = yield_accepting(m, 0.1, 150_000);
        let y_mid = yield_accepting(m, 0.1, 200_000);
        let y_high = yield_accepting(m, 0.1, 250_000);
        assert!(y_low < 1e-6, "{y_low}");
        assert!((y_mid - 0.5).abs() < 0.01, "{y_mid}");
        assert!(y_high > 0.999_999, "{y_high}");
    }

    #[test]
    fn min_accepted_faults_inverse() {
        let m = 200 * 1024u64;
        let p = 1e-4;
        let nf = min_accepted_faults(m, p, 0.95).unwrap();
        assert!(yield_accepting(m, p, nf) >= 0.95);
        assert!(yield_accepting(m, p, nf - 1) < 0.95);
        // ~mean + small margin, far below 0.1 % of the array.
        assert!((20..60).contains(&nf), "nf = {nf}");
    }

    #[test]
    fn min_accepted_faults_zero_p() {
        assert_eq!(min_accepted_faults(1000, 0.0, 0.95), Some(0));
    }

    #[test]
    fn max_p_cell_monotone_in_tolerance() {
        let m = 200 * 1024u64;
        let p1 = max_p_cell_for_target(m, 0.001, 0.95);
        let p2 = max_p_cell_for_target(m, 0.01, 0.95);
        let p3 = max_p_cell_for_target(m, 0.10, 0.95);
        assert!(p1 < p2 && p2 < p3);
        // 0.1 % tolerance admits p ≈ 1e-3-ish; sanity band.
        assert!(p1 > 1e-5 && p1 < 1e-2, "p1 = {p1}");
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(yield_accepting(100, 0.0, 0), 1.0);
        assert_eq!(yield_accepting(100, 1.0, 99), 0.0);
        assert_eq!(yield_accepting(100, 1.0, 100), 1.0);
        assert_eq!(yield_zero_defect(0, 1.0), 1.0);
    }

    proptest! {
        #[test]
        fn yield_is_probability(mexp in 2u32..20, p in 1e-6f64..0.3, frac in 0.0f64..0.2) {
            let m = 1u64 << mexp;
            let nf = (m as f64 * frac) as u64;
            let y = yield_accepting(m, p, nf);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn yield_decreases_with_p(mexp in 6u32..16, nf in 0u64..50) {
            let m = 1u64 << mexp;
            let y1 = yield_accepting(m, 1e-5, nf);
            let y2 = yield_accepting(m, 1e-3, nf);
            prop_assert!(y1 >= y2 - 1e-12);
        }
    }
}
