//! Hamming SECDED — the conventional full-word protection baseline.
//!
//! Section 6.2 of the paper compares selective MSB protection against
//! single-error-correcting, double-error-detecting (SECDED) ECC over the
//! whole LLR word and finds ECC inefficient (≥35 % storage overhead for a
//! 10-bit word). This module implements parameterized Hamming SECDED so
//! the comparison can be reproduced in simulation, not just in the area
//! model.

use serde::{Deserialize, Serialize};

/// Outcome of a SECDED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No error detected.
    Clean,
    /// A single-bit error was detected and corrected.
    Corrected,
    /// A double-bit error was detected; data is unreliable.
    DoubleError,
}

/// A Hamming SECDED code for `k` data bits.
///
/// Uses the classic construction: parity bits at power-of-two positions of
/// a 1-indexed codeword, plus an overall parity bit for double-error
/// detection.
///
/// # Example
///
/// ```
/// use silicon::ecc::{Secded, DecodeOutcome};
///
/// let code = Secded::new(10);
/// let cw = code.encode(0b10_1100_0111);
/// let (data, outcome) = code.decode(cw ^ (1 << 3)); // flip one bit
/// assert_eq!(outcome, DecodeOutcome::Corrected);
/// assert_eq!(data, 0b10_1100_0111);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Secded {
    data_bits: u8,
    parity_bits: u8,
}

impl Secded {
    /// Creates a SECDED code for `data_bits`-wide words.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is not in `1..=26` (codeword must fit in
    /// `u32`).
    pub fn new(data_bits: u8) -> Self {
        assert!(
            (1..=26).contains(&data_bits),
            "data width must be in 1..=26"
        );
        let mut r = 0u8;
        while (1u32 << r) < data_bits as u32 + r as u32 + 1 {
            r += 1;
        }
        Self {
            data_bits,
            parity_bits: r,
        }
    }

    /// Number of protected data bits.
    pub fn data_bits(&self) -> u8 {
        self.data_bits
    }

    /// Number of Hamming parity bits (excluding the overall parity bit).
    pub fn parity_bits(&self) -> u8 {
        self.parity_bits
    }

    /// Total codeword width: data + Hamming parity + overall parity.
    pub fn codeword_bits(&self) -> u8 {
        self.data_bits + self.parity_bits + 1
    }

    /// Storage overhead versus the bare data word
    /// (`codeword_bits/data_bits − 1`). For 10-bit data this is 50 % with
    /// SECDED or 40 % with bare Hamming — the ≥35 % regime the paper
    /// dismisses.
    pub fn storage_overhead(&self) -> f64 {
        self.codeword_bits() as f64 / self.data_bits as f64 - 1.0
    }

    /// Encodes `data` (low `data_bits` bits) into a SECDED codeword.
    ///
    /// Codeword layout: bits 1..=n are the Hamming codeword (1-indexed,
    /// parity at powers of two), bit 0 is the overall parity.
    pub fn encode(&self, data: u32) -> u32 {
        let n = (self.data_bits + self.parity_bits) as u32;
        let mut cw = 0u32; // 1-indexed Hamming positions stored at bit p
                           // Place data bits at non-power-of-two positions.
        let mut d = 0u8;
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                if (data >> d) & 1 != 0 {
                    cw |= 1 << pos;
                }
                d += 1;
            }
        }
        // Compute parity bits.
        for p in 0..self.parity_bits {
            let pp = 1u32 << p;
            let mut parity = 0u32;
            for pos in 1..=n {
                if pos & pp != 0 {
                    parity ^= (cw >> pos) & 1;
                }
            }
            if parity != 0 {
                cw |= 1 << pp;
            }
        }
        // Overall parity over all Hamming bits, stored at bit 0.
        let overall = (cw >> 1).count_ones() & 1;
        cw | overall
    }

    /// Decodes a (possibly corrupted) codeword.
    ///
    /// Returns the recovered data and the [`DecodeOutcome`]. On
    /// [`DecodeOutcome::DoubleError`] the returned data is a best-effort
    /// extraction of the uncorrected payload.
    pub fn decode(&self, cw: u32) -> (u32, DecodeOutcome) {
        let n = (self.data_bits + self.parity_bits) as u32;
        // Syndrome.
        let mut syndrome = 0u32;
        for p in 0..self.parity_bits {
            let pp = 1u32 << p;
            let mut parity = 0u32;
            for pos in 1..=n {
                if pos & pp != 0 {
                    parity ^= (cw >> pos) & 1;
                }
            }
            if parity != 0 {
                syndrome |= pp;
            }
        }
        let overall_ok = ((cw >> 1).count_ones() & 1) == (cw & 1);
        let (fixed, outcome) = match (syndrome, overall_ok) {
            (0, true) => (cw, DecodeOutcome::Clean),
            (0, false) => (cw ^ 1, DecodeOutcome::Corrected), // overall parity bit itself flipped
            (s, false) if s <= n => (cw ^ (1 << s), DecodeOutcome::Corrected),
            (_, false) => (cw, DecodeOutcome::DoubleError), // syndrome points outside word
            (_, true) => (cw, DecodeOutcome::DoubleError),
        };
        (self.extract(fixed), outcome)
    }

    /// Extracts the data bits from a codeword without checking parity.
    pub fn extract(&self, cw: u32) -> u32 {
        let n = (self.data_bits + self.parity_bits) as u32;
        let mut data = 0u32;
        let mut d = 0u8;
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                data |= ((cw >> pos) & 1) << d;
                d += 1;
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameters_for_10_bits() {
        let c = Secded::new(10);
        assert_eq!(c.parity_bits(), 4);
        assert_eq!(c.codeword_bits(), 15);
        assert!((c.storage_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip() {
        let c = Secded::new(10);
        for data in [0u32, 1, 0x3ff, 0x2aa, 0x155] {
            let (out, outcome) = c.decode(c.encode(data));
            assert_eq!(out, data);
            assert_eq!(outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let c = Secded::new(10);
        let data = 0x2b7 & 0x3ff;
        let cw = c.encode(data);
        for bit in 0..c.codeword_bits() {
            let (out, outcome) = c.decode(cw ^ (1 << bit));
            assert_eq!(outcome, DecodeOutcome::Corrected, "bit {bit}");
            assert_eq!(out, data, "bit {bit}");
        }
    }

    #[test]
    fn detects_double_errors() {
        let c = Secded::new(10);
        let cw = c.encode(0x1f3);
        let mut detected = 0;
        let mut total = 0;
        for b1 in 0..c.codeword_bits() {
            for b2 in (b1 + 1)..c.codeword_bits() {
                let (_, outcome) = c.decode(cw ^ (1 << b1) ^ (1 << b2));
                total += 1;
                if outcome == DecodeOutcome::DoubleError {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SECDED must flag all double errors");
    }

    #[test]
    fn various_widths() {
        for k in [4u8, 8, 10, 11, 12, 16, 26] {
            let c = Secded::new(k);
            let data = (0xdead_beefu32) & ((1u32 << k) - 1);
            let (out, outcome) = c.decode(c.encode(data));
            assert_eq!(out, data, "width {k}");
            assert_eq!(outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    #[should_panic(expected = "data width")]
    fn rejects_wide_words() {
        let _ = Secded::new(27);
    }

    proptest! {
        #[test]
        fn single_error_correction_exhaustive(data in 0u32..1024, bit in 0u8..15) {
            let c = Secded::new(10);
            let cw = c.encode(data);
            let (out, outcome) = c.decode(cw ^ (1u32 << bit));
            prop_assert_eq!(outcome, DecodeOutcome::Corrected);
            prop_assert_eq!(out, data);
        }

        #[test]
        fn encode_is_injective(a in 0u32..1024, b in 0u32..1024) {
            let c = Secded::new(10);
            if a != b {
                prop_assert_ne!(c.encode(a), c.encode(b));
            }
        }

        #[test]
        fn codewords_differ_in_at_least_4_bits(a in 0u32..1024, b in 0u32..1024) {
            // SECDED minimum distance is 4.
            let c = Secded::new(10);
            if a != b {
                let dist = (c.encode(a) ^ c.encode(b)).count_ones();
                prop_assert!(dist >= 4, "distance {dist}");
            }
        }
    }
}
