//! Random fault-location maps (the paper's Section 4).
//!
//! A [`FaultMap`] records which bit cells of a memory array are defective
//! and how each defect manifests. The paper draws `N_f` fault locations
//! uniformly at random over the array and inverts any stored bit that maps
//! onto a faulty cell; stuck-at variants are provided for the fault-model
//! ablation.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use dsp::rng::seeded;

/// How a defective cell corrupts the bit stored in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultKind {
    /// The stored bit is inverted (the paper's model).
    #[default]
    Flip,
    /// The cell always reads 0.
    StuckAt0,
    /// The cell always reads 1.
    StuckAt1,
}

/// A single defective bit cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fault {
    /// Word index within the array.
    pub word: u32,
    /// Bit position within the word (0 = LSB).
    pub bit: u8,
    /// Failure mode.
    pub kind: FaultKind,
}

/// A fault-location map over an array of `words × bits_per_word` cells.
///
/// # Example
///
/// ```
/// use silicon::fault_map::{FaultMap, FaultKind};
///
/// // 1000-word × 10-bit array with exactly 50 flip faults.
/// let map = FaultMap::random_exact(1000, 10, 50, FaultKind::Flip, 42);
/// assert_eq!(map.fault_count(), 50);
/// // Same seed → identical map.
/// assert_eq!(map, FaultMap::random_exact(1000, 10, 50, FaultKind::Flip, 42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMap {
    words: u32,
    bits_per_word: u8,
    faults: Vec<Fault>,
    /// Per-word corruption masks compiled from `faults` (empty when the
    /// map is defect-free): applying `((v ^ xor) & !clear) | set` is
    /// exactly the sorted sequential fault application, but O(1) per
    /// read instead of a binary search over the fault list — the LLR
    /// memory is read twice per HARQ combine, so this is a hot path.
    xor_mask: Vec<u32>,
    clear_mask: Vec<u32>,
    set_mask: Vec<u32>,
}

impl FaultMap {
    /// An empty (defect-free) map for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn defect_free(words: u32, bits_per_word: u8) -> Self {
        assert!(
            words > 0 && bits_per_word > 0,
            "array dimensions must be positive"
        );
        Self {
            words,
            bits_per_word,
            faults: Vec::new(),
            xor_mask: Vec::new(),
            clear_mask: Vec::new(),
            set_mask: Vec::new(),
        }
    }

    /// Draws exactly `n_faults` defective cells uniformly without
    /// replacement over the whole array (the paper's selection-criterion
    /// worst case: dies with exactly `N_f` failing cells).
    ///
    /// # Panics
    ///
    /// Panics if `n_faults` exceeds the number of cells.
    pub fn random_exact(
        words: u32,
        bits_per_word: u8,
        n_faults: usize,
        kind: FaultKind,
        seed: u64,
    ) -> Self {
        let mut map = Self::defect_free(words, bits_per_word);
        let cells = words as u64 * bits_per_word as u64;
        assert!(
            n_faults as u64 <= cells,
            "cannot place {n_faults} faults in {cells} cells"
        );
        let mut rng = seeded(seed);
        // Floyd's algorithm for distinct uniform samples. The set only
        // answers membership queries; the samples are sorted into a Vec
        // before any further RNG draws, so iteration order never leaks
        // into the result.
        // determinism: unordered-ok(membership test only; samples sorted before RNG-coupled mapping)
        let mut chosen = std::collections::HashSet::with_capacity(n_faults);
        let n = cells;
        let k = n_faults as u64;
        for j in n - k..n {
            let t = rng.gen_range(0..=j);
            let cell = if chosen.contains(&t) { j } else { t };
            chosen.insert(cell);
        }
        let mut cells_sorted: Vec<u64> = chosen.into_iter().collect();
        cells_sorted.sort_unstable();
        let faults: Vec<Fault> = cells_sorted
            .into_iter()
            .map(|cell| Fault {
                word: (cell / bits_per_word as u64) as u32,
                bit: (cell % bits_per_word as u64) as u8,
                kind: resolve_kind(kind, &mut rng),
            })
            .collect();
        map.faults = faults;
        map.rebuild_masks();
        map
    }

    /// Draws each cell independently faulty with probability `p_cell`
    /// (Bernoulli per cell, the manufacturing view).
    ///
    /// # Panics
    ///
    /// Panics if `p_cell` is not in `[0, 1]`.
    pub fn random_bernoulli(
        words: u32,
        bits_per_word: u8,
        p_cell: f64,
        kind: FaultKind,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_cell),
            "p_cell must be a probability"
        );
        let mut map = Self::defect_free(words, bits_per_word);
        let mut rng = seeded(seed);
        for word in 0..words {
            for bit in 0..bits_per_word {
                if rng.gen::<f64>() < p_cell {
                    let k = resolve_kind(kind, &mut rng);
                    map.faults.push(Fault { word, bit, kind: k });
                }
            }
        }
        map.rebuild_masks();
        map
    }

    /// Draws exactly `n_faults` faults restricted to bit positions in
    /// `bit_range` (used for hybrid arrays where the protected MSB columns
    /// are fault-free).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, out of bounds, or too small for
    /// `n_faults`.
    pub fn random_in_bits(
        words: u32,
        bits_per_word: u8,
        bit_range: std::ops::Range<u8>,
        n_faults: usize,
        kind: FaultKind,
        seed: u64,
    ) -> Self {
        assert!(
            bit_range.start < bit_range.end && bit_range.end <= bits_per_word,
            "bit range out of bounds"
        );
        let span = (bit_range.end - bit_range.start) as u64;
        let cells = words as u64 * span;
        assert!(
            n_faults as u64 <= cells,
            "cannot place {n_faults} faults in {cells} cells"
        );
        let mut rng = seeded(seed);
        let mut all: Vec<u64> = (0..cells).collect();
        // For very large arrays fall back to rejection-free Floyd sampling.
        let mut faults: Vec<Fault> = if cells <= 1 << 22 {
            all.shuffle(&mut rng);
            all.truncate(n_faults);
            all.into_iter()
                .map(|cell| Fault {
                    word: (cell / span) as u32,
                    bit: bit_range.start + (cell % span) as u8,
                    kind: resolve_kind(kind, &mut rng),
                })
                .collect()
        } else {
            // Same membership-only Floyd sampling as `random_exact`:
            // sort the draws before the RNG-coupled kind resolution.
            // determinism: unordered-ok(membership test only; samples sorted before RNG-coupled mapping)
            let mut chosen = std::collections::HashSet::with_capacity(n_faults);
            for j in cells - n_faults as u64..cells {
                let t = rng.gen_range(0..=j);
                let cell = if chosen.contains(&t) { j } else { t };
                chosen.insert(cell);
            }
            let mut cells_sorted: Vec<u64> = chosen.into_iter().collect();
            cells_sorted.sort_unstable();
            cells_sorted
                .into_iter()
                .map(|cell| Fault {
                    word: (cell / span) as u32,
                    bit: bit_range.start + (cell % span) as u8,
                    kind: resolve_kind(kind, &mut rng),
                })
                .collect()
        };
        faults.sort_by_key(|f| (f.word, f.bit));
        let mut map = Self {
            words,
            bits_per_word,
            faults,
            xor_mask: Vec::new(),
            clear_mask: Vec::new(),
            set_mask: Vec::new(),
        };
        map.rebuild_masks();
        map
    }

    /// Number of words in the array.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Word width in bits.
    pub fn bits_per_word(&self) -> u8 {
        self.bits_per_word
    }

    /// Total number of bit cells.
    pub fn cells(&self) -> u64 {
        self.words as u64 * self.bits_per_word as u64
    }

    /// Number of defective cells.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Fraction of defective cells (the paper's `N_f` in %-of-array units).
    pub fn defect_fraction(&self) -> f64 {
        self.faults.len() as f64 / self.cells() as f64
    }

    /// Iterates over the faults in (word, bit) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// Applies the map to one stored word: every faulty cell in `word`
    /// corrupts the corresponding bit of `value`.
    ///
    /// Constant time: the sorted fault list is compiled into per-word
    /// xor/clear/set masks at construction, so a read is three bitwise
    /// operations regardless of fault count.
    #[inline]
    pub fn corrupt(&self, word: u32, value: u32) -> u32 {
        if self.xor_mask.is_empty() {
            return value;
        }
        let w = word as usize;
        ((value ^ self.xor_mask[w]) & !self.clear_mask[w]) | self.set_mask[w]
    }

    /// The per-word corruption masks (`xor`, `clear`, `set`), one entry
    /// per word — or `None` when the map is defect-free. Bulk readers
    /// fuse the mask application (`((v ^ xor) & !clear) | set`, exactly
    /// [`FaultMap::corrupt`]) with their own per-word decode step.
    #[inline]
    pub fn masks(&self) -> Option<(&[u32], &[u32], &[u32])> {
        if self.xor_mask.is_empty() {
            None
        } else {
            Some((&self.xor_mask, &self.clear_mask, &self.set_mask))
        }
    }

    /// Streams `data` (words `0..data.len()`) through the fault masks,
    /// calling `f` with each corrupted word — per-word results identical
    /// to [`FaultMap::corrupt`], but the defect-free test and the mask
    /// bounds checks are hoisted out of the loop (the LLR memory is read
    /// twice per HARQ combine, so the word loop is hot).
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the array.
    #[inline]
    pub fn corrupt_stream(&self, data: &[u32], mut f: impl FnMut(u32)) {
        assert!(data.len() <= self.words as usize, "read beyond array size");
        if self.xor_mask.is_empty() {
            for &v in data {
                f(v);
            }
            return;
        }
        let xor = &self.xor_mask[..data.len()];
        let clear = &self.clear_mask[..data.len()];
        let set = &self.set_mask[..data.len()];
        for (((&v, &x), &c), &s) in data.iter().zip(xor).zip(clear).zip(set) {
            f(((v ^ x) & !c) | s);
        }
    }

    /// Replaces the fault list, restoring the sorted-by-(word, bit)
    /// invariant that [`FaultMap::corrupt`] relies on.
    ///
    /// # Panics
    ///
    /// Panics if any fault lies outside the array geometry.
    pub fn set_faults(&mut self, mut faults: Vec<Fault>) {
        assert!(
            faults
                .iter()
                .all(|f| f.word < self.words && f.bit < self.bits_per_word),
            "fault outside array geometry"
        );
        faults.sort_by_key(|f| (f.word, f.bit));
        self.faults = faults;
        self.rebuild_masks();
    }

    /// Compiles the sorted fault list into per-word masks. Folding the
    /// faults in application order keeps the mask form equivalent to the
    /// sequential per-fault corruption, including bits hit by several
    /// faults (a flip on top of a stuck cell toggles the stuck polarity;
    /// a stuck fault overrides anything before it).
    fn rebuild_masks(&mut self) {
        if self.faults.is_empty() {
            self.xor_mask = Vec::new();
            self.clear_mask = Vec::new();
            self.set_mask = Vec::new();
            return;
        }
        let n = self.words as usize;
        self.xor_mask.clear();
        self.xor_mask.resize(n, 0);
        self.clear_mask.clear();
        self.clear_mask.resize(n, 0);
        self.set_mask.clear();
        self.set_mask.resize(n, 0);
        for f in &self.faults {
            let w = f.word as usize;
            let m = 1u32 << f.bit;
            match f.kind {
                FaultKind::Flip => {
                    if self.clear_mask[w] & m != 0 {
                        self.clear_mask[w] &= !m;
                        self.set_mask[w] |= m;
                    } else if self.set_mask[w] & m != 0 {
                        self.set_mask[w] &= !m;
                        self.clear_mask[w] |= m;
                    } else {
                        self.xor_mask[w] ^= m;
                    }
                }
                FaultKind::StuckAt0 => {
                    self.clear_mask[w] |= m;
                    self.set_mask[w] &= !m;
                    self.xor_mask[w] &= !m;
                }
                FaultKind::StuckAt1 => {
                    self.set_mask[w] |= m;
                    self.clear_mask[w] &= !m;
                    self.xor_mask[w] &= !m;
                }
            }
        }
    }

    /// Counts faults whose bit position lies in `bit_range`.
    pub fn faults_in_bits(&self, bit_range: std::ops::Range<u8>) -> usize {
        self.faults
            .iter()
            .filter(|f| bit_range.contains(&f.bit))
            .count()
    }
}

/// Resolves `Flip`/`StuckAt*` — stuck polarity is already explicit; this
/// hook exists so a future mixed-mode model can randomize per fault.
fn resolve_kind<R: Rng>(kind: FaultKind, _rng: &mut R) -> FaultKind {
    kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_count_and_distinct() {
        let m = FaultMap::random_exact(100, 10, 250, FaultKind::Flip, 1);
        assert_eq!(m.fault_count(), 250);
        let mut cells: Vec<(u32, u8)> = m.iter().map(|f| (f.word, f.bit)).collect();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 250, "faults must hit distinct cells");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = FaultMap::random_exact(500, 10, 100, FaultKind::Flip, 7);
        let b = FaultMap::random_exact(500, 10, 100, FaultKind::Flip, 7);
        let c = FaultMap::random_exact(500, 10, 100, FaultKind::Flip, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn defect_free_is_transparent() {
        let m = FaultMap::defect_free(10, 10);
        for v in [0u32, 0x3ff, 0x155] {
            assert_eq!(m.corrupt(3, v), v);
        }
        assert_eq!(m.defect_fraction(), 0.0);
    }

    #[test]
    fn flip_fault_inverts_bit() {
        let mut m = FaultMap::defect_free(4, 8);
        m.set_faults(vec![Fault {
            word: 2,
            bit: 3,
            kind: FaultKind::Flip,
        }]);
        assert_eq!(m.corrupt(2, 0b0000_0000), 0b0000_1000);
        assert_eq!(m.corrupt(2, 0b0000_1000), 0b0000_0000);
        assert_eq!(m.corrupt(1, 0b0000_0000), 0, "other words untouched");
    }

    #[test]
    fn stuck_faults() {
        let mut m = FaultMap::defect_free(4, 8);
        m.set_faults(vec![
            Fault {
                word: 0,
                bit: 0,
                kind: FaultKind::StuckAt1,
            },
            Fault {
                word: 0,
                bit: 1,
                kind: FaultKind::StuckAt0,
            },
        ]);
        assert_eq!(m.corrupt(0, 0b00), 0b01);
        assert_eq!(m.corrupt(0, 0b11), 0b01);
    }

    /// Sequential per-fault application, the semantics `corrupt`'s
    /// mask compilation must reproduce.
    fn corrupt_reference(m: &FaultMap, word: u32, value: u32) -> u32 {
        let mut v = value;
        for f in m.iter().filter(|f| f.word == word) {
            let mask = 1u32 << f.bit;
            v = match f.kind {
                FaultKind::Flip => v ^ mask,
                FaultKind::StuckAt0 => v & !mask,
                FaultKind::StuckAt1 => v | mask,
            };
        }
        v
    }

    #[test]
    fn mask_compilation_matches_sequential_application() {
        // Random dense maps of every kind, plus stacked faults on one
        // bit (flip over stuck toggles the stuck polarity).
        for kind in [FaultKind::Flip, FaultKind::StuckAt0, FaultKind::StuckAt1] {
            let m = FaultMap::random_exact(64, 10, 200, kind, 7);
            for w in 0..64 {
                for v in [0u32, 0x3ff, 0x155, 0x2aa] {
                    assert_eq!(m.corrupt(w, v), corrupt_reference(&m, w, v), "{kind:?}");
                }
            }
        }
        let mut m = FaultMap::defect_free(2, 4);
        m.set_faults(vec![
            Fault {
                word: 0,
                bit: 1,
                kind: FaultKind::StuckAt0,
            },
            Fault {
                word: 0,
                bit: 1,
                kind: FaultKind::Flip,
            },
        ]);
        // Stuck-at-0 then flip = stuck-at-1.
        assert_eq!(m.corrupt(0, 0b0000), 0b0010);
        assert_eq!(m.corrupt(0, 0b0010), 0b0010);
        assert_eq!(m.corrupt(0, 0b0000), corrupt_reference(&m, 0, 0b0000));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let p = 0.05;
        let m = FaultMap::random_bernoulli(2000, 10, p, FaultKind::Flip, 3);
        let rate = m.defect_fraction();
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn restricted_faults_stay_in_range() {
        let m = FaultMap::random_in_bits(300, 10, 0..6, 500, FaultKind::Flip, 9);
        assert_eq!(m.fault_count(), 500);
        assert!(m.iter().all(|f| f.bit < 6));
        assert_eq!(m.faults_in_bits(6..10), 0);
        assert_eq!(m.faults_in_bits(0..6), 500);
    }

    #[test]
    fn defect_fraction_matches() {
        let m = FaultMap::random_exact(1000, 10, 1000, FaultKind::Flip, 2);
        assert!((m.defect_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_faults_rejected() {
        let _ = FaultMap::random_exact(2, 2, 5, FaultKind::Flip, 0);
    }

    #[test]
    fn full_array_fault() {
        let m = FaultMap::random_exact(4, 4, 16, FaultKind::Flip, 0);
        assert_eq!(m.fault_count(), 16);
        // Every bit flips.
        assert_eq!(m.corrupt(0, 0x0), 0xf);
    }

    proptest! {
        #[test]
        fn corrupt_is_involutive_for_flips(seed in 0u64..100, v in 0u32..1024) {
            let m = FaultMap::random_exact(50, 10, 100, FaultKind::Flip, seed);
            for w in 0..50u32 {
                prop_assert_eq!(m.corrupt(w, m.corrupt(w, v)), v);
            }
        }

        #[test]
        fn stuck_is_idempotent(seed in 0u64..100, v in 0u32..1024) {
            let m = FaultMap::random_exact(50, 10, 80, FaultKind::StuckAt0, seed);
            for w in 0..50u32 {
                let once = m.corrupt(w, v);
                prop_assert_eq!(m.corrupt(w, once), once);
            }
        }

        #[test]
        fn fault_counts_partition(seed in 0u64..50) {
            let m = FaultMap::random_exact(100, 10, 300, FaultKind::Flip, seed);
            let low = m.faults_in_bits(0..5);
            let high = m.faults_in_bits(5..10);
            prop_assert_eq!(low + high, 300);
        }
    }
}
