//! Physical underpinning of the failure curves: Vth-mismatch Monte-Carlo.
//!
//! The paper's Fig. 3 comes from transistor-level Monte-Carlo simulation
//! of random dopant fluctuation (RDF). This module provides the textbook
//! statistical abstraction of that experiment: each cell's static noise
//! margin shrinks linearly with supply voltage and is perturbed by a
//! Gaussian Vth mismatch (Pelgrom scaling), failing when the margin goes
//! negative. It reproduces the same `P_cell(Vdd)` *family* as the
//! calibrated curves in [`crate::cell`] from physical parameters instead
//! of anchors — and a consistency test ties the two together.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dsp::rng::seeded;
use dsp::stats::q_function;

/// Statistical cell-stability model: the cell fails when its noise
/// margin `m(Vdd) = margin_slope · (Vdd − v_min)` falls below the local
/// Vth mismatch draw `ΔVth ~ N(0, sigma_vth²)`.
///
/// `P_fail(Vdd) = Q(m(Vdd) / sigma_vth)` in closed form; the Monte-Carlo
/// estimator exists to mirror the paper's methodology (and to validate
/// the closed form).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthMismatchModel {
    /// Vth mismatch standard deviation (volts). Pelgrom: `A_vt/√(WL)`;
    /// ~30-50 mV for minimum-size 65 nm devices.
    pub sigma_vth: f64,
    /// Supply voltage at which the nominal margin reaches zero (volts).
    pub v_min: f64,
    /// Margin gained per volt of supply (dimensionless voltage gain).
    pub margin_slope: f64,
}

impl VthMismatchModel {
    /// A minimum-size 6T cell in a 65 nm-class process.
    pub fn cell_65nm_6t() -> Self {
        Self {
            sigma_vth: 0.042,
            v_min: 0.34,
            margin_slope: 0.38,
        }
    }

    /// A 15 % upsized 6T cell: mismatch shrinks with `√(WL)`.
    pub fn cell_65nm_6t_upsized() -> Self {
        Self {
            sigma_vth: 0.042 / 1.15f64.sqrt(),
            ..Self::cell_65nm_6t()
        }
    }

    /// An 8T cell: the decoupled read port removes the read-disturb
    /// failure mode, effectively enlarging the margin.
    pub fn cell_65nm_8t() -> Self {
        Self {
            v_min: 0.34 - 0.2,
            ..Self::cell_65nm_6t()
        }
    }

    /// Closed-form failure probability at supply `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn p_fail(&self, vdd: f64) -> f64 {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "supply voltage must be positive"
        );
        let margin = self.margin_slope * (vdd - self.v_min);
        q_function(margin / self.sigma_vth)
    }

    /// Monte-Carlo estimate over `trials` mismatch draws (the paper's
    /// circuit-simulation methodology, abstracted).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero or `vdd` invalid.
    pub fn p_fail_monte_carlo(&self, vdd: f64, trials: u32, seed: u64) -> f64 {
        assert!(trials > 0, "need at least one trial");
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "supply voltage must be positive"
        );
        let margin = self.margin_slope * (vdd - self.v_min);
        let mut rng = seeded(seed);
        let mut fails = 0u32;
        for _ in 0..trials {
            let dvth = self.sigma_vth * dsp::rng::standard_normal(&mut rng);
            if dvth > margin {
                fails += 1;
            }
        }
        let _ = rng.gen::<u32>();
        fails as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{BitCellKind, CellFailureModel};

    #[test]
    fn monte_carlo_matches_closed_form() {
        let m = VthMismatchModel::cell_65nm_6t();
        // Pick a voltage where P is large enough to estimate with 200k
        // trials.
        let vdd = 0.55;
        let exact = m.p_fail(vdd);
        let mc = m.p_fail_monte_carlo(vdd, 200_000, 1);
        assert!(exact > 1e-3, "need a measurable rate, got {exact}");
        assert!(
            (mc - exact).abs() / exact < 0.15,
            "MC {mc} vs closed form {exact}"
        );
    }

    #[test]
    fn robust_cells_fail_less() {
        for vdd in [0.5, 0.6, 0.7, 0.8] {
            let p6 = VthMismatchModel::cell_65nm_6t().p_fail(vdd);
            let pu = VthMismatchModel::cell_65nm_6t_upsized().p_fail(vdd);
            let p8 = VthMismatchModel::cell_65nm_8t().p_fail(vdd);
            assert!(p8 < pu && pu < p6, "ordering violated at {vdd} V");
        }
    }

    #[test]
    fn physical_model_tracks_calibrated_curve() {
        // The Gaussian-tail model and the calibrated log-linear curve
        // should agree on the *order of magnitude* in the operating band
        // the paper sweeps (they differ in functional form far in the
        // tail, as a Q-function is not exactly log-linear).
        let phys = VthMismatchModel::cell_65nm_6t();
        let cal = CellFailureModel::dac12();
        for vdd in [0.6, 0.7, 0.8] {
            let a = phys.p_fail(vdd).log10();
            let b = cal.p_cell(BitCellKind::Sram6T, vdd).log10();
            assert!(
                (a - b).abs() < 2.0,
                "models diverge at {vdd} V: 1e{a:.1} vs 1e{b:.1}"
            );
        }
    }

    #[test]
    fn explosive_voltage_sensitivity() {
        // The RDF hallmark the paper quotes: orders of magnitude per
        // 100 mV in the sub-threshold-margin region.
        let m = VthMismatchModel::cell_65nm_6t();
        let ratio = m.p_fail(0.6) / m.p_fail(0.8);
        assert!(ratio > 1e2, "per-200mV growth {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_vdd_rejected() {
        let _ = VthMismatchModel::cell_65nm_6t().p_fail(-1.0);
    }
}
