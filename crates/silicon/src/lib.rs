//! Unreliable-silicon substrate for the DAC'12 error-resilience study.
//!
//! This crate models everything below the system level:
//!
//! * [`cell`] — per-bit-cell failure probability `P_cell(Vdd)` for 6T,
//!   upsized-6T and 8T SRAM cells (the paper's Fig. 3), plus a soft-error
//!   model.
//! * [`fault_map`] — random fault-location maps over a memory array
//!   (the paper's Section 4 methodology).
//! * [`memory`] — a bit-accurate faulty storage array that corrupts reads
//!   according to a fault map.
//! * [`hybrid`] — per-bit protection plans (e.g. 8T cells on the MSBs,
//!   6T elsewhere) and their fault statistics.
//! * [`ecc`] — Hamming SECDED as the conventional full-word protection
//!   baseline the paper compares against.
//! * [`yield_model`] — the binomial yield expression `Y(N_f)` of Eq. (2).
//! * [`area_power`] — relative area and power models used for the
//!   protection-efficiency figure (Fig. 8) and the voltage-scaling power
//!   savings (Section 6.3).
//!
//! # Example
//!
//! ```
//! use silicon::cell::{BitCellKind, CellFailureModel};
//! use silicon::yield_model::yield_accepting;
//!
//! let model = CellFailureModel::dac12();
//! let p08 = model.p_cell(BitCellKind::Sram6T, 0.8);
//! // A 200 Kb array at 0.8 V: accepting a few hundred faulty cells
//! // recovers essentially full yield.
//! let y = yield_accepting(200 * 1024, p08, 400);
//! assert!(y > 0.99);
//! ```

#![forbid(unsafe_code)]

pub mod area_power;
pub mod cell;
pub mod ecc;
pub mod fault_map;
pub mod hybrid;
pub mod memory;
pub mod repair;
pub mod variation;
pub mod yield_model;

pub use cell::{BitCellKind, CellFailureModel};
pub use fault_map::{FaultKind, FaultMap};
pub use hybrid::ProtectionPlan;
pub use memory::FaultyMemory;
