//! Spare-row/column repair — the conventional yield mechanism of §3.
//!
//! Classical memories recover from manufacturing defects by remapping
//! faulty rows/columns onto spares. The paper argues this becomes
//! insufficient once defect counts grow (and cannot track
//! operating-condition-dependent fault maps at all). This module
//! implements the standard must-repair + greedy spare-allocation
//! heuristic and a Monte-Carlo repair-yield estimator so the comparison
//! against defect *acceptance* (Eq. 2) is quantitative.

use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use dsp::rng::seeded;

/// Physical array organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Word lines.
    pub rows: u32,
    /// Bit lines.
    pub cols: u32,
}

impl ArrayGeometry {
    /// Total bit cells.
    pub fn cells(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

/// Available spare resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SpareBudget {
    /// Spare rows.
    pub rows: u32,
    /// Spare columns.
    pub cols: u32,
}

/// Attempts to cover all `faults` (as `(row, col)` cells) with the spare
/// budget using the standard two-phase heuristic:
///
/// 1. **Must-repair**: a row holding more faults than the remaining spare
///    columns can only be fixed by a spare row (and symmetrically).
/// 2. **Greedy**: repeatedly spend a spare on the line covering the most
///    remaining faults.
///
/// Returns `true` when every fault is covered. The heuristic is not
/// optimal (optimal spare allocation is NP-complete), matching what
/// production BIST/BISR logic actually implements.
pub fn repair_covers(faults: &[(u32, u32)], budget: SpareBudget) -> bool {
    let mut remaining: Vec<(u32, u32)> = faults.to_vec();
    let mut spare_rows = budget.rows;
    let mut spare_cols = budget.cols;

    loop {
        if remaining.is_empty() {
            return true;
        }
        // BTreeMap, not HashMap: the greedy step below breaks count ties
        // by iteration order, so the map must iterate deterministically
        // (max_by_key keeps the last maximum, i.e. the highest tied line
        // index) for repair decisions to be
        // reproducible across runs.
        let mut by_row: BTreeMap<u32, u32> = BTreeMap::new();
        let mut by_col: BTreeMap<u32, u32> = BTreeMap::new();
        for &(r, c) in &remaining {
            *by_row.entry(r).or_insert(0) += 1;
            *by_col.entry(c).or_insert(0) += 1;
        }

        // Phase 1: must-repair.
        let must_row: Vec<u32> = by_row
            .iter()
            .filter(|&(_, &n)| n > spare_cols)
            .map(|(&r, _)| r)
            .collect();
        let must_col: Vec<u32> = by_col
            .iter()
            .filter(|&(_, &n)| n > spare_rows)
            .map(|(&c, _)| c)
            .collect();
        if must_row.len() as u32 > spare_rows || must_col.len() as u32 > spare_cols {
            return false;
        }
        if !must_row.is_empty() || !must_col.is_empty() {
            spare_rows -= must_row.len() as u32;
            spare_cols -= must_col.len() as u32;
            remaining.retain(|&(r, c)| !must_row.contains(&r) && !must_col.contains(&c));
            continue;
        }

        // Phase 2: greedy single step, then re-evaluate must-repair.
        if spare_rows == 0 && spare_cols == 0 {
            return false;
        }
        let best_row = by_row
            .iter()
            .max_by_key(|&(_, &n)| n)
            .map(|(&r, &n)| (r, n));
        let best_col = by_col
            .iter()
            .max_by_key(|&(_, &n)| n)
            .map(|(&c, &n)| (c, n));
        let use_row = match (best_row, best_col) {
            (Some((_, nr)), Some((_, nc))) => {
                if spare_cols == 0 {
                    true
                } else if spare_rows == 0 {
                    false
                } else {
                    nr >= nc
                }
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return true,
        };
        if use_row {
            let (r, _) = best_row.expect("non-empty");
            spare_rows -= 1;
            remaining.retain(|&(rr, _)| rr != r);
        } else {
            let (c, _) = best_col.expect("non-empty");
            spare_cols -= 1;
            remaining.retain(|&(_, cc)| cc != c);
        }
    }
}

/// Monte-Carlo estimate of the repair yield: the probability that an
/// array with iid cell-failure probability `p_cell` is fully repairable
/// with the given spare budget.
///
/// # Panics
///
/// Panics if `p_cell` is outside `[0, 1]` or `trials == 0`.
pub fn yield_with_repair(
    geometry: ArrayGeometry,
    p_cell: f64,
    budget: SpareBudget,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_cell),
        "p_cell must be a probability"
    );
    assert!(trials > 0, "need at least one trial");
    let mut rng = seeded(seed);
    let mut pass = 0u32;
    let mean_faults = geometry.cells() as f64 * p_cell;
    for _ in 0..trials {
        // Draw the fault count from the binomial via per-cell sampling
        // when cheap, else normal approximation on the count and uniform
        // placement (indistinguishable for the repair question).
        let faults: Vec<(u32, u32)> = if geometry.cells() <= 1 << 16 {
            let mut v = Vec::new();
            for r in 0..geometry.rows {
                for c in 0..geometry.cols {
                    if rng.gen::<f64>() < p_cell {
                        v.push((r, c));
                    }
                }
            }
            v
        } else {
            let std = (mean_faults * (1.0 - p_cell)).sqrt();
            let n = (mean_faults + std * dsp::rng::standard_normal(&mut rng))
                .round()
                .max(0.0) as u64;
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0..geometry.rows),
                        rng.gen_range(0..geometry.cols),
                    )
                })
                .collect()
        };
        if repair_covers(&faults, budget) {
            pass += 1;
        }
    }
    pass as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_model::yield_accepting;
    use proptest::prelude::*;

    #[test]
    fn no_faults_always_repairable() {
        assert!(repair_covers(&[], SpareBudget::default()));
    }

    #[test]
    fn single_fault_needs_one_spare() {
        let f = [(3u32, 5u32)];
        assert!(!repair_covers(&f, SpareBudget { rows: 0, cols: 0 }));
        assert!(repair_covers(&f, SpareBudget { rows: 1, cols: 0 }));
        assert!(repair_covers(&f, SpareBudget { rows: 0, cols: 1 }));
    }

    #[test]
    fn clustered_row_repaired_by_one_spare_row() {
        let f: Vec<(u32, u32)> = (0..10).map(|c| (7u32, c)).collect();
        assert!(repair_covers(&f, SpareBudget { rows: 1, cols: 0 }));
        assert!(!repair_covers(&f, SpareBudget { rows: 0, cols: 5 }));
    }

    #[test]
    fn diagonal_faults_need_one_spare_each() {
        // k faults on a diagonal: no line covers two of them.
        let f: Vec<(u32, u32)> = (0..6).map(|i| (i, i)).collect();
        assert!(repair_covers(&f, SpareBudget { rows: 3, cols: 3 }));
        assert!(!repair_covers(&f, SpareBudget { rows: 2, cols: 3 }));
    }

    #[test]
    fn greedy_tie_break_is_deterministic() {
        // Rows 1 and 2 both hold two faults, and so does column 1 vs the
        // rest — with a HashMap the greedy step picked whichever tied
        // line hashed first, so repairability of marginal budgets varied
        // between runs. The ordered map makes the choice a function of
        // the fault list alone: repeated evaluation must agree.
        let faults = [(1u32, 1u32), (1, 2), (2, 3), (2, 4), (3, 1)];
        let budget = SpareBudget { rows: 1, cols: 2 };
        let first = repair_covers(&faults, budget);
        for _ in 0..50 {
            assert_eq!(repair_covers(&faults, budget), first);
        }
        // And the spare budget is actually sufficient: one spare row on
        // a doubled row plus two spare columns cover all five faults.
        assert!(repair_covers(&faults, SpareBudget { rows: 2, cols: 2 }));
    }

    #[test]
    fn must_repair_detects_infeasible() {
        // Two heavy rows, one spare row, no spare columns.
        let mut f: Vec<(u32, u32)> = (0..8).map(|c| (0u32, c)).collect();
        f.extend((0..8).map(|c| (1u32, c)));
        assert!(!repair_covers(&f, SpareBudget { rows: 1, cols: 0 }));
        assert!(repair_covers(&f, SpareBudget { rows: 2, cols: 0 }));
    }

    #[test]
    fn repair_yield_beats_zero_defect_at_low_p() {
        let g = ArrayGeometry {
            rows: 128,
            cols: 128,
        };
        let p = 1e-4; // ~1.6 expected faults
        let budget = SpareBudget { rows: 2, cols: 2 };
        let y_repair = yield_with_repair(g, p, budget, 300, 1);
        let y_zero = yield_accepting(g.cells(), p, 0);
        assert!(
            y_repair > y_zero + 0.1,
            "repair {y_repair} should beat zero-defect {y_zero}"
        );
        assert!(y_repair > 0.95, "2+2 spares handle ~1.6 faults: {y_repair}");
    }

    #[test]
    fn repair_collapses_at_high_p_but_acceptance_does_not() {
        // The paper's §3 argument: at high defect rates spares run out
        // while Eq. 2 acceptance (with system-level tolerance) still
        // yields.
        let g = ArrayGeometry {
            rows: 128,
            cols: 128,
        };
        let p = 3e-3; // ~49 expected faults
        let budget = SpareBudget { rows: 4, cols: 4 };
        let y_repair = yield_with_repair(g, p, budget, 200, 2);
        let y_accept = yield_accepting(g.cells(), p, g.cells() / 100); // tolerate 1 %
        assert!(y_repair < 0.05, "spares must be exhausted: {y_repair}");
        assert!(y_accept > 0.999, "1% tolerance still yields: {y_accept}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn more_spares_never_hurt(n in 0usize..12, seed in 0u64..50,
                                  r1 in 0u32..3, c1 in 0u32..3) {
            let mut rng = seeded(seed);
            let faults: Vec<(u32, u32)> =
                (0..n).map(|_| (rng.gen_range(0..16u32), rng.gen_range(0..16u32))).collect();
            let small = SpareBudget { rows: r1, cols: c1 };
            let big = SpareBudget { rows: r1 + 1, cols: c1 + 1 };
            if repair_covers(&faults, small) {
                prop_assert!(repair_covers(&faults, big));
            }
        }

        #[test]
        fn budget_of_fault_count_always_suffices(n in 0usize..8, seed in 0u64..50) {
            let mut rng = seeded(seed);
            let faults: Vec<(u32, u32)> =
                (0..n).map(|_| (rng.gen_range(0..32u32), rng.gen_range(0..32u32))).collect();
            let budget = SpareBudget { rows: n as u32, cols: 0 };
            prop_assert!(repair_covers(&faults, budget));
        }
    }
}
