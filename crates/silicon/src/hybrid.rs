//! Per-bit protection plans for hybrid 6T/8T arrays (Section 6.1).
//!
//! The paper's key proposal: implement the few most-significant bits of
//! each stored LLR word with robust (8T) cells and keep cheap 6T cells for
//! the rest. A [`ProtectionPlan`] assigns a [`BitCellKind`] to every bit
//! position of the word and derives fault statistics, fault maps and area
//! figures from that assignment.

use serde::{Deserialize, Serialize};

use crate::cell::{BitCellKind, CellFailureModel};
use crate::fault_map::{FaultKind, FaultMap};
use dsp::rng::{derive_seed, seeded};
use rand::Rng;

/// Assignment of a bit-cell implementation to every bit of a stored word.
///
/// Bit positions are LSB-first (`cells[0]` is bit 0); the MSB of a `W`-bit
/// word is position `W-1`.
///
/// # Example
///
/// ```
/// use silicon::ProtectionPlan;
/// use silicon::cell::BitCellKind;
///
/// // The paper's sweet spot: 4 MSBs in 8T, 6 LSBs in 6T, ~12-13 % area.
/// let plan = ProtectionPlan::msb_protected(10, 4);
/// assert_eq!(plan.protected_bits(), 4);
/// let ovh = plan.area_overhead_vs_6t();
/// assert!(ovh > 0.10 && ovh < 0.14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectionPlan {
    cells: Vec<BitCellKind>,
}

impl ProtectionPlan {
    /// A uniform array: every bit uses the same cell kind.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn uniform(bits: u8, kind: BitCellKind) -> Self {
        assert!(bits > 0, "word width must be positive");
        Self {
            cells: vec![kind; bits as usize],
        }
    }

    /// The paper's preferential scheme: the `protected` most-significant
    /// bits use 8T cells, the rest 6T.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `protected > bits`.
    pub fn msb_protected(bits: u8, protected: u8) -> Self {
        assert!(bits > 0, "word width must be positive");
        assert!(
            protected <= bits,
            "cannot protect more bits than the word has"
        );
        let mut cells = vec![BitCellKind::Sram6T; bits as usize];
        for b in (bits - protected)..bits {
            cells[b as usize] = BitCellKind::Sram8T;
        }
        Self { cells }
    }

    /// A custom per-bit assignment (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn custom(cells: Vec<BitCellKind>) -> Self {
        assert!(!cells.is_empty(), "word width must be positive");
        Self { cells }
    }

    /// Word width in bits.
    pub fn bits(&self) -> u8 {
        self.cells.len() as u8
    }

    /// Cell kind of bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn cell(&self, bit: u8) -> BitCellKind {
        self.cells[bit as usize]
    }

    /// Number of bits implemented with 8T cells.
    pub fn protected_bits(&self) -> u8 {
        self.cells
            .iter()
            .filter(|&&c| c == BitCellKind::Sram8T)
            .count() as u8
    }

    /// Contiguous range of 6T ("unprotected") bit positions, if the plan is
    /// an MSB-protection plan; `None` for arbitrary mixes.
    pub fn unprotected_range(&self) -> Option<std::ops::Range<u8>> {
        let first_8t = self
            .cells
            .iter()
            .position(|&c| c == BitCellKind::Sram8T)
            .unwrap_or(self.cells.len());
        if self.cells[..first_8t]
            .iter()
            .all(|&c| c == BitCellKind::Sram6T)
            && self.cells[first_8t..]
                .iter()
                .all(|&c| c == BitCellKind::Sram8T)
        {
            Some(0..first_8t as u8)
        } else {
            None
        }
    }

    /// Mean relative cell area of the word versus an all-6T word.
    pub fn relative_area(&self) -> f64 {
        self.cells.iter().map(|c| c.relative_area()).sum::<f64>() / self.cells.len() as f64
    }

    /// Area overhead versus an all-6T array (`relative_area − 1`).
    pub fn area_overhead_vs_6t(&self) -> f64 {
        self.relative_area() - 1.0
    }

    /// Expected fraction of faulty cells in a word at supply `vdd`.
    pub fn expected_defect_fraction(&self, model: &CellFailureModel, vdd: f64) -> f64 {
        self.cells
            .iter()
            .map(|&c| model.p_cell(c, vdd))
            .sum::<f64>()
            / self.cells.len() as f64
    }

    /// Draws a manufacturing fault map for an array of `words` words at
    /// supply `vdd`: each cell fails independently with its kind's
    /// `P_cell(vdd)`.
    pub fn fault_map_at_vdd(
        &self,
        words: u32,
        model: &CellFailureModel,
        vdd: f64,
        kind: FaultKind,
        seed: u64,
    ) -> FaultMap {
        let per_bit_p: Vec<f64> = self.cells.iter().map(|&c| model.p_cell(c, vdd)).collect();
        let mut rng = seeded(seed);
        let mut map = FaultMap::defect_free(words, self.bits());
        // Build via the Bernoulli path bit class by bit class to keep the
        // sorted-by-(word,bit) invariant FaultMap::corrupt relies on.
        let mut faults = Vec::new();
        for word in 0..words {
            for (bit, &p) in per_bit_p.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    faults.push(crate::fault_map::Fault {
                        word,
                        bit: bit as u8,
                        kind,
                    });
                }
            }
        }
        map.set_faults(faults);
        map
    }

    /// Draws the paper's Fig. 7 worst-case map: exactly `n_faults` faults
    /// uniformly over the **unprotected (6T) bits only**, with the
    /// protected MSB columns fault-free.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not an MSB-protection plan, if every bit is
    /// protected while `n_faults > 0`, or if `n_faults` exceeds the number
    /// of unprotected cells.
    pub fn fault_map_exact_unprotected(
        &self,
        words: u32,
        n_faults: usize,
        kind: FaultKind,
        seed: u64,
    ) -> FaultMap {
        let range = self
            .unprotected_range()
            .expect("fault_map_exact_unprotected requires an MSB-protection plan");
        if range.is_empty() {
            assert_eq!(
                n_faults, 0,
                "fully protected plan cannot host {n_faults} faults"
            );
            return FaultMap::defect_free(words, self.bits());
        }
        FaultMap::random_in_bits(
            words,
            self.bits(),
            range,
            n_faults,
            kind,
            derive_seed(seed, 0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_plans() {
        let p6 = ProtectionPlan::uniform(10, BitCellKind::Sram6T);
        assert_eq!(p6.protected_bits(), 0);
        assert!((p6.relative_area() - 1.0).abs() < 1e-12);
        let p8 = ProtectionPlan::uniform(10, BitCellKind::Sram8T);
        assert_eq!(p8.protected_bits(), 10);
        assert!((p8.area_overhead_vs_6t() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn paper_sweet_spot_area() {
        // 4 of 10 bits in 8T → (4·1.3 + 6)/10 = 1.12 → 12 % overhead,
        // matching the "~13 %" the paper quotes for Fig. 8.
        let plan = ProtectionPlan::msb_protected(10, 4);
        assert!((plan.area_overhead_vs_6t() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn msb_positions_are_protected() {
        let plan = ProtectionPlan::msb_protected(10, 3);
        for bit in 0..7 {
            assert_eq!(plan.cell(bit), BitCellKind::Sram6T);
        }
        for bit in 7..10 {
            assert_eq!(plan.cell(bit), BitCellKind::Sram8T);
        }
        assert_eq!(plan.unprotected_range(), Some(0..7));
    }

    #[test]
    fn custom_mixed_plan_has_no_unprotected_range() {
        let plan = ProtectionPlan::custom(vec![
            BitCellKind::Sram8T,
            BitCellKind::Sram6T,
            BitCellKind::Sram8T,
        ]);
        assert_eq!(plan.unprotected_range(), None);
    }

    #[test]
    fn expected_defects_drop_with_protection() {
        let model = CellFailureModel::dac12();
        let none = ProtectionPlan::msb_protected(10, 0);
        let four = ProtectionPlan::msb_protected(10, 4);
        let all = ProtectionPlan::msb_protected(10, 10);
        let v = 0.65;
        let d0 = none.expected_defect_fraction(&model, v);
        let d4 = four.expected_defect_fraction(&model, v);
        let d10 = all.expected_defect_fraction(&model, v);
        assert!(d0 > d4 && d4 > d10);
        // With 4 of 10 bits protected, ~60 % of the faults remain.
        assert!((d4 / d0 - 0.6).abs() < 0.05);
    }

    #[test]
    fn exact_unprotected_map_spares_msbs() {
        let plan = ProtectionPlan::msb_protected(10, 4);
        let map = plan.fault_map_exact_unprotected(500, 300, FaultKind::Flip, 11);
        assert_eq!(map.fault_count(), 300);
        assert_eq!(map.faults_in_bits(6..10), 0, "protected bits must be clean");
    }

    #[test]
    fn fully_protected_plan_is_defect_free() {
        let plan = ProtectionPlan::msb_protected(10, 10);
        let map = plan.fault_map_exact_unprotected(100, 0, FaultKind::Flip, 0);
        assert_eq!(map.fault_count(), 0);
    }

    #[test]
    fn vdd_fault_map_statistics() {
        let model = CellFailureModel::dac12();
        let plan = ProtectionPlan::msb_protected(10, 4);
        let vdd = 0.62; // 6T in the percent regime, 8T still clean
        let map = plan.fault_map_at_vdd(3000, &model, vdd, FaultKind::Flip, 21);
        let p6 = model.p_cell(BitCellKind::Sram6T, vdd);
        let unprot = map.faults_in_bits(0..6) as f64 / (3000.0 * 6.0);
        assert!(
            (unprot - p6).abs() < 0.25 * p6 + 1e-3,
            "unprotected rate {unprot} vs {p6}"
        );
        let prot = map.faults_in_bits(6..10);
        assert!(
            (prot as f64) < 0.01 * map.fault_count() as f64 + 3.0,
            "8T bits should be nearly fault-free, got {prot}"
        );
    }

    #[test]
    #[should_panic(expected = "MSB-protection plan")]
    fn exact_unprotected_requires_msb_plan() {
        let plan = ProtectionPlan::custom(vec![BitCellKind::Sram8T, BitCellKind::Sram6T]);
        let _ = plan.fault_map_exact_unprotected(10, 1, FaultKind::Flip, 0);
    }

    proptest! {
        #[test]
        fn area_monotone_in_protection(k in 0u8..=10) {
            let a = ProtectionPlan::msb_protected(10, k).relative_area();
            let b = ProtectionPlan::msb_protected(10, k.saturating_add(1).min(10)).relative_area();
            prop_assert!(b >= a - 1e-12);
        }

        #[test]
        fn unprotected_range_complements_protected(k in 0u8..=10) {
            let plan = ProtectionPlan::msb_protected(10, k);
            let r = plan.unprotected_range().unwrap();
            prop_assert_eq!(r.end, 10 - k);
            prop_assert_eq!(plan.protected_bits(), k);
        }
    }
}
