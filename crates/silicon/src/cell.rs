//! SRAM bit-cell failure models (the paper's Fig. 3).
//!
//! The paper obtains per-cell failure probabilities from Monte-Carlo SPICE
//! simulation of a 65 nm slow-fast corner. We cannot run SPICE, so this
//! module reproduces the *curves* with the analytic behaviour the paper
//! states explicitly:
//!
//! * RDF-induced (parametric) failures grow by "a billion times" for every
//!   500 mV of supply reduction — i.e. 18 decades per volt on a log scale.
//! * Soft errors grow only 3× per 500 mV.
//! * A medium-sized 6T cell is dependable at the 1.0 V nominal supply,
//!   usable down to 0.8 V when ~0.1 % faulty cells are tolerated, and
//!   fails at ~1–10 % rates near 0.6 V.
//! * A 15 % upsized 6T cell shifts the curve by roughly 60 mV; an 8T cell
//!   by roughly 200 mV (it remains dependable at 0.8 V and tolerable at
//!   0.6 V).
//!
//! Those anchors define the default [`CellFailureModel::dac12`] model; all
//! downstream experiments only consume the scalar `P_cell(Vdd)`, so the
//! substitution preserves the paper's code path exactly.

use serde::{Deserialize, Serialize};

/// SRAM bit-cell implementation choices studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BitCellKind {
    /// Medium-sized 6-transistor cell (area- and energy-efficient baseline).
    #[default]
    Sram6T,
    /// 6T cell with 15 % transistor upsizing.
    Sram6TUpsized,
    /// 8-transistor cell with a decoupled read port (robust option).
    Sram8T,
}

impl BitCellKind {
    /// All cell kinds, in increasing robustness order.
    pub const ALL: [BitCellKind; 3] = [
        BitCellKind::Sram6T,
        BitCellKind::Sram6TUpsized,
        BitCellKind::Sram8T,
    ];

    /// Relative cell area versus the 6T baseline.
    ///
    /// The 8T figure (~1.3×) reproduces the paper's arithmetic: protecting
    /// 4 of 10 LLR bits with 8T cells costs `(4·1.3 + 6·1.0)/10 − 1 ≈ 12–13 %`
    /// array area, the "~13 % overhead" of Fig. 8.
    pub fn relative_area(self) -> f64 {
        match self {
            BitCellKind::Sram6T => 1.0,
            BitCellKind::Sram6TUpsized => 1.15,
            BitCellKind::Sram8T => 1.30,
        }
    }

    /// Voltage shift of the failure curve relative to 6T (volts).
    ///
    /// A positive shift means the cell behaves like a 6T cell at a supply
    /// that much higher.
    pub fn voltage_margin(self) -> f64 {
        match self {
            BitCellKind::Sram6T => 0.0,
            BitCellKind::Sram6TUpsized => 0.06,
            BitCellKind::Sram8T => 0.20,
        }
    }
}

impl std::fmt::Display for BitCellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BitCellKind::Sram6T => "6T",
            BitCellKind::Sram6TUpsized => "6T+15%",
            BitCellKind::Sram8T => "8T",
        };
        f.write_str(s)
    }
}

/// Analytic `P_cell(Vdd)` model calibrated to the paper's anchors.
///
/// `log10 P = log10 P_nom + slope · (V_nom − V − margin(kind))`, clamped to
/// `[floor, ceil]`.
///
/// # Example
///
/// ```
/// use silicon::cell::{BitCellKind, CellFailureModel};
///
/// let m = CellFailureModel::dac12();
/// // 6T cells fail ~9 orders of magnitude more often at 0.5 V than at 1.0 V.
/// let ratio = m.p_cell(BitCellKind::Sram6T, 0.5) / m.p_cell(BitCellKind::Sram6T, 1.0);
/// assert!(ratio > 1e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellFailureModel {
    /// Nominal supply voltage (volts).
    pub v_nominal: f64,
    /// `log10` of the 6T failure probability at nominal supply.
    pub log10_p_nominal: f64,
    /// RDF failure slope in decades per volt (paper: ~18 — "a billion times
    /// per 500 mV").
    pub decades_per_volt: f64,
    /// Lower clamp on the returned probability.
    pub floor: f64,
    /// Upper clamp on the returned probability.
    pub ceil: f64,
}

impl CellFailureModel {
    /// The default model calibrated to the paper's quoted anchors
    /// (65 nm, slow-fast corner).
    pub fn dac12() -> Self {
        Self {
            v_nominal: 1.0,
            log10_p_nominal: -8.0,
            decades_per_volt: 18.0,
            floor: 1e-15,
            ceil: 0.5,
        }
    }

    /// RDF-induced (persistent, parametric) failure probability of one
    /// bit cell of the given kind at supply `vdd` (volts).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn p_cell(&self, kind: BitCellKind, vdd: f64) -> f64 {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "supply voltage must be positive"
        );
        let effective_v = vdd + kind.voltage_margin();
        let log10p = self.log10_p_nominal + self.decades_per_volt * (self.v_nominal - effective_v);
        10f64.powf(log10p).clamp(self.floor, self.ceil)
    }

    /// Supply voltage at which the given cell kind reaches failure
    /// probability `p_target` (inverse of [`CellFailureModel::p_cell`],
    /// ignoring clamps).
    ///
    /// # Panics
    ///
    /// Panics if `p_target` is not in `(0, 1)`.
    pub fn vdd_for_p(&self, kind: BitCellKind, p_target: f64) -> f64 {
        assert!(
            p_target > 0.0 && p_target < 1.0,
            "target probability must be in (0, 1)"
        );
        let log10p = p_target.log10();
        self.v_nominal
            - (log10p - self.log10_p_nominal) / self.decades_per_volt
            - kind.voltage_margin()
    }
}

impl Default for CellFailureModel {
    fn default() -> Self {
        Self::dac12()
    }
}

/// Non-persistent soft-error model (radiation upsets).
///
/// Rates rise only 3× per 500 mV of supply reduction (paper, Section 3),
/// in contrast to the explosive RDF curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftErrorModel {
    /// Nominal supply voltage (volts).
    pub v_nominal: f64,
    /// Per-cell, per-read upset probability at nominal supply.
    pub p_nominal: f64,
}

impl SoftErrorModel {
    /// A 65 nm-class default: negligible next to RDF failures at low Vdd.
    pub fn dac12() -> Self {
        Self {
            v_nominal: 1.0,
            p_nominal: 1e-12,
        }
    }

    /// Per-cell upset probability at supply `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn p_upset(&self, vdd: f64) -> f64 {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "supply voltage must be positive"
        );
        self.p_nominal * 3f64.powf((self.v_nominal - vdd) / 0.5)
    }
}

impl Default for SoftErrorModel {
    fn default() -> Self {
        Self::dac12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_anchor() {
        let m = CellFailureModel::dac12();
        let p = m.p_cell(BitCellKind::Sram6T, 1.0);
        assert!((p.log10() + 8.0).abs() < 1e-9);
    }

    #[test]
    fn billion_times_per_half_volt() {
        let m = CellFailureModel::dac12();
        let hi = m.p_cell(BitCellKind::Sram6T, 0.6);
        let lo = m.p_cell(BitCellKind::Sram6T, 1.1);
        // 0.5 V apart within unclamped region → 1e9 ratio.
        let ratio = m.p_cell(BitCellKind::Sram6T, 0.7) / m.p_cell(BitCellKind::Sram6T, 1.2);
        assert!((ratio.log10() - 9.0).abs() < 0.5, "ratio {ratio}");
        assert!(hi > lo);
    }

    #[test]
    fn paper_anchor_08v_tolerable() {
        // At 0.8 V a 6T array sees ~1e-4-ish failure rates: tolerable with
        // 0.1 % accepted defects (paper Section 5).
        let m = CellFailureModel::dac12();
        let p = m.p_cell(BitCellKind::Sram6T, 0.8);
        assert!(p > 1e-6 && p < 1e-3, "p(0.8V) = {p}");
    }

    #[test]
    fn paper_anchor_06v_severe() {
        let m = CellFailureModel::dac12();
        let p = m.p_cell(BitCellKind::Sram6T, 0.6);
        assert!(
            p > 0.01,
            "6T at 0.6 V must be in the 1-10%+ regime, got {p}"
        );
    }

    #[test]
    fn eight_t_is_more_robust_everywhere() {
        let m = CellFailureModel::dac12();
        for v in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let p6 = m.p_cell(BitCellKind::Sram6T, v);
            let pu = m.p_cell(BitCellKind::Sram6TUpsized, v);
            let p8 = m.p_cell(BitCellKind::Sram8T, v);
            assert!(p8 <= pu && pu <= p6, "ordering violated at {v} V");
        }
    }

    #[test]
    fn eight_t_at_06v_like_6t_at_08v() {
        let m = CellFailureModel::dac12();
        let p8 = m.p_cell(BitCellKind::Sram8T, 0.6);
        let p6 = m.p_cell(BitCellKind::Sram6T, 0.8);
        assert!((p8.log10() - p6.log10()).abs() < 0.1);
    }

    #[test]
    fn vdd_for_p_inverts_p_cell() {
        let m = CellFailureModel::dac12();
        for kind in BitCellKind::ALL {
            let v = m.vdd_for_p(kind, 1e-4);
            let p = m.p_cell(kind, v);
            assert!((p.log10() + 4.0).abs() < 1e-6, "{kind}: {p}");
        }
    }

    #[test]
    fn probabilities_clamped() {
        let m = CellFailureModel::dac12();
        assert!(m.p_cell(BitCellKind::Sram8T, 1.5) >= m.floor);
        assert!(m.p_cell(BitCellKind::Sram6T, 0.2) <= m.ceil);
    }

    #[test]
    fn soft_errors_grow_slowly() {
        let s = SoftErrorModel::dac12();
        let ratio = s.p_upset(0.5) / s.p_upset(1.0);
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn soft_errors_negligible_vs_rdf_at_low_v() {
        let m = CellFailureModel::dac12();
        let s = SoftErrorModel::dac12();
        assert!(s.p_upset(0.6) < 1e-6 * m.p_cell(BitCellKind::Sram6T, 0.6));
    }

    #[test]
    fn display_names() {
        assert_eq!(BitCellKind::Sram6T.to_string(), "6T");
        assert_eq!(BitCellKind::Sram8T.to_string(), "8T");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_vdd() {
        let _ = CellFailureModel::dac12().p_cell(BitCellKind::Sram6T, 0.0);
    }

    proptest! {
        #[test]
        fn p_cell_monotone_in_vdd(v in 0.4f64..1.2, dv in 0.01f64..0.3) {
            let m = CellFailureModel::dac12();
            for kind in BitCellKind::ALL {
                prop_assert!(m.p_cell(kind, v) >= m.p_cell(kind, v + dv));
            }
        }

        #[test]
        fn p_cell_in_unit_interval(v in 0.2f64..1.5) {
            let m = CellFailureModel::dac12();
            for kind in BitCellKind::ALL {
                let p = m.p_cell(kind, v);
                prop_assert!(p > 0.0 && p <= 0.5);
            }
        }
    }
}
