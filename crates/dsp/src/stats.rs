//! Statistics and unit-conversion helpers.
//!
//! Provides dB conversions, an `erfc`/Q-function implementation (needed for
//! theoretical BER references in tests), simple descriptive statistics and
//! a Wilson confidence interval for Monte-Carlo error-rate estimates.

/// Converts a ratio in decibels to linear scale.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear ratio to decibels.
///
/// Returns `-inf` for `x == 0`.
#[inline]
pub fn linear_to_db(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Complementary error function `erfc(x)`.
///
/// Uses the Numerical-Recipes rational Chebyshev approximation, accurate to
/// about `1.2e-7` relative error — ample for BER reference curves.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)`.
#[inline]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Theoretical BPSK bit-error rate over AWGN at the given `Eb/N0` (linear).
///
/// Used as a reference curve when validating the simulated chain.
#[inline]
pub fn bpsk_ber_awgn(ebn0_linear: f64) -> f64 {
    q_function((2.0 * ebn0_linear).sqrt())
}

/// Sample mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` at approximately the given z-score (1.96 ≈ 95 %).
/// Well-behaved even when `successes` is 0 or `trials`, unlike the normal
/// approximation — important for rare-event BLER estimates.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Running tally of bit/block error counting for Monte-Carlo loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorCounter {
    /// Number of errored items observed.
    pub errors: u64,
    /// Total items observed.
    pub total: u64,
}

impl ErrorCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `errors` errored items out of `total`.
    pub fn record(&mut self, errors: u64, total: u64) {
        self.errors += errors;
        self.total += total;
    }

    /// Observed error rate; `0.0` before any item is recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }

    /// 95 % Wilson confidence interval of the rate.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been recorded yet.
    pub fn confidence95(&self) -> (f64, f64) {
        wilson_interval(self.errors, self.total, 1.96)
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &ErrorCounter) {
        self.errors += other.errors;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn db_roundtrip() {
        for db in [-20.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn q_function_symmetry() {
        for x in [0.3, 1.0, 2.2] {
            assert!((q_function(x) + q_function(-x) - 1.0).abs() < 1e-7);
        }
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bpsk_ber_reference_point() {
        // At Eb/N0 = 9.6 dB, BPSK BER ≈ 1e-5.
        let ber = bpsk_ber_awgn(db_to_linear(9.6));
        assert!(ber > 3e-6 && ber < 3e-5, "ber {ber}");
    }

    #[test]
    fn mean_variance_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn wilson_contains_p_hat() {
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!(lo < 0.1 && 0.1 < hi);
        let (lo0, _) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(50, 50, 1.96);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn wilson_known_values() {
        // Textbook reference intervals at z = 1.96 (95 %).
        let cases = [
            // (successes, trials, lo, hi)
            (10u64, 100u64, 0.055229, 0.174368),
            (0, 20, 0.0, 0.161135),
            (5, 5, 0.565510, 1.0),
            (50, 100, 0.403830, 0.596170),
        ];
        for (s, n, lo, hi) in cases {
            let (wlo, whi) = wilson_interval(s, n, 1.96);
            assert!(
                (wlo - lo).abs() < 5e-4 && (whi - hi).abs() < 5e-4,
                "wilson({s}, {n}) = ({wlo:.6}, {whi:.6}), expected ({lo}, {hi})"
            );
        }
        // Symmetry: (k, n) and (n-k, n) mirror around 1/2.
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        let (mlo, mhi) = wilson_interval(90, 100, 1.96);
        assert!((lo - (1.0 - mhi)).abs() < 1e-12);
        assert!((hi - (1.0 - mlo)).abs() < 1e-12);
    }

    #[test]
    fn error_counter_merge() {
        let mut a = ErrorCounter::new();
        a.record(2, 10);
        let mut b = ErrorCounter::new();
        b.record(3, 10);
        a.merge(&b);
        assert_eq!(a.errors, 5);
        assert!((a.rate() - 0.25).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn wilson_is_ordered(s in 0u64..100, extra in 1u64..100) {
            let n = s + extra;
            let (lo, hi) = wilson_interval(s, n, 1.96);
            prop_assert!(lo <= hi);
            prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }

        #[test]
        fn q_is_monotone_decreasing(a in -4.0f64..4.0, d in 0.01f64..2.0) {
            prop_assert!(q_function(a) > q_function(a + d));
        }
    }
}
