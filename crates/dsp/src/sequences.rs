//! Pseudo-noise sequence generators.
//!
//! The HSPA+ downlink scrambles each chip stream with a complex Gold-code
//! sequence built from two length-18 LFSRs (3GPP TS 25.213 §5.2.2). This
//! module provides a generic Fibonacci [`Lfsr`] and the standard-compliant
//! [`GoldSequence`] on top of it.

/// A Fibonacci linear-feedback shift register over GF(2).
///
/// Bit 0 of `state` is the output end; `taps` lists the feedback tap
/// positions (0-based, position `k` meaning state bit `k`).
///
/// # Example
///
/// ```
/// use dsp::sequences::Lfsr;
///
/// // x^3 + x + 1, maximal length 7.
/// let mut l = Lfsr::new(3, &[2, 0], 0b001);
/// let seq: Vec<u8> = (0..7).map(|_| l.next_bit()).collect();
/// assert_eq!(seq.iter().filter(|&&b| b == 1).count(), 4); // balance property
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    len: u32,
    taps: Vec<u32>,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR of `len` bits with the given feedback taps and a
    /// non-zero initial state.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or > 31, any tap is out of range, or the
    /// initial state (masked to `len` bits) is zero.
    pub fn new(len: u32, taps: &[u32], init: u32) -> Self {
        assert!((1..=31).contains(&len), "LFSR length must be in 1..=31");
        assert!(taps.iter().all(|&t| t < len), "tap position out of range");
        let mask = (1u32 << len) - 1;
        let state = init & mask;
        assert!(state != 0, "LFSR state must be non-zero");
        Self {
            len,
            taps: taps.to_vec(),
            state,
        }
    }

    /// Current register contents (low `len` bits).
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Outputs the next bit and advances the register.
    pub fn next_bit(&mut self) -> u8 {
        let out = (self.state & 1) as u8;
        let mut fb = 0u32;
        for &t in &self.taps {
            fb ^= (self.state >> t) & 1;
        }
        self.state >>= 1;
        self.state |= fb << (self.len - 1);
        out
    }

    /// Generates `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// The 3GPP downlink scrambling Gold sequence (TS 25.213).
///
/// Two degree-18 LFSRs with polynomials `x¹⁸ + x⁷ + 1` and
/// `x¹⁸ + x¹⁰ + x⁷ + x⁵ + 1`; the X register is initialized to `1` and
/// advanced by the scrambling-code number `n`, the Y register to all ones.
/// [`GoldSequence::next_chip`] returns the binary I-branch chip; the
/// complex scrambling chip used by the PHY is formed in `hspa-phy`.
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x: Lfsr,
    y: Lfsr,
}

impl GoldSequence {
    /// Degree of the component LFSRs.
    pub const DEGREE: u32 = 18;

    /// Creates the Gold generator for scrambling-code number `code`.
    pub fn new(code: u32) -> Self {
        // X: x^18 + x^7 + 1 → taps at state bits 0 and 7 (Fibonacci form).
        let mut x = Lfsr::new(Self::DEGREE, &[7, 0], 1);
        // Advance X by `code` steps to select the code (3GPP construction).
        for _ in 0..code {
            x.next_bit();
        }
        // If advancing zeroed nothing (state always non-zero for m-sequence).
        // Y: x^18 + x^10 + x^7 + x^5 + 1 → taps at bits 0, 5, 7, 10.
        let y = Lfsr::new(Self::DEGREE, &[10, 7, 5, 0], (1 << Self::DEGREE) - 1);
        Self { x, y }
    }

    /// Next binary Gold chip (X ⊕ Y).
    pub fn next_chip(&mut self) -> u8 {
        self.x.next_bit() ^ self.y.next_bit()
    }

    /// Generates `n` binary chips.
    pub fn chips(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_chip()).collect()
    }
}

/// Normalized autocorrelation of a ±1-mapped binary sequence at `lag`.
///
/// Used in tests to check the noise-like property of scrambling sequences.
pub fn binary_autocorrelation(bits: &[u8], lag: usize) -> f64 {
    assert!(lag < bits.len(), "lag must be smaller than the sequence");
    let n = bits.len() - lag;
    let mut acc = 0i64;
    for i in 0..n {
        let a = 1 - 2 * bits[i] as i64;
        let b = 1 - 2 * bits[i + lag] as i64;
        acc += a * b;
    }
    acc as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lfsr_is_maximal_length_deg3() {
        let mut l = Lfsr::new(3, &[2, 0], 0b001);
        let mut states = vec![l.state()];
        for _ in 0..6 {
            l.next_bit();
            states.push(l.state());
        }
        states.sort_unstable();
        states.dedup();
        assert_eq!(
            states.len(),
            7,
            "degree-3 m-sequence must visit all 7 states"
        );
        l.next_bit();
        assert_eq!(l.state(), 0b001, "period must be 7");
    }

    #[test]
    fn lfsr_x18_period_is_maximal_prefix_distinct() {
        // Full period is 2^18-1; just check a long prefix never hits zero
        // and revisits the initial state only at the right time for a
        // shorter degree-7 register where it is cheap.
        let mut l = Lfsr::new(7, &[6, 0], 1); // x^7 + x + 1 is primitive
        let start = l.state();
        let mut period = 0usize;
        loop {
            l.next_bit();
            period += 1;
            assert_ne!(l.state(), 0);
            if l.state() == start {
                break;
            }
        }
        assert_eq!(period, 127);
    }

    #[test]
    fn gold_sequences_differ_by_code() {
        let a = GoldSequence::new(0).chips(256);
        let b = GoldSequence::new(5).chips(256);
        assert_ne!(a, b);
    }

    #[test]
    fn gold_sequence_is_deterministic() {
        assert_eq!(
            GoldSequence::new(3).chips(128),
            GoldSequence::new(3).chips(128)
        );
    }

    #[test]
    fn gold_sequence_is_balanced() {
        let chips = GoldSequence::new(1).chips(20_000);
        let ones = chips.iter().map(|&c| c as usize).sum::<usize>();
        let frac = ones as f64 / chips.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "chip bias {frac}");
    }

    #[test]
    fn gold_autocorrelation_is_spiky() {
        let chips = GoldSequence::new(1).chips(8192);
        assert!((binary_autocorrelation(&chips, 0) - 1.0).abs() < 1e-12);
        for lag in [1, 7, 63, 500] {
            assert!(
                binary_autocorrelation(&chips, lag).abs() < 0.05,
                "lag {lag} correlation too high"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Lfsr::new(4, &[3, 0], 0);
    }

    proptest! {
        #[test]
        fn lfsr_never_reaches_zero(init in 1u32..127, steps in 1usize..300) {
            let mut l = Lfsr::new(7, &[6, 0], init);
            for _ in 0..steps {
                l.next_bit();
                prop_assert_ne!(l.state(), 0);
            }
        }
    }
}
