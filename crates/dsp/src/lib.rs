//! Signal-processing substrate for the DAC'12 error-resilience reproduction.
//!
//! This crate provides the numeric foundations used by the HSPA+ physical
//! layer (`hspa-phy`) and the system-level fault simulator: complex
//! arithmetic ([`Complex64`]), fixed-point LLR quantization ([`fixed`]),
//! FIR/root-raised-cosine filtering ([`filter`]), pseudo-noise sequence
//! generation ([`sequences`]), dense complex linear algebra ([`linalg`])
//! and statistics helpers ([`stats`]).
//!
//! Everything is implemented from scratch on top of `std` (plus `rand` for
//! seeded randomness) so the workspace has no numeric dependencies outside
//! the offline allowlist.
//!
//! # Example
//!
//! ```
//! use dsp::{Complex64, stats::db_to_linear};
//!
//! let x = Complex64::new(1.0, -2.0);
//! assert!((x.norm_sqr() - 5.0).abs() < 1e-12);
//! assert!((db_to_linear(3.0) - 1.995).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]

pub mod complex;
pub mod filter;
pub mod fixed;
pub mod linalg;
pub mod maxstar;
pub mod rng;
pub mod sequences;
pub mod stats;

pub use complex::Complex64;
pub use fixed::{LlrFormat, LlrQuantizer};
pub use linalg::CMatrix;
