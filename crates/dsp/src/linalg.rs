//! Dense complex linear algebra for the MMSE equalizer.
//!
//! The linear MMSE equalizer solves `(HᴴH + σ²I) w = Hᴴ e_d` for each
//! channel realization. Filter lengths are small (tens of taps), so a
//! dense Hermitian Cholesky factorization is the right tool; no external
//! linear-algebra crate is required.

use std::fmt;

use crate::complex::Complex64;

/// Error returned when a factorization or solve fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite (a pivot was ≤ 0 or non-finite).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// Operand dimensions do not match.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::DimensionMismatch { what } => {
                write!(f, "dimension mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use dsp::{CMatrix, Complex64};
///
/// let eye = CMatrix::identity(3);
/// let b = vec![Complex64::ONE; 3];
/// let x = eye.solve_hermitian(&b)?;
/// assert!((x[0] - Complex64::ONE).norm() < 1e-12);
/// # Ok::<(), dsp::linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Capacity of the backing storage, in elements (for steady-state
    /// allocation checks on scratch matrices).
    pub fn data_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Conjugate transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// differ.
    pub fn mul(&self, rhs: &CMatrix) -> Result<CMatrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                what: "matrix product inner dimensions",
            });
        }
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                what: "matrix-vector product",
            });
        }
        let mut out = vec![Complex64::ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Adds `sigma` to every diagonal entry (diagonal loading, `A + σI`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, sigma: f64) {
        assert_eq!(
            self.rows, self.cols,
            "diagonal loading needs a square matrix"
        );
        for i in 0..self.rows {
            self[(i, i)] += Complex64::from_re(sigma);
        }
    }

    /// Resizes to `rows × cols` and zeroes every entry, reusing the
    /// existing storage — the allocation-free counterpart of
    /// [`CMatrix::zeros`] for scratch matrices.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.data.clear();
        self.data.resize(rows * cols, Complex64::ZERO);
        self.rows = rows;
        self.cols = cols;
    }

    /// Computes the Gram matrix `selfᴴ · self` into `out`, reusing its
    /// storage. The accumulation order replicates
    /// `self.hermitian().mul(self)` term for term (including the skip of
    /// exact-zero left factors), so the result is bit-identical to that
    /// two-step form without materializing the conjugate transpose.
    pub fn gram_into(&self, out: &mut CMatrix) {
        let n = self.cols;
        out.reshape_zeroed(n, n);
        for i in 0..n {
            for k in 0..self.rows {
                let a = self[(k, i)].conj();
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * self[(k, j)];
                }
            }
        }
    }

    /// Cholesky factorization `A = L·Lᴴ` of a Hermitian positive-definite
    /// matrix; returns the lower-triangular factor.
    ///
    /// Only the lower triangle of `self` is read.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive, and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn cholesky(&self) -> Result<CMatrix, LinalgError> {
        let mut l = CMatrix::zeros(self.rows.max(1), self.cols.max(1));
        self.cholesky_into(&mut l)?;
        Ok(l)
    }

    /// Allocation-free [`CMatrix::cholesky`]: factors into `l`, reusing
    /// its storage.
    ///
    /// # Errors
    ///
    /// Same as [`CMatrix::cholesky`].
    pub fn cholesky_into(&self, l: &mut CMatrix) -> Result<(), LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                what: "cholesky needs a square matrix",
            });
        }
        let n = self.rows;
        l.reshape_zeroed(n, n);
        for j in 0..n {
            let mut diag = self[(j, j)].re;
            for k in 0..j {
                diag -= l[(j, k)].norm_sqr();
            }
            if !(diag.is_finite() && diag > 0.0) {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = diag.sqrt();
            l[(j, j)] = Complex64::from_re(dj);
            for i in j + 1..n {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)].conj();
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for Hermitian positive-definite `A` via Cholesky.
    ///
    /// # Errors
    ///
    /// Propagates [`CMatrix::cholesky`] errors, plus a dimension mismatch
    /// if `b.len()` differs from the matrix order.
    pub fn solve_hermitian(&self, b: &[Complex64]) -> Result<Vec<Complex64>, LinalgError> {
        let mut scratch = CholeskyScratch::new();
        let mut x = Vec::new();
        self.solve_hermitian_into(b, &mut scratch, &mut x)?;
        Ok(x)
    }

    /// Allocation-free [`CMatrix::solve_hermitian`]: the factor and the
    /// forward-substitution vector live in `scratch`, the solution is
    /// written into `x` — all reusing existing capacity.
    ///
    /// # Errors
    ///
    /// Same as [`CMatrix::solve_hermitian`].
    pub fn solve_hermitian_into(
        &self,
        b: &[Complex64],
        scratch: &mut CholeskyScratch,
        x: &mut Vec<Complex64>,
    ) -> Result<(), LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                what: "right-hand side length",
            });
        }
        self.cholesky_into(&mut scratch.l)?;
        let l = &scratch.l;
        let n = self.rows;
        // Forward substitution: L y = b
        let y = &mut scratch.y;
        y.clear();
        y.resize(n, Complex64::ZERO);
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[(i, k)] * y[k];
            }
            y[i] = s / l[(i, i)];
        }
        // Backward substitution: Lᴴ x = y
        x.clear();
        x.resize(n, Complex64::ZERO);
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l[(k, i)].conj() * x[k];
            }
            x[i] = s / l[(i, i)];
        }
        Ok(())
    }
}

/// Reusable workspace of [`CMatrix::solve_hermitian_into`]: the Cholesky
/// factor and the forward-substitution intermediate.
#[derive(Debug, Clone)]
pub struct CholeskyScratch {
    l: CMatrix,
    y: Vec<Complex64>,
}

impl CholeskyScratch {
    /// Empty workspace; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self {
            l: CMatrix::zeros(1, 1),
            y: Vec::new(),
        }
    }

    /// Appends the capacity of every owned heap buffer to `out`.
    pub fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([self.l.data_capacity(), self.y.capacity()]);
    }
}

impl Default for CholeskyScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Builds the banded convolution (Toeplitz) matrix of a channel impulse
/// response: `y = H s` where `H` has `rows` rows and `rows + taps - 1`
/// columns... truncated to a square window used by the FIR MMSE design.
///
/// `H[(i, j)] = h[i - j]` for `0 ≤ i - j < taps`, with `rows` rows and
/// `cols` columns.
pub fn toeplitz_channel(h: &[Complex64], rows: usize, cols: usize) -> CMatrix {
    let mut m = CMatrix::zeros(rows, cols);
    toeplitz_channel_into(h, rows, cols, &mut m);
    m
}

/// Allocation-free [`toeplitz_channel`]: builds the convolution matrix
/// into `m`, reusing its storage.
pub fn toeplitz_channel_into(h: &[Complex64], rows: usize, cols: usize, m: &mut CMatrix) {
    m.reshape_zeroed(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if i >= j {
                let d = i - j;
                if d < h.len() {
                    m[(i, j)] = h[d];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-9
    }

    #[test]
    fn identity_solve_is_identity() {
        let m = CMatrix::identity(4);
        let b: Vec<Complex64> = (0..4).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let x = m.solve_hermitian(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!(approx(*xi, *bi));
        }
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2i], [-2i, 3]] is Hermitian PD.
        let a = CMatrix::from_rows(
            2,
            2,
            vec![
                Complex64::new(4.0, 0.0),
                Complex64::new(0.0, 2.0),
                Complex64::new(0.0, -2.0),
                Complex64::new(3.0, 0.0),
            ],
        );
        let l = a.cholesky().unwrap();
        let rec = l.mul(&l.hermitian()).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx(rec[(r, c)], a[(r, c)]), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn solve_matches_manual_inverse() {
        let a = CMatrix::from_rows(
            2,
            2,
            vec![
                Complex64::new(2.0, 0.0),
                Complex64::new(0.5, 0.5),
                Complex64::new(0.5, -0.5),
                Complex64::new(1.0, 0.0),
            ],
        );
        let b = vec![Complex64::ONE, Complex64::I];
        let x = a.solve_hermitian(&b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (bi, yi) in b.iter().zip(&back) {
            assert!(approx(*bi, *yi));
        }
    }

    #[test]
    fn non_pd_matrix_rejected() {
        let mut a = CMatrix::identity(2);
        a[(0, 0)] = Complex64::from_re(-1.0);
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { pivot: 0 })
        ));
    }

    #[test]
    fn dimension_errors() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
        assert!(a.mul_vec(&[Complex64::ZERO; 2]).is_err());
        let sq = CMatrix::identity(3);
        assert!(sq.solve_hermitian(&[Complex64::ZERO; 2]).is_err());
    }

    #[test]
    fn hermitian_transpose_involutive() {
        let a = CMatrix::from_rows(
            2,
            3,
            (0..6)
                .map(|i| Complex64::new(i as f64, -(i as f64)))
                .collect(),
        );
        let back = a.hermitian().hermitian();
        assert_eq!(a, back);
    }

    #[test]
    fn toeplitz_layout() {
        let h = [Complex64::from_re(1.0), Complex64::from_re(0.5)];
        let m = toeplitz_channel(&h, 3, 3);
        assert!(approx(m[(0, 0)], Complex64::from_re(1.0)));
        assert!(approx(m[(1, 0)], Complex64::from_re(0.5)));
        assert!(approx(m[(2, 0)], Complex64::ZERO));
        assert!(approx(m[(2, 1)], Complex64::from_re(0.5)));
        assert!(approx(m[(0, 1)], Complex64::ZERO));
    }

    #[test]
    fn error_display_is_informative() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }

    proptest! {
        #[test]
        fn gram_matrix_solve_roundtrip(seed in 0u64..500) {
            // Build A = GᴴG + I (always Hermitian PD) from pseudo-random G.
            use rand::{Rng, SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4;
            let g = CMatrix::from_rows(n, n,
                (0..n * n).map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect());
            let mut a = g.hermitian().mul(&g).unwrap();
            a.add_diagonal(1.0);
            let b: Vec<Complex64> =
                (0..n).map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
            let x = a.solve_hermitian(&b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (bi, yi) in b.iter().zip(&back) {
                prop_assert!((*bi - *yi).norm() < 1e-8);
            }
        }
    }
}
