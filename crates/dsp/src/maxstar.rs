//! Scalar LLR arithmetic behind the Max-Log-MAP kernels.
//!
//! The turbo decoder's trellis sweeps are pure max-plus algebra over one
//! floating type: add branch metrics, take pairwise maxima, negate for
//! the opposite sign hypothesis. [`LlrArith`] abstracts exactly that
//! surface so the same hand-unrolled recursions instantiate as the
//! bit-exact `f64` reference path and as the `Fast32` single-precision
//! tier — and, through const-generic lane arrays, as lockstep batched
//! kernels that auto-vectorize across packets.
//!
//! # The absorbing sentinel
//!
//! Unreachable trellis states carry [`LlrArith::NEG_INF`] instead of a
//! reachability flag. The sentinel must *absorb* any branch metric
//! exactly (`NEG_INF + g == NEG_INF` for every metric magnitude the
//! decoder can produce) so that dropping the reachability guard is a
//! value-identical transformation:
//!
//! * `f64` uses `-1e300`: adding any `|g| < ~1e284` cannot change the
//!   nearest-even rounding of a number this large.
//! * `f32` uses `-1e30`: LLRs are clipped (|LLR| ≤ a few hundred after
//!   HARQ combining), so metrics stay below ~1e6 and `-1e30 + g` rounds
//!   back to `-1e30` for every `|g| < ~1e22`.

/// The scalar arithmetic a Max-Log-MAP sweep needs, implemented by
/// `f64` (exact tier) and `f32` (`Fast32` tier).
pub trait LlrArith:
    Copy
    + PartialOrd
    + core::fmt::Debug
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Absorbing "unreachable state" sentinel (see module docs).
    const NEG_INF: Self;
    /// Additive identity.
    const ZERO: Self;

    /// Narrows (or passes through) a channel LLR into this type.
    fn from_f64(v: f64) -> Self;
    /// Widens back to `f64` for posterior reporting.
    fn to_f64(self) -> f64;
    /// Exact multiplication by ½ (a power of two, lossless in both
    /// precisions).
    fn half(self) -> Self;
    /// `max(a, b)` without NaN baggage — the max-log approximation of
    /// `ln(eᵃ + eᵇ)`. Inputs are never NaN here. Written as a
    /// comparison+select so it compiles to `maxpd`/`maxps` in lane form.
    #[inline(always)]
    fn max_star(a: Self, b: Self) -> Self {
        if b > a {
            b
        } else {
            a
        }
    }
}

impl LlrArith for f64 {
    const NEG_INF: f64 = -1e300;
    const ZERO: f64 = 0.0;

    #[inline(always)]
    fn from_f64(v: f64) -> f64 {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn half(self) -> f64 {
        0.5 * self
    }
}

impl LlrArith for f32 {
    const NEG_INF: f32 = -1e30;
    const ZERO: f32 = 0.0;

    #[inline(always)]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn half(self) -> f32 {
        0.5 * self
    }
}

/// Lane-wise `a + b` over a fixed-width lane array; elementwise, so the
/// per-lane value stream is identical at every width (the basis of the
/// batched decoder's lane-for-lane bit-identity with the scalar path).
#[inline(always)]
pub fn lanes_add<T: LlrArith, const L: usize>(a: [T; L], b: [T; L]) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = a[i] + b[i];
        i += 1;
    }
    out
}

/// Lane-wise `a - b`.
#[inline(always)]
pub fn lanes_sub<T: LlrArith, const L: usize>(a: [T; L], b: [T; L]) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = a[i] - b[i];
        i += 1;
    }
    out
}

/// Lane-wise negation.
#[inline(always)]
pub fn lanes_neg<T: LlrArith, const L: usize>(a: [T; L]) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = -a[i];
        i += 1;
    }
    out
}

/// Lane-wise exact halving.
#[inline(always)]
pub fn lanes_half<T: LlrArith, const L: usize>(a: [T; L]) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = a[i].half();
        i += 1;
    }
    out
}

/// Lane-wise multiplication by a broadcast scalar (extrinsic scaling).
#[inline(always)]
pub fn lanes_scale<T: LlrArith, const L: usize>(a: [T; L], s: T) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = a[i] * s;
        i += 1;
    }
    out
}

/// Lane-wise max-star (`maxpd`/`maxps` when vectorized).
#[inline(always)]
pub fn lanes_max<T: LlrArith, const L: usize>(a: [T; L], b: [T; L]) -> [T; L] {
    let mut out = a;
    let mut i = 0;
    while i < L {
        out[i] = T::max_star(a[i], b[i]);
        i += 1;
    }
    out
}

/// Loads a lane array from `s[off..off + L]`.
///
/// # Panics
///
/// Panics if the slice is too short.
#[inline(always)]
pub fn lanes_load<T: LlrArith, const L: usize>(s: &[T], off: usize) -> [T; L] {
    s[off..off + L].try_into().expect("lane load in bounds")
}

/// Stores a lane array to `s[off..off + L]`.
///
/// # Panics
///
/// Panics if the slice is too short.
#[inline(always)]
pub fn lanes_store<T: LlrArith, const L: usize>(s: &mut [T], off: usize, v: [T; L]) {
    s[off..off + L].copy_from_slice(&v);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_sentinel_absorbs_decoder_metrics() {
        for g in [0.0, 1.0, -250.0, 1e6, -1e6, 1e20] {
            assert_eq!(<f64 as LlrArith>::NEG_INF + g, <f64 as LlrArith>::NEG_INF);
        }
    }

    #[test]
    fn f32_sentinel_absorbs_decoder_metrics() {
        for g in [0.0f32, 1.0, -250.0, 1e6, -1e6] {
            assert_eq!(<f32 as LlrArith>::NEG_INF + g, <f32 as LlrArith>::NEG_INF);
        }
    }

    #[test]
    fn halving_is_exact() {
        for v in [1.0f64, 3.0, -7.25, 1e-3] {
            assert_eq!(v.half(), v * 0.5);
            assert_eq!((v as f32).half(), v as f32 * 0.5);
        }
    }

    #[test]
    fn max_star_matches_ordering() {
        assert_eq!(<f64 as LlrArith>::max_star(1.0, 2.0), 2.0);
        assert_eq!(<f64 as LlrArith>::max_star(2.0, 1.0), 2.0);
        // Ties keep the first operand, matching `if b > a { b } else { a }`
        // — the exact tie rule the scalar decoder has always used.
        assert_eq!(
            <f64 as LlrArith>::max_star(-0.0, 0.0).to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn lane_ops_are_elementwise() {
        let a = [1.0f64, 2.0, 3.0, 4.0];
        let b = [0.5f64, -1.0, 10.0, 0.0];
        assert_eq!(lanes_add(a, b), [1.5, 1.0, 13.0, 4.0]);
        assert_eq!(lanes_sub(a, b), [0.5, 3.0, -7.0, 4.0]);
        assert_eq!(lanes_max(a, b), [1.0, 2.0, 10.0, 4.0]);
        assert_eq!(lanes_neg(a), [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(lanes_half(a), [0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut buf = vec![0.0f32; 12];
        lanes_store(&mut buf, 4, [1.0f32, 2.0, 3.0, 4.0]);
        let back: [f32; 4] = lanes_load(&buf, 4);
        assert_eq!(back, [1.0, 2.0, 3.0, 4.0]);
    }
}
