//! Seeded randomness helpers for reproducible Monte-Carlo simulation.
//!
//! All stochastic components in the workspace (noise, fading, data bits,
//! fault locations) draw from explicitly seeded generators so every
//! experiment is bit-reproducible. `rand 0.8` does not ship a Gaussian
//! distribution without `rand_distr`, so a Box–Muller sampler lives here.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::complex::Complex64;

/// Creates a deterministic [`StdRng`] from a 64-bit seed.
///
/// ```
/// use dsp::rng::seeded;
/// use rand::RngCore;
/// assert_eq!(seeded(7).next_u64(), seeded(7).next_u64());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give independent, reproducible streams to parallel Monte-Carlo
/// workers (SplitMix64 finalizer — good avalanche, cheap).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child seed along a path of stream indices:
/// `derive_seed_path(s, &[a, b])` ≡ `derive_seed(derive_seed(s, a), b)`.
///
/// This is the hierarchical form of [`derive_seed`] used by the parallel
/// Monte-Carlo engine: master → operating point → packet. Because every
/// leaf seed depends only on its *position* in the tree — never on which
/// worker thread computes it — aggregate results are identical for any
/// thread count.
pub fn derive_seed_path(parent: u64, path: &[u64]) -> u64 {
    path.iter().fold(parent, |seed, &s| derive_seed(seed, s))
}

/// Stream index reserved for per-packet seeds under an operating point.
pub const STREAM_PACKETS: u64 = 1;

/// Stream index reserved for the fault-map (die) draw of a run.
pub const STREAM_FAULT_MAP: u64 = 0xfa;

/// The deterministic RNG seed for packet number `packet` of the
/// operating point seeded by `point_seed`.
///
/// Every packet gets its own independent stream, so a Monte-Carlo run
/// can be sharded at packet granularity across worker threads while
/// producing bit-identical statistics to a serial sweep.
pub fn packet_seed(point_seed: u64, packet: u64) -> u64 {
    derive_seed_path(point_seed, &[STREAM_PACKETS, packet])
}

/// Samples a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a circularly-symmetric complex Gaussian with total variance
/// `variance` (i.e. `variance/2` per real dimension).
///
/// This is the additive-noise primitive of every channel model.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    let sigma = (variance / 2.0).sqrt();
    Complex64::new(sigma * standard_normal(rng), sigma * standard_normal(rng))
}

/// Fills a vector with `n` iid complex Gaussian samples of total variance
/// `variance`.
pub fn complex_gaussian_vec<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    variance: f64,
) -> Vec<Complex64> {
    (0..n).map(|_| complex_gaussian(rng, variance)).collect()
}

/// Generates `n` uniformly random bits.
pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    let mut out = Vec::new();
    random_bits_into(rng, n, &mut out);
    out
}

/// Allocation-free [`random_bits`]: clears `out` and fills it with `n`
/// uniformly random bits, reusing the vector's capacity. Consumes the
/// generator identically to `random_bits` (one `next_u32` per bit).
pub fn random_bits_into<R: RngCore + ?Sized>(rng: &mut R, n: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend((0..n).map(|_| (rng.next_u32() & 1) as u8));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_path_composes() {
        assert_eq!(
            derive_seed_path(9, &[2, 5]),
            derive_seed(derive_seed(9, 2), 5)
        );
        assert_eq!(derive_seed_path(9, &[]), 9);
    }

    #[test]
    fn packet_seeds_are_distinct_per_packet_and_point() {
        let mut seeds: Vec<u64> = (0..8)
            .flat_map(|point| (0..64).map(move |p| packet_seed(point, p)))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8 * 64, "packet streams must not collide");
    }

    #[test]
    fn packet_stream_avoids_fault_stream() {
        // The die draw and packet streams live in different subtrees.
        for point in 0..32u64 {
            let fault = derive_seed(point, STREAM_FAULT_MAP);
            for p in 0..32 {
                assert_ne!(packet_seed(point, p), fault);
            }
        }
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s: Vec<u64> = (0..16).map(|i| derive_seed(1, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "stream seeds must be distinct");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = seeded(11);
        let n = 100_000;
        let v = 4.0;
        let samples = complex_gaussian_vec(&mut rng, n, v);
        let energy = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((energy - v).abs() < 0.1, "energy {energy}");
        let re_var = samples.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        assert!((re_var - v / 2.0).abs() < 0.1, "re variance {re_var}");
    }

    #[test]
    fn random_bits_are_binary_and_balanced() {
        let mut rng = seeded(3);
        let bits = random_bits(&mut rng, 20_000);
        assert!(bits.iter().all(|&b| b <= 1));
        let ones = bits.iter().map(|&b| b as usize).sum::<usize>();
        let frac = ones as f64 / bits.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }
}
