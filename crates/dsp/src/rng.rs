//! Seeded randomness helpers for reproducible Monte-Carlo simulation.
//!
//! All stochastic components in the workspace (noise, fading, data bits,
//! fault locations) draw from explicitly seeded generators so every
//! experiment is bit-reproducible. `rand 0.8` does not ship a Gaussian
//! distribution without `rand_distr`, so a Box–Muller sampler lives here.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::complex::Complex64;

/// Creates a deterministic [`StdRng`] from a 64-bit seed.
///
/// ```
/// use dsp::rng::seeded;
/// use rand::RngCore;
/// assert_eq!(seeded(7).next_u64(), seeded(7).next_u64());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give independent, reproducible streams to parallel Monte-Carlo
/// workers (SplitMix64 finalizer — good avalanche, cheap).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a circularly-symmetric complex Gaussian with total variance
/// `variance` (i.e. `variance/2` per real dimension).
///
/// This is the additive-noise primitive of every channel model.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> Complex64 {
    let sigma = (variance / 2.0).sqrt();
    Complex64::new(sigma * standard_normal(rng), sigma * standard_normal(rng))
}

/// Fills a vector with `n` iid complex Gaussian samples of total variance
/// `variance`.
pub fn complex_gaussian_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, variance: f64) -> Vec<Complex64> {
    (0..n).map(|_| complex_gaussian(rng, variance)).collect()
}

/// Generates `n` uniformly random bits.
pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> Vec<u8> {
    (0..n).map(|_| (rng.next_u32() & 1) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = seeded(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s: Vec<u64> = (0..16).map(|i| derive_seed(1, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "stream seeds must be distinct");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn complex_gaussian_variance_split() {
        let mut rng = seeded(11);
        let n = 100_000;
        let v = 4.0;
        let samples = complex_gaussian_vec(&mut rng, n, v);
        let energy = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((energy - v).abs() < 0.1, "energy {energy}");
        let re_var = samples.iter().map(|z| z.re * z.re).sum::<f64>() / n as f64;
        assert!((re_var - v / 2.0).abs() < 0.1, "re variance {re_var}");
    }

    #[test]
    fn random_bits_are_binary_and_balanced() {
        let mut rng = seeded(3);
        let bits = random_bits(&mut rng, 20_000);
        assert!(bits.iter().all(|&b| b <= 1));
        let ones = bits.iter().map(|&b| b as usize).sum::<usize>();
        let frac = ones as f64 / bits.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }
}
