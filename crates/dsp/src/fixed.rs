//! Fixed-point quantization of log-likelihood ratios (LLRs).
//!
//! The paper stores soft equalizer outputs in the HARQ LLR memory after
//! quantizing each LLR to a `W`-bit word (10 bits in the baseline system,
//! 11/12 bits in the Fig. 9 bit-width study). Hardware faults flip
//! individual *bits* of these words, so the storage format matters: the
//! impact of an upset depends on the significance of the flipped bit and
//! on whether the word is stored in two's-complement or sign-magnitude
//! form. [`LlrQuantizer`] implements both codecs plus saturation, and is
//! the boundary through which the fault simulator perturbs stored soft
//! values.

use serde::{Deserialize, Serialize};

/// Binary representation of the stored LLR word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LlrFormat {
    /// Two's-complement representation (the paper's implicit baseline; the
    /// MSB is the sign bit and carries weight `-2^{W-1}`).
    #[default]
    TwosComplement,
    /// Sign-magnitude representation (bit `W-1` is a pure sign flag). Used
    /// by the ablation benchmark on storage formats.
    SignMagnitude,
}

/// Uniform mid-rise quantizer mapping real LLRs to `W`-bit codewords.
///
/// Values are clipped to `±clip` and linearly mapped to the signed integer
/// range `[-(2^{W-1}-1), 2^{W-1}-1]`; the all-ones negative extreme of
/// two's complement is left unused so both formats share the same dynamic
/// range (a common hardware choice that also keeps the codecs involutive).
///
/// # Example
///
/// ```
/// use dsp::{LlrQuantizer, LlrFormat};
///
/// let q = LlrQuantizer::new(10, 32.0, LlrFormat::TwosComplement);
/// let code = q.quantize(7.25);
/// let back = q.dequantize(code);
/// assert!((back - 7.25).abs() <= q.step());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlrQuantizer {
    bits: u8,
    clip: f64,
    format: LlrFormat,
    /// Cached `clip / max_level` — recomputing it costs a division on
    /// every quantize/dequantize, which dominates the HARQ store/load
    /// path of the link simulator.
    step: f64,
}

impl Default for LlrQuantizer {
    /// The paper's baseline: 10-bit two's-complement, clip at ±32.
    fn default() -> Self {
        Self::new(10, 32.0, LlrFormat::TwosComplement)
    }
}

impl LlrQuantizer {
    /// Creates a quantizer for `bits`-wide words clipped at `±clip`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=31` or `clip` is not positive and
    /// finite.
    pub fn new(bits: u8, clip: f64, format: LlrFormat) -> Self {
        assert!((2..=31).contains(&bits), "LLR width must be in 2..=31 bits");
        assert!(
            clip.is_finite() && clip > 0.0,
            "clip level must be positive and finite"
        );
        let max_level = (1i32 << (bits - 1)) - 1;
        Self {
            bits,
            clip,
            format,
            step: clip / max_level as f64,
        }
    }

    /// Word width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Clipping level (positive full-scale LLR).
    #[inline]
    pub fn clip(&self) -> f64 {
        self.clip
    }

    /// Storage format.
    #[inline]
    pub fn format(&self) -> LlrFormat {
        self.format
    }

    /// Largest representable signed integer level, `2^{W-1} - 1`.
    #[inline]
    pub fn max_level(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Quantization step size in LLR units.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Bit mask covering one stored word.
    #[inline]
    pub fn word_mask(&self) -> u32 {
        if self.bits == 31 {
            0x7fff_ffff
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Quantizes an LLR to a `W`-bit codeword in the configured format.
    ///
    /// Non-finite inputs saturate: `+∞ → +clip`, `-∞`/`NaN → -clip`
    /// (NaN is treated pessimistically as a strong wrong decision rather
    /// than silently becoming a mid-scale value).
    #[inline]
    pub fn quantize(&self, llr: f64) -> u32 {
        let level = self.level_of(llr);
        self.encode_level(level)
    }

    /// Reconstructs the LLR value encoded by `code`.
    ///
    /// Bits above the word width are ignored. In two's complement the
    /// unused extreme `-2^{W-1}` decodes to `-clip - step` so that every
    /// code (including fault-corrupted ones) decodes to *some* value, as
    /// hardware would.
    #[inline]
    pub fn dequantize(&self, code: u32) -> f64 {
        self.decode_level(code) as f64 * self.step()
    }

    /// Maps an LLR to its signed integer level in `[-max, max]`.
    #[inline]
    fn level_of(&self, llr: f64) -> i32 {
        let max = self.max_level() as f64;
        let x = if llr.is_nan() { -self.clip } else { llr };
        let scaled = (x / self.step()).round();
        scaled.clamp(-max, max) as i32
    }

    /// Encodes a signed level into the configured binary format.
    #[inline]
    fn encode_level(&self, level: i32) -> u32 {
        match self.format {
            LlrFormat::TwosComplement => (level as u32) & self.word_mask(),
            LlrFormat::SignMagnitude => {
                let sign = if level < 0 {
                    1u32 << (self.bits - 1)
                } else {
                    0
                };
                sign | (level.unsigned_abs() & (self.word_mask() >> 1))
            }
        }
    }

    /// Decodes a codeword (in the configured format) into a signed level.
    #[inline]
    pub fn decode_level(&self, code: u32) -> i32 {
        let code = code & self.word_mask();
        match self.format {
            LlrFormat::TwosComplement => {
                let sign_bit = 1u32 << (self.bits - 1);
                if code & sign_bit != 0 {
                    (code as i32) - (1i32 << self.bits)
                } else {
                    code as i32
                }
            }
            LlrFormat::SignMagnitude => {
                let mag = (code & (self.word_mask() >> 1)) as i32;
                if code & (1u32 << (self.bits - 1)) != 0 {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    /// Quantizes a slice of LLRs into codewords.
    pub fn quantize_all(&self, llrs: &[f64]) -> Vec<u32> {
        llrs.iter().map(|&l| self.quantize(l)).collect()
    }

    /// Dequantizes a slice of codewords into LLRs.
    pub fn dequantize_all(&self, codes: &[u32]) -> Vec<f64> {
        codes.iter().map(|&c| self.dequantize(c)).collect()
    }
}

/// Flips bit `bit` (0 = LSB) of `code`.
///
/// This is the primitive fault operation applied by the silicon layer.
///
/// ```
/// use dsp::fixed::flip_bit;
/// assert_eq!(flip_bit(0b0101, 1), 0b0111);
/// ```
#[inline]
pub fn flip_bit(code: u32, bit: u8) -> u32 {
    code ^ (1u32 << bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q10() -> LlrQuantizer {
        LlrQuantizer::default()
    }

    #[test]
    fn default_is_papers_baseline() {
        let q = q10();
        assert_eq!(q.bits(), 10);
        assert_eq!(q.format(), LlrFormat::TwosComplement);
        assert_eq!(q.max_level(), 511);
    }

    #[test]
    fn zero_maps_to_zero() {
        for fmt in [LlrFormat::TwosComplement, LlrFormat::SignMagnitude] {
            let q = LlrQuantizer::new(10, 32.0, fmt);
            assert_eq!(q.quantize(0.0), 0);
            assert_eq!(q.dequantize(0), 0.0);
        }
    }

    #[test]
    fn saturates_at_clip() {
        let q = q10();
        assert_eq!(q.quantize(1e9), q.quantize(32.0));
        assert_eq!(q.quantize(-1e9), q.quantize(-32.0));
        assert!((q.dequantize(q.quantize(1e9)) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn infinities_and_nan_saturate() {
        let q = q10();
        assert_eq!(q.quantize(f64::INFINITY), q.quantize(32.0));
        assert_eq!(q.quantize(f64::NEG_INFINITY), q.quantize(-32.0));
        assert_eq!(q.quantize(f64::NAN), q.quantize(-32.0));
    }

    #[test]
    fn msb_flip_is_catastrophic_twos_complement() {
        let q = q10();
        let code = q.quantize(2.0);
        let corrupted = flip_bit(code, 9);
        // Flipping the sign bit of a small positive LLR produces a large
        // negative value — the mechanism behind the paper's MSB sensitivity.
        assert!(q.dequantize(corrupted) < -20.0);
    }

    #[test]
    fn lsb_flip_is_benign() {
        let q = q10();
        let code = q.quantize(2.0);
        let corrupted = flip_bit(code, 0);
        assert!((q.dequantize(corrupted) - 2.0).abs() <= 2.0 * q.step());
    }

    #[test]
    fn sign_magnitude_msb_flips_sign_only() {
        let q = LlrQuantizer::new(10, 32.0, LlrFormat::SignMagnitude);
        let code = q.quantize(2.0);
        let corrupted = flip_bit(code, 9);
        assert!((q.dequantize(corrupted) + 2.0).abs() <= q.step());
    }

    #[test]
    fn negative_extreme_decodes_below_clip() {
        let q = q10();
        // 0b10_0000_0000 is the unused two's-complement extreme.
        let v = q.dequantize(0x200);
        assert!(v < -32.0);
    }

    #[test]
    #[should_panic(expected = "LLR width")]
    fn rejects_one_bit_width() {
        let _ = LlrQuantizer::new(1, 32.0, LlrFormat::TwosComplement);
    }

    #[test]
    #[should_panic(expected = "clip level")]
    fn rejects_nonpositive_clip() {
        let _ = LlrQuantizer::new(10, 0.0, LlrFormat::TwosComplement);
    }

    #[test]
    fn quantize_all_roundtrip_length() {
        let q = q10();
        let xs = vec![0.5, -1.25, 31.0, -31.0];
        let codes = q.quantize_all(&xs);
        assert_eq!(q.dequantize_all(&codes).len(), xs.len());
    }

    proptest! {
        #[test]
        fn roundtrip_error_bounded(llr in -40.0f64..40.0, bits in 4u8..14,
                                   sm in proptest::bool::ANY) {
            let fmt = if sm { LlrFormat::SignMagnitude } else { LlrFormat::TwosComplement };
            let q = LlrQuantizer::new(bits, 32.0, fmt);
            let back = q.dequantize(q.quantize(llr));
            let expect = llr.clamp(-32.0, 32.0);
            prop_assert!((back - expect).abs() <= q.step() * 0.5 + 1e-9);
        }

        #[test]
        fn quantizer_is_monotone(a in -40.0f64..40.0, b in -40.0f64..40.0) {
            let q = LlrQuantizer::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(q.decode_level(q.quantize(lo)) <= q.decode_level(q.quantize(hi)));
        }

        #[test]
        fn encode_decode_involutive(level in -511i32..=511, sm in proptest::bool::ANY) {
            let fmt = if sm { LlrFormat::SignMagnitude } else { LlrFormat::TwosComplement };
            let q = LlrQuantizer::new(10, 32.0, fmt);
            let code = q.encode_level(level);
            prop_assert_eq!(q.decode_level(code), level);
            prop_assert_eq!(code & !q.word_mask(), 0);
        }

        #[test]
        fn double_flip_restores(code in 0u32..1024, bit in 0u8..10) {
            prop_assert_eq!(flip_bit(flip_bit(code, bit), bit), code);
        }
    }
}
