//! Minimal double-precision complex number type.
//!
//! The offline dependency allowlist does not contain `num-complex`, so the
//! workspace carries its own [`Complex64`]. Only the operations needed by
//! the PHY chain are provided (arithmetic, conjugation, magnitudes, polar
//! construction).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use dsp::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// let p = a * b;
/// assert_eq!(p, Complex64::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use dsp::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12 && (z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`, cheaper than [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1 by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

/// Mean energy (`|z|²` averaged) of a slice of complex samples.
///
/// Returns `0.0` for an empty slice.
///
/// ```
/// use dsp::complex::{mean_energy};
/// use dsp::Complex64;
/// let v = [Complex64::new(1.0, 0.0), Complex64::new(0.0, 3.0)];
/// assert!((mean_energy(&v) - 5.0).abs() < 1e-12);
/// ```
pub fn mean_energy(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64
}

/// Inner product `⟨a, b⟩ = Σ aᵢ·conj(bᵢ)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn inner_product(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner_product length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y.conj()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 0.5);
        assert!(close(a * b, Complex64::new(-3.5, -2.0)));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 0.5);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn inv_of_unit() {
        assert!(close(Complex64::I.inv(), -Complex64::I));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(3.0, 0.7);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj().im, -2.0);
        assert!(close(z * z.conj(), Complex64::from_re(z.norm_sqr())));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Complex64::ONE; 4];
        let s: Complex64 = v.into_iter().sum();
        assert!(close(s, Complex64::from_re(4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn mean_energy_empty_is_zero() {
        assert_eq!(mean_energy(&[]), 0.0);
    }

    #[test]
    fn inner_product_orthogonal() {
        let a = [Complex64::ONE, Complex64::ONE];
        let b = [Complex64::ONE, -Complex64::ONE];
        assert!(close(inner_product(&a, &b), Complex64::ZERO));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(2.0, 0.0);
        z /= Complex64::new(2.0, 0.0);
        assert!(close(z, Complex64::new(2.0, 0.0)));
    }
}
