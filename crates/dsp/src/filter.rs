//! FIR filtering, convolution and root-raised-cosine pulse shaping.
//!
//! The HSPA+ transmitter shapes the chip stream with a root-raised-cosine
//! (RRC) pulse (roll-off 0.22 in 3GPP), and the receiver applies the
//! matched filter. This module provides the filter designer
//! ([`rrc_taps`]), a streaming FIR filter over complex samples
//! ([`FirFilter`]) and polyphase up/down-sampling helpers.

use crate::complex::Complex64;

/// A direct-form FIR filter with real taps operating on complex samples.
///
/// The filter keeps internal state so long signals can be processed in
/// chunks; [`FirFilter::reset`] clears the delay line.
///
/// # Example
///
/// ```
/// use dsp::filter::FirFilter;
/// use dsp::Complex64;
///
/// // A two-tap averager.
/// let mut f = FirFilter::new(vec![0.5, 0.5]);
/// let y = f.process(&[Complex64::ONE, Complex64::ONE]);
/// assert!((y[1].re - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<f64>,
    delay: Vec<Complex64>,
    pos: usize,
}

impl FirFilter {
    /// Creates a filter from its impulse response.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        let n = taps.len();
        Self {
            taps,
            delay: vec![Complex64::ZERO; n],
            pos: 0,
        }
    }

    /// The filter's impulse response.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples for a symmetric (linear-phase) filter.
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Clears the internal delay line.
    pub fn reset(&mut self) {
        self.delay.fill(Complex64::ZERO);
        self.pos = 0;
    }

    /// Pushes one sample and returns one filtered output sample.
    pub fn step(&mut self, x: Complex64) -> Complex64 {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        let mut acc = Complex64::ZERO;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += self.delay[idx].scale(t);
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filters a block of samples, preserving state across calls.
    pub fn process(&mut self, input: &[Complex64]) -> Vec<Complex64> {
        input.iter().map(|&x| self.step(x)).collect()
    }
}

/// Full linear convolution of a complex signal with real taps.
///
/// Output length is `signal.len() + taps.len() - 1`. Stateless counterpart
/// of [`FirFilter`] used by the channel model.
pub fn convolve(signal: &[Complex64], taps: &[f64]) -> Vec<Complex64> {
    if signal.is_empty() || taps.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Complex64::ZERO; signal.len() + taps.len() - 1];
    for (i, &s) in signal.iter().enumerate() {
        for (j, &t) in taps.iter().enumerate() {
            out[i + j] += s.scale(t);
        }
    }
    out
}

/// Full linear convolution of a complex signal with complex taps.
// alloc: cold(allocating convenience wrapper; the hot path calls convolve_complex_into)
pub fn convolve_complex(signal: &[Complex64], taps: &[Complex64]) -> Vec<Complex64> {
    let mut out = Vec::new();
    convolve_complex_into(signal, taps, &mut out);
    out
}

/// Allocation-free [`convolve_complex`]: clears `out` and fills it with
/// the full linear convolution, reusing the vector's capacity. The
/// accumulation order matches `convolve_complex` exactly, so both paths
/// are bit-identical.
pub fn convolve_complex_into(signal: &[Complex64], taps: &[Complex64], out: &mut Vec<Complex64>) {
    out.clear();
    if signal.is_empty() || taps.is_empty() {
        return;
    }
    out.resize(signal.len() + taps.len() - 1, Complex64::ZERO);
    for (i, &s) in signal.iter().enumerate() {
        for (j, &t) in taps.iter().enumerate() {
            out[i + j] += s * t;
        }
    }
}

/// Designs a root-raised-cosine pulse.
///
/// * `rolloff` — excess-bandwidth factor β (3GPP uses 0.22).
/// * `span` — filter length in symbol periods (total taps = `span·sps + 1`).
/// * `sps` — samples per symbol (oversampling factor).
///
/// The taps are normalized to unit energy so that a matched-filter pair has
/// unit gain at the optimum sampling instant.
///
/// # Panics
///
/// Panics if `rolloff` is outside `(0, 1]`, or `span`/`sps` is zero.
///
/// # Example
///
/// ```
/// use dsp::filter::rrc_taps;
/// let taps = rrc_taps(0.22, 6, 4);
/// assert_eq!(taps.len(), 25);
/// let energy: f64 = taps.iter().map(|t| t * t).sum();
/// assert!((energy - 1.0).abs() < 1e-9);
/// ```
pub fn rrc_taps(rolloff: f64, span: usize, sps: usize) -> Vec<f64> {
    assert!(rolloff > 0.0 && rolloff <= 1.0, "rolloff must be in (0, 1]");
    assert!(span > 0 && sps > 0, "span and sps must be positive");
    let n = span * sps + 1;
    let half = (n - 1) as f64 / 2.0;
    let mut taps = Vec::with_capacity(n);
    for i in 0..n {
        let t = (i as f64 - half) / sps as f64; // time in symbol periods
        taps.push(rrc_impulse(t, rolloff));
    }
    let energy: f64 = taps.iter().map(|t| t * t).sum();
    let norm = energy.sqrt();
    for t in &mut taps {
        *t /= norm;
    }
    taps
}

/// RRC impulse response value at time `t` (in symbol periods).
fn rrc_impulse(t: f64, beta: f64) -> f64 {
    use std::f64::consts::PI;
    let eps = 1e-9;
    if t.abs() < eps {
        return 1.0 - beta + 4.0 * beta / PI;
    }
    let quarter = 1.0 / (4.0 * beta);
    if (t.abs() - quarter).abs() < eps {
        let a = (PI / (4.0 * beta)).sin() * (1.0 + 2.0 / PI);
        let b = (PI / (4.0 * beta)).cos() * (1.0 - 2.0 / PI);
        return beta / std::f64::consts::SQRT_2 * (a + b);
    }
    let num = (PI * t * (1.0 - beta)).sin() + 4.0 * beta * t * (PI * t * (1.0 + beta)).cos();
    let den = PI * t * (1.0 - (4.0 * beta * t) * (4.0 * beta * t));
    num / den
}

/// Inserts `factor - 1` zeros between consecutive samples (zero-stuffing).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn upsample(signal: &[Complex64], factor: usize) -> Vec<Complex64> {
    assert!(factor > 0, "upsampling factor must be positive");
    let mut out = vec![Complex64::ZERO; signal.len() * factor];
    for (i, &s) in signal.iter().enumerate() {
        out[i * factor] = s;
    }
    out
}

/// Keeps every `factor`-th sample starting at `offset`.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn downsample(signal: &[Complex64], factor: usize, offset: usize) -> Vec<Complex64> {
    assert!(factor > 0, "downsampling factor must be positive");
    signal
        .iter()
        .skip(offset)
        .step_by(factor)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fir_impulse_response_is_taps() {
        let taps = vec![1.0, -2.0, 3.0];
        let mut f = FirFilter::new(taps.clone());
        let mut input = vec![Complex64::ZERO; 3];
        input[0] = Complex64::ONE;
        let y = f.process(&input);
        for (yi, ti) in y.iter().zip(&taps) {
            assert!((yi.re - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn fir_state_persists_across_blocks() {
        let taps = vec![0.25; 4];
        let mut chunked = FirFilter::new(taps.clone());
        let mut whole = FirFilter::new(taps);
        let sig: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let mut a = chunked.process(&sig[..7]);
        a.extend(chunked.process(&sig[7..]));
        let b = whole.process(&sig);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }

    #[test]
    fn fir_reset_clears_state() {
        let mut f = FirFilter::new(vec![1.0, 1.0]);
        f.step(Complex64::ONE);
        f.reset();
        let y = f.step(Complex64::ZERO);
        assert_eq!(y, Complex64::ZERO);
    }

    #[test]
    fn convolution_length_and_identity() {
        let sig = vec![Complex64::ONE, Complex64::I];
        let y = convolve(&sig, &[1.0]);
        assert_eq!(y.len(), 2);
        assert_eq!(y[1], Complex64::I);
    }

    #[test]
    fn convolve_complex_matches_real_for_real_taps() {
        let sig: Vec<Complex64> = (0..5).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let rt = [0.5, -1.5, 2.0];
        let ct: Vec<Complex64> = rt.iter().map(|&t| Complex64::from_re(t)).collect();
        let a = convolve(&sig, &rt);
        let b = convolve_complex(&sig, &ct);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }

    #[test]
    fn rrc_is_symmetric_unit_energy() {
        let taps = rrc_taps(0.22, 8, 4);
        let n = taps.len();
        for i in 0..n / 2 {
            assert!(
                (taps[i] - taps[n - 1 - i]).abs() < 1e-12,
                "tap {i} asymmetric"
            );
        }
        let e: f64 = taps.iter().map(|t| t * t).sum();
        assert!((e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matched_rrc_pair_is_nyquist() {
        // The cascade RRC*RRC (a raised cosine) must have (near-)zero ISI at
        // symbol-spaced offsets around the peak.
        let sps = 4;
        let taps = rrc_taps(0.22, 10, sps);
        let ctaps: Vec<Complex64> = taps.iter().map(|&t| Complex64::from_re(t)).collect();
        let rc = convolve_complex(&ctaps, &ctaps);
        let peak_idx = rc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().partial_cmp(&b.1.norm()).unwrap())
            .unwrap()
            .0;
        let peak = rc[peak_idx].norm();
        assert!((peak - 1.0).abs() < 1e-3);
        for k in 1..5 {
            let isi = rc[peak_idx + k * sps].norm();
            assert!(isi < 0.01 * peak, "ISI at offset {k}: {isi}");
        }
    }

    #[test]
    fn upsample_downsample_roundtrip() {
        let sig: Vec<Complex64> = (0..7).map(|i| Complex64::new(i as f64, 0.5)).collect();
        let up = upsample(&sig, 3);
        assert_eq!(up.len(), 21);
        let down = downsample(&up, 3, 0);
        assert_eq!(down, sig);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = FirFilter::new(vec![]);
    }

    proptest! {
        #[test]
        fn convolution_is_commutative_in_length(a in 1usize..8, b in 1usize..8) {
            let sig = vec![Complex64::ONE; a];
            let taps = vec![1.0; b];
            prop_assert_eq!(convolve(&sig, &taps).len(), a + b - 1);
        }

        #[test]
        fn convolution_is_linear(scale in -3.0f64..3.0) {
            let sig: Vec<Complex64> = (0..6).map(|i| Complex64::new(i as f64, -1.0)).collect();
            let scaled: Vec<Complex64> = sig.iter().map(|&s| s.scale(scale)).collect();
            let taps = [0.3, -0.7, 1.1];
            let y1 = convolve(&scaled, &taps);
            let y2: Vec<Complex64> = convolve(&sig, &taps).iter().map(|&y| y.scale(scale)).collect();
            for (x, y) in y1.iter().zip(&y2) {
                prop_assert!((*x - *y).norm() < 1e-9);
            }
        }
    }
}
