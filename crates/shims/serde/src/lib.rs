//! Offline stand-in for `serde`.
//!
//! The workspace annotates its result types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for a real
//! serializer, but nothing in-tree performs serialization yet (reports
//! are plain text and the bench JSON is hand-formatted). This shim keeps
//! those annotations compiling without registry access: the derive
//! macros expand to nothing and the traits are satisfied by blanket
//! impls.
//!
//! Swapping in the real `serde` later is a one-line Cargo.toml change —
//! no source edits needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
