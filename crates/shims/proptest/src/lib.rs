//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range strategies over the numeric
//! primitives, [`collection::vec`], and the `prop_assert!` family.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! regression files: each test runs a fixed number of cases with inputs
//! drawn from a generator seeded by the test name and case index, so
//! failures are exactly reproducible from the printed case number.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod collection;

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use crate::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rand::Rng::gen::<::core::primitive::bool>(rng)
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 32 keeps the single-core CI
        // budget sane while still exercising the input space.
        Self { cases: 32 }
    }
}

/// Failure raised by the `prop_assert!` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator from the test name and case index so each case
    /// is reproducible without any persisted state.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest);
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Runs one property test: `cases` samples of `args`, failing fast with
/// the case number on the first violated assertion.
///
/// This is the engine behind [`proptest!`]; not part of the public
/// proptest API but harmless to expose.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case_fn: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case as u64);
        if let Err(e) = case_fn(&mut rng) {
            panic!("proptest {test_name}, case {case}/{}: {e}", config.cases);
        }
    }
}

/// Declares property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.25f64..0.75, z in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..2, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 2));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::{Strategy, TestRng};
        let s = 0u64..1000;
        let a: Vec<u64> = (0..8)
            .map(|c| s.sample(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| s.sample(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_report_case() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
