//! Collection strategies (mirrors `proptest::collection`).

use crate::{Strategy, TestRng};

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// Generates vectors with lengths drawn from `len` and elements from
/// `elem`.
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rand::Rng::gen_range(rng, self.len.clone());
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}
