//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer: per benchmark it calibrates a batch size, runs
//! `sample_size` timed batches and prints the median ns/iteration. No
//! statistical analysis, plots or baselines, but good enough to rank
//! kernels and catch order-of-magnitude regressions offline.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), self.sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`, storing the median ns/iteration over the configured
    /// samples. Batch size is auto-calibrated so one batch takes ≈2 ms.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let batch = (2_000_000 / once).clamp(1, 1_000_000) as usize;

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        ns_per_iter: None,
    };
    f(&mut b);
    match b.ns_per_iter {
        Some(ns) if ns >= 1e6 => println!("bench {label:<40} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {label:<40} {:>12.3} us/iter", ns / 1e3),
        Some(ns) => println!("bench {label:<40} {ns:>12.1} ns/iter"),
        None => println!("bench {label:<40} (no iter call)"),
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        quick(&mut c);
        c.bench_function("top", |b| b.iter(|| black_box(2)));
    }
}
