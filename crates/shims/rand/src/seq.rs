//! Slice helpers (mirrors `rand::seq`).

use crate::{Rng, RngCore};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
