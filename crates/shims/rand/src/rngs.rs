//! Seedable generators (mirrors `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small, fast and statistically solid for Monte-Carlo use. Seeded via a
/// SplitMix64 expansion of the 64-bit seed, as the xoshiro authors
/// recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}
