//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the (small) slice of the `rand 0.8` API the simulator
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, [`rngs::StdRng`] and
//! [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator of the real crate, so *absolute* random streams
//! differ from upstream `rand`, but every consumer in this workspace only
//! relies on seeded determinism, which this implementation guarantees:
//! the same seed always produces the same stream, on every platform.

pub mod rngs;
pub mod seq;

/// Core random-number generation interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stands in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (stands in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(0u8..=5);
            assert!(w <= 5);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_mean() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
