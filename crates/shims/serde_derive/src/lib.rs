//! No-op derive macros backing the offline `serde` shim.
//!
//! `#[derive(Serialize, Deserialize)]` must parse even though nothing in
//! the workspace serializes yet; these derives simply expand to nothing.
//! The blanket impls in the `serde` shim satisfy any trait bounds.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` shim's blanket impl covers the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` shim's blanket impl covers the trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
