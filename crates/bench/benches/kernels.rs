//! Criterion benchmarks of the computational kernels.
//!
//! These are the inner loops every figure regeneration spends its time
//! in: turbo encoding/decoding, the 3GPP interleaver construction, MMSE
//! design, soft demapping, faulty-memory reads and the yield evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsp::rng::{complex_gaussian_vec, random_bits, seeded};
use dsp::LlrQuantizer;
use hspa_phy::channel::{ChannelModel, MultipathChannel};
use hspa_phy::equalizer::MmseEqualizer;
use hspa_phy::modulation::Modulation;
use hspa_phy::turbo::{
    AccuracyTier, DecodeResult, DecoderConfig, TurboBatchScratch, TurboCode, TurboInterleaver,
    TurboScratch,
};
use silicon::fault_map::{FaultKind, FaultMap};
use silicon::yield_model::yield_accepting;

fn bench_turbo(c: &mut Criterion) {
    let mut group = c.benchmark_group("turbo");
    for &k in &[320usize, 624, 1280] {
        let code = TurboCode::new(k).unwrap();
        let mut rng = seeded(k as u64);
        let bits = random_bits(&mut rng, k);
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        group.bench_with_input(BenchmarkId::new("encode", k), &k, |b, _| {
            b.iter(|| black_box(code.encode(black_box(&bits))));
        });
        group.bench_with_input(BenchmarkId::new("decode6it", k), &k, |b, _| {
            b.iter(|| black_box(code.decode(black_box(&llrs), 6)));
        });
        group.bench_with_input(BenchmarkId::new("interleaver_build", k), &k, |b, _| {
            b.iter(|| black_box(TurboInterleaver::new(black_box(k)).unwrap()));
        });
    }
    group.finish();
}

/// Scalar vs lockstep SISO: the same decode work fed through the serial
/// `decode_into` path and through `TurboBatchScratch` at 1, 4 and 8
/// lanes. Per-iteration work is held constant — a batched iteration
/// decodes `lanes` codewords — so `time / lanes` is the per-codeword
/// cost and the lockstep speedup reads directly off the report.
fn bench_siso_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("siso");
    let k = 624usize;
    let code = TurboCode::new(k).unwrap();
    let mut rng = seeded(k as u64);
    // Noisy enough that the decoder runs all 6 iterations instead of
    // stopping at the first agreement — benches the full sweep cost.
    let lane_llrs: Vec<Vec<f64>> = (0..8)
        .map(|_| {
            let bits = random_bits(&mut rng, k);
            code.encode(&bits)
                .iter()
                .map(|&b| {
                    let x = 1.0 - 2.0 * b as f64;
                    0.8 * (x + 1.4 * dsp::rng::standard_normal(&mut rng))
                })
                .collect()
        })
        .collect();

    let mut scratch = TurboScratch::new();
    let mut out = DecodeResult::new();
    group.bench_function("scalar_decode6it_624", |b| {
        b.iter(|| {
            code.decode_into(black_box(&lane_llrs[0]), 6, &mut scratch, &mut out);
            black_box(out.iterations_run)
        });
    });

    let mut batch = TurboBatchScratch::new();
    for tier in [AccuracyTier::Exact, AccuracyTier::Fast32] {
        for &lanes in &[1usize, 4, 8] {
            let id = BenchmarkId::new(format!("lockstep_{tier}_decode6it_624"), lanes);
            group.bench_with_input(id, &lanes, |b, &lanes| {
                b.iter(|| {
                    batch.begin_batch(code.coded_len());
                    for llrs in &lane_llrs[..lanes] {
                        batch.push_lane(black_box(llrs));
                    }
                    code.decode_batch(DecoderConfig::new(6, tier), &mut batch, None);
                    black_box(batch.iterations_run(lanes - 1))
                });
            });
        }
    }
    group.finish();
}

fn bench_equalizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("equalizer");
    let ch = MultipathChannel::vehicular_a_chip_rate();
    let mut rng = seeded(1);
    let real = ch.realize(15.0, &mut rng);
    let rx = complex_gaussian_vec(&mut rng, 512, 1.0);
    for &taps in &[15usize, 31] {
        group.bench_with_input(BenchmarkId::new("mmse_design", taps), &taps, |b, &t| {
            b.iter(|| black_box(MmseEqualizer::design(black_box(&real), t).unwrap()));
        });
        let eq = MmseEqualizer::design(&real, taps).unwrap();
        group.bench_with_input(BenchmarkId::new("mmse_apply_512", taps), &taps, |b, _| {
            b.iter(|| black_box(eq.equalize(black_box(&rx))));
        });
    }
    group.finish();
}

fn bench_demapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("demapper");
    let mut rng = seeded(2);
    for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        let bits = random_bits(&mut rng, m.bits_per_symbol() * 512);
        let symbols = m.modulate(&bits);
        group.bench_with_input(
            BenchmarkId::new("soft_512sym", m.to_string()),
            &m,
            |b, &m| {
                b.iter(|| black_box(m.demodulate_soft(black_box(&symbols), 0.1)));
            },
        );
    }
    group.finish();
}

fn bench_silicon(c: &mut Criterion) {
    let mut group = c.benchmark_group("silicon");
    let map = FaultMap::random_exact(1884, 10, 1884, FaultKind::Flip, 3);
    let q = LlrQuantizer::default();
    group.bench_function("faulty_read_1884w", |b| {
        let mut mem = silicon::FaultyMemory::new(map.clone());
        for a in 0..1884u32 {
            mem.write(a, q.quantize(a as f64 * 0.01 - 9.0));
        }
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0..1884u32 {
                acc ^= mem.read(a);
            }
            black_box(acc)
        });
    });
    group.bench_function("fault_map_draw_10pct", |b| {
        b.iter(|| {
            black_box(FaultMap::random_exact(
                1884,
                10,
                1884,
                FaultKind::Flip,
                black_box(7),
            ))
        });
    });
    group.bench_function("yield_200kb_mean", |b| {
        b.iter(|| black_box(yield_accepting(200 * 1024, 1e-4, black_box(40))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_turbo, bench_siso_batch, bench_equalizer, bench_demapper, bench_silicon
}
criterion_main!(benches);
