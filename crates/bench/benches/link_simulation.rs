//! Benchmark of the end-to-end link simulation and the Monte-Carlo
//! engine — the unit of work behind every figure of the paper.
//!
//! Parts:
//!
//! 1. Per-packet wall-clock of `simulate_packet_with` across storage
//!    backends and SNRs (the kernel every Monte-Carlo point repeats) —
//!    with a per-stage breakdown (stage timing is always on; see
//!    `resilience_core::telemetry`).
//! 2. Engine throughput (packets/sec) over a realistic operating grid:
//!    the scalar batch-1 path (comparable to pre-batching baselines),
//!    the default lockstep wave (`SimulationEngine::DEFAULT_BATCH`
//!    lanes) for each accuracy tier, and
//!    `max(2, available CPUs)` workers — all written to
//!    `BENCH_engine.json` so future changes have a machine-readable
//!    perf trajectory (the parallel leg always runs with at least two
//!    workers so thread scaling is actually exercised; the recorded
//!    `host_cpus` says how much hardware backed it).
//! 3. Campaign adaptivity on the fig6a (defect × SNR) grid: how many
//!    packets the Wilson-CI controller needs versus the fixed budget at
//!    the default precision target (also recorded in the JSON).
//! 4. `--target-ci` budget sizing on the same grid: packets needed to
//!    reach a requested **absolute** Wilson half-width versus the
//!    worst-case fixed sizing `z²/4w²` classical planning would use.
//! 5. Result-store open cost at scale: a 10k-point synthetic store,
//!    JSONL full parse versus indexed segment open + one lookup. The
//!    nightly workflow gates the recorded speedup at >= 10x.
//!
//! Run with `cargo bench --bench link_simulation`. The JSON lands in
//! `crates/bench/BENCH_engine.json` (the committed perf trajectory; the
//! nightly CI workflow uploads it as an artifact and fails on a >25%
//! serial-throughput regression against the committed file).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use hspa_phy::harq::HarqStats;
use hspa_phy::turbo::AccuracyTier;
use resilience_core::campaign::controller::WILSON_Z;
use resilience_core::campaign::store::{self, ChunkId};
use resilience_core::campaign::{Campaign, CampaignSettings, ManifestTotals, ResultStore};
use resilience_core::config::SystemConfig;
use resilience_core::engine::SimulationEngine;
use resilience_core::experiments::{fig6, snr_grid};
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{LinkSimulator, PacketScratch};

/// One engine measurement for the JSON report.
struct EngineSample {
    threads: usize,
    packets: usize,
    seconds: f64,
}

impl EngineSample {
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.seconds.max(1e-12)
    }
}

fn bench_single_packet() {
    println!("--- per-packet kernel (median of repeated packets)");
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = [
        ("ideal", StorageConfig::Perfect),
        (
            "faulty10pct",
            StorageConfig::unprotected(0.10, cfg.llr_bits),
        ),
        (
            "hybrid4msb",
            StorageConfig::msb_protected(4, 0.10, cfg.llr_bits),
        ),
    ];
    for (name, storage) in &storages {
        for &snr in &[9.0f64, 18.0] {
            let mut buffer = build_buffer(&cfg, storage, 1);
            let mut rng = dsp::rng::seeded(2);
            let mut scratch = PacketScratch::new();
            // Warm up allocations and fault-map caches.
            for _ in 0..3 {
                black_box(sim.simulate_packet_with(snr, &mut buffer, &mut rng, &mut scratch));
            }
            scratch.reset_stage_nanos();
            let reps = 20;
            let mut samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                black_box(sim.simulate_packet_with(
                    black_box(snr),
                    &mut buffer,
                    &mut rng,
                    &mut scratch,
                ));
                samples.push(t.elapsed().as_secs_f64() * 1e6);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let us = samples[reps / 2];
            println!("bench link/{name}/{snr}dB {us:>12.1} us/packet");
            let s = scratch.stage_nanos;
            let per_stage = |ns: u64| ns as f64 / 1000.0 / reps as f64;
            println!(
                "      stages (us/packet): encode {:.1} | modulate {:.1} | channel {:.1} | equalize {:.1} | demap {:.1} | harq {:.1} | decode {:.1}",
                per_stage(s.encode),
                per_stage(s.modulate),
                per_stage(s.channel),
                per_stage(s.equalize),
                per_stage(s.demap),
                per_stage(s.harq),
                per_stage(s.decode),
            );
        }
    }
}

fn measure_engine(
    threads: usize,
    batch: usize,
    tier: AccuracyTier,
    packets_per_point: usize,
) -> EngineSample {
    let cfg = SystemConfig::paper_64qam().with_tier(tier);
    let sim = LinkSimulator::new(cfg);
    let engine = SimulationEngine::with_threads(threads).batch_lanes(batch);
    let storages = [
        StorageConfig::Quantized,
        StorageConfig::unprotected(0.10, cfg.llr_bits),
        StorageConfig::msb_protected(4, 0.10, cfg.llr_bits),
    ];
    let snrs = [9.0, 13.0, 18.0];
    let t = Instant::now();
    let grid = engine.run_grid(&sim, &storages, &snrs, packets_per_point, 0xbe_c41);
    let seconds = t.elapsed().as_secs_f64();
    let packets: u64 = grid.stats.iter().flatten().map(|s| s.packets).sum();
    EngineSample {
        threads: engine.threads(),
        packets: packets as usize,
        seconds,
    }
}

/// Runs the fig6a grid through an adaptive campaign at the default
/// precision target and reports the controller's packet saving versus
/// the fixed `max_packets`-per-point budget.
fn measure_campaign(max_packets: usize) -> (ManifestTotals, f64) {
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = fig6::storages(&fig6::DEFECT_FRACTIONS, cfg.llr_bits);
    // A scratch store: this measures simulation, not disk replay.
    let dir = std::env::temp_dir().join(format!("bench-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(
        "bench-fig6a",
        CampaignSettings::default(),
        SimulationEngine::auto(),
    )
    .with_store_dir(&dir);
    let t = Instant::now();
    let _ = campaign.run_grid(&sim, &storages, &snr_grid(), max_packets, 0xbe_c41);
    let seconds = t.elapsed().as_secs_f64();
    let totals = campaign.manifest().totals();
    let _ = std::fs::remove_dir_all(&dir);
    (totals, seconds)
}

/// Runs the fig6a grid in `--target-ci` mode: every point must reach an
/// absolute Wilson half-width of `width`. Returns the totals plus the
/// per-point packet count classical worst-case planning (`z²/4w²`,
/// variance maximized at p = 0.5) would have fixed for the same
/// guarantee — the budget the adaptive sizing is measured against.
fn measure_target_ci(width: f64) -> (ManifestTotals, usize, f64) {
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = fig6::storages(&fig6::DEFECT_FRACTIONS, cfg.llr_bits);
    let n_worst_case = (WILSON_Z * WILSON_Z * 0.25 / (width * width)).ceil() as usize;
    let dir = std::env::temp_dir().join(format!("bench-target-ci-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = Campaign::new(
        "bench-fig6a-target-ci",
        CampaignSettings {
            target_ci: width,
            ..CampaignSettings::default()
        },
        SimulationEngine::auto(),
    )
    .with_store_dir(&dir);
    let t = Instant::now();
    let _ = campaign.run_grid(&sim, &storages, &snr_grid(), n_worst_case, 0xbe_c41);
    let seconds = t.elapsed().as_secs_f64();
    let totals = campaign.manifest().totals();
    let _ = std::fs::remove_dir_all(&dir);
    (totals, n_worst_case, seconds)
}

/// Times cold-opening a `points`-record store on both backends: the
/// JSONL backend must parse every line before it can answer anything,
/// while the segment backend reads its index sidecar and seeks to the
/// one requested frame. Returns the median (jsonl, indexed) seconds.
fn measure_store_open(points: usize) -> (f64, f64) {
    let dir = std::env::temp_dir().join(format!("bench-store-open-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let records: Vec<(ChunkId, HarqStats)> = (0..points)
        .map(|i| {
            let id = ChunkId {
                point: i as u64,
                first_packet: 0,
                n_packets: 8,
            };
            let stats = HarqStats {
                packets: 8,
                delivered: 7,
                transmissions: 12,
                failures_at: vec![3, 1, 1, 1],
                info_bits: 8 * 5114,
            };
            (id, stats)
        })
        .collect();
    let jsonl = dir.join("bench-store.jsonl");
    let seg = dir.join("bench-store.seg");
    store::write_records(&jsonl, &records).expect("write jsonl store");
    store::write_records(&seg, &records).expect("write segment store");
    let probe = records[points / 2].0;

    // Median of repeated opens. The page cache is warm either way, so
    // what's compared is parse work versus index work — the term that
    // actually scales with store size.
    let reps = 9;
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let mut jsonl_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let (loaded, torn) = store::load_all(&jsonl).expect("parse jsonl store");
        jsonl_samples.push(t.elapsed().as_secs_f64());
        assert_eq!((loaded.len(), torn), (points, 0));
        black_box(loaded);
    }
    let mut seg_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let mut opened = ResultStore::open(&seg, true).expect("open segment store");
        let hit = opened.fetch(probe);
        seg_samples.push(t.elapsed().as_secs_f64());
        assert_eq!(opened.len(), points);
        black_box(hit.expect("probe key present"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    (median(jsonl_samples), median(seg_samples))
}

fn main() {
    bench_single_packet();

    println!("--- engine scaling (grid: 3 storages x 3 SNRs)");
    // 40 packets/point so the measurement amortizes simulator/buffer
    // construction; the historical default of 12 understated throughput.
    let packets_per_point = std::env::args()
        .skip_while(|a| a != "--packets")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Always run the parallel leg with at least two workers: on a
    // single-CPU host `available_parallelism() == 1` would silently
    // measure the serial path twice (the committed baseline once
    // recorded exactly that as "parallel": {"threads": 1}).
    let parallel_threads = host_cpus.max(2);
    let batch = resilience_core::engine::SimulationEngine::DEFAULT_BATCH;
    // `serial` stays the scalar (batch = 1) Exact path — directly
    // comparable to the committed baselines from before lockstep
    // batching existed. `batched_serial` is the engine's actual default
    // configuration and carries its own regression gate in nightly CI.
    let serial = measure_engine(1, 1, AccuracyTier::Exact, packets_per_point);
    // Same run, back to back with `serial`: the telemetry tier is only
    // meaningful as a ratio against a baseline measured on the same
    // host seconds earlier. Metric *recording* is always on; the flag
    // additionally enables the exposition surfaces, so this measures
    // the full telemetry-on configuration. Nightly CI gates the ratio
    // at >= 0.99 (telemetry must cost < 1%).
    resilience_core::telemetry::set_enabled(true);
    let serial_telemetry = measure_engine(1, 1, AccuracyTier::Exact, packets_per_point);
    resilience_core::telemetry::set_enabled(false);
    let batched_serial = measure_engine(1, batch, AccuracyTier::Exact, packets_per_point);
    let batched_earlystop = measure_engine(1, batch, AccuracyTier::EarlyStop, packets_per_point);
    let batched_fast32 = measure_engine(1, batch, AccuracyTier::Fast32, packets_per_point);
    let parallel = measure_engine(
        parallel_threads,
        batch,
        AccuracyTier::Exact,
        packets_per_point,
    );
    let batch_speedup = batched_serial.packets_per_sec() / serial.packets_per_sec();
    let speedup = parallel.packets_per_sec() / serial.packets_per_sec();
    let telemetry_ratio = serial_telemetry.packets_per_sec() / serial.packets_per_sec();
    for (label, s) in [
        ("scalar", &serial),
        ("scalar-telemetry", &serial_telemetry),
        ("batched", &batched_serial),
        ("batched-earlystop", &batched_earlystop),
        ("batched-fast32", &batched_fast32),
        ("parallel", &parallel),
    ] {
        println!(
            "bench engine/{label}/threads={} {:>10.1} packets/sec ({} packets in {:.2}s)",
            s.threads,
            s.packets_per_sec(),
            s.packets,
            s.seconds
        );
    }
    println!(
        "telemetry-on serial throughput: {:.1}% of telemetry-off (same run)",
        telemetry_ratio * 100.0
    );
    println!("lockstep speedup at {batch} lanes, 1 thread: {batch_speedup:.2}x");
    println!(
        "engine speedup at {} threads ({host_cpus} host CPUs): {speedup:.2}x",
        parallel.threads
    );

    println!("--- campaign adaptivity (fig6a grid, default precision)");
    let campaign_max = 60;
    let (totals, campaign_secs) = measure_campaign(campaign_max);
    println!(
        "bench campaign/fig6a {} of {} budgeted packets ({:.1}% saved, {}/{} points converged, {:.2}s)",
        totals.realized_packets,
        totals.budget_packets,
        totals.saved_vs_fixed() * 100.0,
        totals.points_converged,
        totals.points_total,
        campaign_secs
    );

    println!("--- target-ci budget sizing (fig6a grid, absolute half-width)");
    let target_width = 0.08;
    let (ci_totals, n_worst_case, ci_secs) = measure_target_ci(target_width);
    println!(
        "bench target-ci/fig6a w={target_width}: {} packets vs {} worst-case fixed ({:.1}% saved, {}/{} points reached the width, {:.2}s)",
        ci_totals.realized_packets,
        ci_totals.budget_packets,
        ci_totals.saved_vs_fixed() * 100.0,
        ci_totals.points_converged,
        ci_totals.points_total,
        ci_secs
    );

    println!("--- result-store open cost (10k-point synthetic store)");
    let store_points = 10_000;
    let (jsonl_open, seg_open) = measure_store_open(store_points);
    let store_speedup = jsonl_open / seg_open.max(1e-12);
    println!(
        "bench store-open/{store_points}pts jsonl full parse {:.2} ms | indexed open+lookup {:.3} ms | {store_speedup:.1}x",
        jsonl_open * 1e3,
        seg_open * 1e3
    );

    // Machine-readable trajectory for future PRs. Hand-formatted JSON:
    // the offline serde shim intentionally has no serializer.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine_grid\",");
    let _ = writeln!(json, "  \"packets_per_point\": {packets_per_point},");
    let _ = writeln!(json, "  \"grid_points\": 9,");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"batch_lanes\": {batch},");
    let _ = writeln!(
        json,
        "  \"serial\": {{\"threads\": 1, \"packets_per_sec\": {:.2}}},",
        serial.packets_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"serial_telemetry\": {{\"threads\": 1, \"packets_per_sec\": {:.2}, \"ratio_vs_serial\": {telemetry_ratio:.4}}},",
        serial_telemetry.packets_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"batched_serial\": {{\"threads\": 1, \"batch\": {batch}, \"packets_per_sec\": {:.2}}},",
        batched_serial.packets_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"batched_earlystop\": {{\"threads\": 1, \"batch\": {batch}, \"packets_per_sec\": {:.2}}},",
        batched_earlystop.packets_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"batched_fast32\": {{\"threads\": 1, \"batch\": {batch}, \"packets_per_sec\": {:.2}}},",
        batched_fast32.packets_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"parallel\": {{\"threads\": {}, \"batch\": {batch}, \"packets_per_sec\": {:.2}}},",
        parallel.threads,
        parallel.packets_per_sec()
    );
    let _ = writeln!(json, "  \"batch_speedup\": {batch_speedup:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"campaign_fig6a\": {{\"max_packets\": {campaign_max}, \"grid_points\": {}, \"packets_fixed\": {}, \"packets_adaptive\": {}, \"saved_fraction\": {:.4}, \"points_converged\": {}}},",
        totals.points_total,
        totals.budget_packets,
        totals.realized_packets,
        totals.saved_vs_fixed(),
        totals.points_converged
    );
    let _ = writeln!(
        json,
        "  \"campaign_target_ci\": {{\"half_width\": {target_width}, \"worst_case_per_point\": {n_worst_case}, \"grid_points\": {}, \"packets_fixed\": {}, \"packets_adaptive\": {}, \"saved_fraction\": {:.4}, \"points_reached_width\": {}}},",
        ci_totals.points_total,
        ci_totals.budget_packets,
        ci_totals.realized_packets,
        ci_totals.saved_vs_fixed(),
        ci_totals.points_converged
    );
    let _ = writeln!(
        json,
        "  \"store_open_10k\": {{\"points\": {store_points}, \"jsonl_parse_ms\": {:.3}, \"indexed_open_ms\": {:.4}, \"speedup\": {store_speedup:.1}}}",
        jsonl_open * 1e3,
        seg_open * 1e3
    );
    json.push('}');
    // Write next to the committed trajectory file (not the invocation
    // cwd), so `cargo bench` from any directory updates the same JSON
    // the nightly workflow uploads.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_engine.json");
    std::fs::write(out, &json).expect("write BENCH_engine.json");
    println!("wrote {out}");

    // Prometheus snapshot of everything the bench run recorded — the
    // nightly workflow uploads this as an artifact so a regression can
    // be diagnosed from stage counters without a re-run. Not committed.
    let prom = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_telemetry.prom");
    std::fs::write(
        prom,
        resilience_core::telemetry::snapshot().render_prometheus(),
    )
    .expect("write BENCH_telemetry.prom");
    println!("wrote {prom}");
}
