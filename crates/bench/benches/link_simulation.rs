//! Criterion benchmark of the end-to-end link simulation — the unit of
//! work behind every Monte-Carlo point of Figs. 2/6/7/8/9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::LinkSimulator;

fn bench_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("link");
    group.sample_size(10);
    let cfg = SystemConfig::paper_64qam();
    let sim = LinkSimulator::new(cfg);
    let storages = [
        ("ideal", StorageConfig::Perfect),
        ("faulty10pct", StorageConfig::unprotected(0.10, cfg.llr_bits)),
        ("hybrid4msb", StorageConfig::msb_protected(4, 0.10, cfg.llr_bits)),
    ];
    for (name, storage) in &storages {
        for &snr in &[9.0f64, 18.0] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{snr}dB")),
                &snr,
                |b, &snr| {
                    let mut buffer = build_buffer(&cfg, storage, 1);
                    let mut rng = dsp::rng::seeded(2);
                    b.iter(|| {
                        black_box(sim.simulate_packet(black_box(snr), &mut buffer, &mut rng))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packet);
criterion_main!(benches);
