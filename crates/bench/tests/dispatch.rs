//! End-to-end tests of the `campaign-dispatch` binary against the real
//! `fig6a` figure binary — the process-level counterpart of the mock
//! launcher tests inside `resilience_core::campaign::dispatch`:
//!
//! * a 2-leg dispatched fig6a campaign merges to a manifest
//!   **byte-identical** to a single-host run at the same settings;
//! * killing a leg mid-run and re-dispatching with `--steal` recovers
//!   to the same byte-identical manifest, resuming (never re-simulating)
//!   every chunk the killed leg had already stored;
//! * the remote-capable `--launcher` template (run through `sh -c` here,
//!   `ssh` in production) produces the same byte-identical manifest as
//!   the local launcher;
//! * a dispatch under a seeded chaos schedule (`--chaos-seed`) — leg
//!   crashes, hangs, torn appends, launch failures — still converges to
//!   the fault-free manifest, byte for byte.
//!
//! The campaign settings are deliberately small (`--packets 24`) so the
//! debug-profile binaries finish in seconds.

use std::fs;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Campaign knobs shared by every run in this file — legs, reference
/// and rescue must agree or byte-identity is vacuously broken.
const CAMPAIGN_ARGS: &[&str] = &["--precision", "0.2", "--packets", "24", "--chunk", "8"];

/// Chaos schedule for the seeded-dispatch test. The schedule is a pure
/// function of (seed, site, context, check number), so this fires the
/// same faults on every machine. Seed 20 fails shard 1's first launch
/// (dispatcher-side I/O fault), crashes shard 0's leg after its first
/// chunk round, and tears shard 1's first store append — and fires no
/// hang-type fault, so the test never has to sit out a stall timeout.
const CHAOS_SEED: &str = "20";

fn fig6a_bin() -> &'static str {
    env!("CARGO_BIN_EXE_fig6a")
}

fn dispatch_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign-dispatch")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dispatch-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a single-host fig6a campaign in `work_dir` and returns its
/// manifest path.
fn single_host_reference(work_dir: &Path) -> PathBuf {
    let status = Command::new(fig6a_bin())
        .args(CAMPAIGN_ARGS)
        .current_dir(work_dir)
        .stdout(Stdio::null())
        .status()
        .expect("fig6a runs");
    assert!(status.success(), "reference fig6a run failed");
    work_dir.join("target/campaign/fig6.manifest.json")
}

/// Runs `campaign-dispatch --legs 2` plus `extra` flags in `work_dir`;
/// returns the merged manifest path and the dispatcher's stdout.
fn dispatch_two_legs_with(work_dir: &Path, extra: &[&str]) -> (PathBuf, String) {
    let out = Command::new(dispatch_bin())
        .args([
            "--name",
            "fig6",
            "--bin",
            fig6a_bin(),
            "--legs",
            "2",
            "--steal",
            "--quiet",
        ])
        .args(extra)
        .arg("--work-dir")
        .arg(work_dir)
        .arg("--")
        .args(CAMPAIGN_ARGS)
        .output()
        .expect("campaign-dispatch runs");
    assert!(
        out.status.success(),
        "dispatch failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    (
        work_dir.join("target/campaign/fig6.manifest.json"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// [`dispatch_two_legs_with`] with no extra flags.
fn dispatch_two_legs(work_dir: &Path) -> PathBuf {
    dispatch_two_legs_with(work_dir, &[]).0
}

/// The complete (parseable) store lines of a `.jsonl` file.
fn store_lines(path: &Path) -> Vec<String> {
    let mut text = String::new();
    fs::File::open(path)
        .unwrap_or_else(|e| panic!("open {}: {e}", path.display()))
        .read_to_string(&mut text)
        .unwrap();
    text.lines()
        .filter(|l| l.ends_with('}'))
        .map(str::to_string)
        .collect()
}

#[test]
fn dispatched_campaign_is_byte_identical_to_single_host() {
    let ref_dir = temp_dir("plain-ref");
    let work_dir = temp_dir("plain-work");

    let reference = single_host_reference(&ref_dir);
    let merged = dispatch_two_legs(&work_dir);

    assert_eq!(
        fs::read(&merged).unwrap(),
        fs::read(&reference).unwrap(),
        "merged manifest must be byte-identical to the single-host run"
    );
    // The merged store holds the identical chunk set (single-host order
    // is execution order, merged order is canonical — compare sorted).
    let mut merged_store = store_lines(&work_dir.join("target/campaign/fig6.jsonl"));
    let mut ref_store = store_lines(&ref_dir.join("target/campaign/fig6.jsonl"));
    merged_store.sort();
    ref_store.sort();
    assert_eq!(merged_store, ref_store);

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&work_dir);
}

#[test]
fn command_launcher_dispatch_is_byte_identical_to_single_host() {
    let ref_dir = temp_dir("launcher-ref");
    let work_dir = temp_dir("launcher-work");

    // The canonical template is `ssh {host} {cmd}`; `sh -c {cmd}` is
    // the same shape minus the network. `--pull` runs per finished leg
    // (the artifact rsync hook in production) — `true` proves the hook
    // path without moving files.
    let (merged, _) =
        dispatch_two_legs_with(&work_dir, &["--launcher", "sh -c {cmd}", "--pull", "true"]);
    let reference = single_host_reference(&ref_dir);

    assert_eq!(
        fs::read(&merged).unwrap(),
        fs::read(&reference).unwrap(),
        "command-launcher merged manifest must be byte-identical to single-host"
    );

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&work_dir);
}

#[test]
fn chaos_seeded_dispatch_converges_to_the_fault_free_manifest() {
    let ref_dir = temp_dir("chaos-ref");
    let work_dir = temp_dir("chaos-work");

    // The seed is chosen so the deterministic schedule actually bites
    // (at least one leg fails and is rescued); retries run clean, so
    // with the default 3-attempt cap no shard can be abandoned and the
    // dispatch must succeed. `--telemetry` gives the legs heartbeats
    // for the stall monitor; the timeout is generous because a healthy
    // debug-build leg goes several seconds between heartbeat writes.
    let (merged, stdout) = dispatch_two_legs_with(
        &work_dir,
        &[
            "--chaos-seed",
            CHAOS_SEED,
            "--telemetry",
            "--stall-timeout",
            "30",
            "--backoff",
            "10:2:100",
        ],
    );
    let reference = single_host_reference(&ref_dir);

    assert_eq!(
        fs::read(&merged).unwrap(),
        fs::read(&reference).unwrap(),
        "chaos-schedule merged manifest must be byte-identical to fault-free\n\
         dispatcher stdout:\n{stdout}"
    );
    assert!(
        !stdout.contains(", 0 rescued,") || stdout.contains("re-split"),
        "seed {CHAOS_SEED} fired no failure at all — pick a livelier seed:\n{stdout}"
    );

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&work_dir);
}

#[test]
fn killed_leg_recovers_via_steal_without_resimulating() {
    let ref_dir = temp_dir("kill-ref");
    let work_dir = temp_dir("kill-work");
    let shard0_store = work_dir.join("target/campaign/fig6.shard-0-of-2.jsonl");

    // Start leg 0 by hand and kill it as soon as it has stored at least
    // one chunk — a mid-run operator incident.
    let mut leg = Command::new(fig6a_bin())
        .args(CAMPAIGN_ARGS)
        .args(["--shard", "0/2"])
        .current_dir(&work_dir)
        .stdout(Stdio::null())
        .spawn()
        .expect("leg 0 starts");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if fs::metadata(&shard0_store)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            break;
        }
        if leg.try_wait().expect("poll leg").is_some() || Instant::now() > deadline {
            break; // fast machine finished the leg — steal degenerates to resume
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = leg.kill();
    let _ = leg.wait();
    let pre_kill = store_lines(&shard0_store);
    assert!(
        !pre_kill.is_empty(),
        "kill landed before any chunk was stored — nothing to steal"
    );

    // Re-dispatch with stealing: the rescue leg must resume the killed
    // leg's store, and the merge must still be byte-identical to a
    // fresh single-host run.
    let merged = dispatch_two_legs(&work_dir);
    let reference = single_host_reference(&ref_dir);
    assert_eq!(
        fs::read(&merged).unwrap(),
        fs::read(&reference).unwrap(),
        "post-steal merged manifest must be byte-identical to single-host"
    );

    // Never re-simulate: every complete pre-kill record survives in the
    // rescued shard store exactly once (a re-simulated chunk would have
    // been appended a second time), and the dispatcher reports the
    // resumed executions.
    let post = store_lines(&shard0_store);
    for line in &pre_kill {
        assert_eq!(
            post.iter().filter(|l| *l == line).count(),
            1,
            "pre-kill chunk re-simulated or lost: {line}"
        );
    }

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&work_dir);
}
