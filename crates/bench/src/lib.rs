//! Benchmark harness and figure regenerators.
//!
//! One binary per paper figure (`fig2`, `fig3`, `fig5`, `fig6a`, `fig6b`,
//! `fig7`, `fig8`, `fig9`, `power_savings`), plus Criterion benches on the
//! computational kernels and ablation studies on the design choices
//! called out in `DESIGN.md`.
//!
//! All Monte-Carlo binaries share the [`cli`] argument parser: `--packets
//! N` caps the per-point budget, `--seed S` replicates independently,
//! `--threads T` pins the engine's worker count (`0` = one per CPU;
//! thread count never changes results), and the campaign flags
//! (`--precision`, `--target-ci`, `--shard i/n`, `--manifest-json`,
//! `--resume`/`--no-resume`, `--one-shot`, …) control the adaptive
//! execution path every figure routes through by default.
//!
//! The `campaign-admin` binary administers the campaign layer's on-disk
//! state: `merge` folds `--shard i/n` runs back into single-host files,
//! `gc` prunes orphaned/stale store chunks, `verify` proves a store can
//! back its manifest, `stats` summarizes both. The `campaign-dispatch`
//! binary automates a sharded run end to end: it launches the
//! `--shard i/n` legs of a figure binary, steals work from dead or
//! stalled legs, and merges + verifies the result.

pub mod cli;

pub use cli::{
    banner, budget_from_args, dispatch_from_args, finish, print_campaign_summary, DispatchArgs,
};
