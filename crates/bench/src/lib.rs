//! Benchmark harness and figure regenerators.
//!
//! One binary per paper figure (`fig2`, `fig3`, `fig5`, `fig6a`, `fig6b`,
//! `fig7`, `fig8`, `fig9`, `power_savings`), plus Criterion benches on the
//! computational kernels and ablation studies on the design choices
//! called out in `DESIGN.md`.
//!
//! Every binary accepts an optional `--packets N` argument to trade
//! fidelity for runtime, `--seed S` for independent replications, and
//! `--threads T` to pin the Monte-Carlo engine's worker count
//! (`0` = one per CPU; the default). Thread count never changes results.

use resilience_core::experiments::ExperimentBudget;

/// Parses `--packets N`, `--seed S` and `--threads T` from command-line
/// arguments into a budget, starting from [`ExperimentBudget::full`].
///
/// Unknown arguments are ignored so binaries can add their own flags.
pub fn budget_from_args(args: &[String]) -> ExperimentBudget {
    let mut budget = ExperimentBudget::full();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--packets" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    budget.packets_per_point = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    budget.seed = v;
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    budget.threads = v;
                }
            }
            _ => {}
        }
    }
    budget
}

/// Standard banner for figure binaries.
pub fn banner(figure: &str, what: &str, budget: ExperimentBudget) -> String {
    format!(
        "=== DAC'12 reproduction — {figure}: {what}\n=== packets/point = {}, seed = {:#x}\n",
        budget.packets_per_point, budget.seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_packets_and_seed() {
        let args: Vec<String> = ["--packets", "12", "--seed", "99"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let b = budget_from_args(&args);
        assert_eq!(b.packets_per_point, 12);
        assert_eq!(b.seed, 99);
    }

    #[test]
    fn ignores_unknown_args() {
        let args: Vec<String> = ["--whatever", "--packets", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(budget_from_args(&args).packets_per_point, 3);
    }

    #[test]
    fn parses_threads() {
        let args: Vec<String> = ["--threads", "4"].iter().map(|s| s.to_string()).collect();
        assert_eq!(budget_from_args(&args).threads, 4);
        assert_eq!(budget_from_args(&[]).threads, 0, "default is auto");
    }

    #[test]
    fn banner_mentions_figure() {
        let b = ExperimentBudget::smoke();
        assert!(banner("fig6", "throughput", b).contains("fig6"));
    }
}
