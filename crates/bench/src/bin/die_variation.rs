//! Extension study: die-to-die variation under a fixed defect count —
//! validates the paper's single-fault-map worst-case methodology.

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::die_variation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("die-var", "throughput spread across dies", budget)
    );
    for frac in [0.01, 0.10] {
        let res = die_variation::run(&cfg, budget, 15.0, frac, 12);
        println!("{}", res.table());
    }
    println!("expected: modest spread (fault count, not location, dominates) -");
    println!("supporting the paper's 'bin dies by Nf' selection criterion.\n");
    bench::finish(&args, &budget, &["die-variation"]);
}
