//! Administers the campaign layer's on-disk state (result stores +
//! manifests under `target/campaign/` by default).
//!
//! ```text
//! campaign-admin merge  --name fig6 [--dir D] [--out-dir D2]
//! campaign-admin gc     --name fig6 [--dir D] [--shard i/n]
//! campaign-admin verify --name fig6 [--dir D] [--shard i/n] [--strict]
//! campaign-admin stats  --name fig6 [--dir D] [--shard i/n]
//! campaign-admin query  --name fig6 [--dir D] [--shard i/n] [--key HEX]
//!                       [--snr LO:HI] [--tier TIER] [--converged BOOL]
//! campaign-admin export --name fig6 --file OUT   [--dir D] [--shard i/n]
//! campaign-admin import --name fig6 --file IN    [--dir D] [--shard i/n]
//!                       [--store-backend jsonl|indexed]
//! campaign-admin top    --name fig6 [--dir D] [--once] [--interval SECS]
//! ```
//!
//! * `merge` — gathers every `<name>.shard-*-of-*` store/manifest pair
//!   in `--dir` (e.g. CI artifacts of parallel `--shard i/n` legs),
//!   proves they form one complete partition, and writes the unified
//!   `<name>.jsonl` + `<name>.manifest.json` into `--out-dir` (default:
//!   `--dir`). The merged manifest is byte-identical to a single-host
//!   run's — CI `cmp`s the two on every push.
//! * `gc` — rewrites the store down to the canonical chunk cover its
//!   manifest needs, dropping orphaned keys, duplicates, stale chunks
//!   from abandoned schedules and torn lines.
//! * `verify` — checks the store can reproduce every manifest point
//!   (chunks tile `0..packets` gaplessly); exits 1 on inconsistency.
//!   `--strict` additionally cross-checks each point's recorded
//!   provenance: `chunks_from_store`/`packets_from_store` must not
//!   exceed the realized totals, and a point claiming store reuse must
//!   have store chunks backing it — the audit a chaos run ends with.
//! * `stats` — human-readable store/manifest summary (totals come from
//!   the same `ManifestTotals` aggregation the manifest JSON and `top`
//!   use, so the three surfaces cannot disagree).
//! * `query` — `stats` restricted to the points matching the typed
//!   filters (conjoined), plus one line per matching point. `--snr` is
//!   an inclusive dB range, `--tier` an accuracy tier
//!   (`exact`/`early-stop`/`fast32`), `--converged` `true`/`false`,
//!   `--key` a 16-hex-digit point key.
//! * `export` / `import` — lossless conversion between store backends:
//!   `export` copies the detected store of `(name, shard)` into
//!   `--file` (the file extension picks the format — `.jsonl` for
//!   interchange/debug, `.seg` for the indexed backend); `import` reads
//!   any store file into the campaign's store under `--store-backend`.
//!   `export` to `.jsonl` then `import` back is byte-identical end to
//!   end.
//! * `top` — tails the live telemetry snapshots a `--telemetry` run
//!   writes (`<name>.telemetry.json`, one per shard leg) and renders
//!   per-point progress: packets realized, achieved BLER/CI width,
//!   convergence, packets/sec and the store-hit ratio. Refreshes every
//!   `--interval` seconds (default 2) until every snapshot reports
//!   done; `--once` renders a single frame (CI smoke uses this). Falls
//!   back to manifest totals when no snapshot exists yet.
//!
//! Exit codes: 0 ok, 1 verification failure, 2 usage/I-O error.

use std::path::{Path, PathBuf};

use hspa_phy::turbo::AccuracyTier;
use resilience_core::campaign::{
    manifest, shard, store, BackendKind, QueryFilter, ShardSpec, DEFAULT_STORE_DIR,
};
use resilience_core::telemetry::LiveSnapshot;

fn usage() -> ! {
    eprintln!(
        "usage: campaign-admin <merge|gc|verify|stats|query|export|import|top> \
         --name <campaign> [--dir DIR] [--out-dir DIR] [--shard I/N] \
         [--key HEX] [--snr LO:HI] [--tier TIER] [--converged BOOL] \
         [--file PATH] [--store-backend jsonl|indexed] [--strict] \
         [--once] [--interval SECS]"
    );
    std::process::exit(2);
}

fn fail(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("campaign-admin {context}: {e}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let mut name: Option<String> = None;
    let mut dir = PathBuf::from(DEFAULT_STORE_DIR);
    let mut out_dir: Option<PathBuf> = None;
    let mut spec = ShardSpec::single();
    let mut once = false;
    let mut interval_secs = 2u64;
    let mut filter = QueryFilter::new();
    let mut file: Option<PathBuf> = None;
    let mut backend = BackendKind::default();
    let mut strict = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--name" => name = it.next().cloned(),
            "--dir" => dir = it.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--out-dir" => out_dir = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--shard" => {
                spec = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--once" => once = true,
            "--strict" => strict = true,
            "--interval" => {
                interval_secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--key" => {
                let key = it
                    .next()
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .unwrap_or_else(|| usage());
                filter = filter.with_key(key);
            }
            "--snr" => {
                let (lo, hi) = it
                    .next()
                    .and_then(|v| {
                        let (lo, hi) = v.split_once(':')?;
                        Some((lo.parse::<f64>().ok()?, hi.parse::<f64>().ok()?))
                    })
                    .unwrap_or_else(|| usage());
                filter = filter.with_snr_range(lo, hi);
            }
            "--tier" => {
                let tier: AccuracyTier = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                filter = filter.with_tier(tier);
            }
            "--converged" => {
                let converged: bool = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                filter = filter.with_converged(converged);
            }
            "--file" => file = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--store-backend" => {
                backend = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(name) = name else {
        usage();
    };

    match command.as_str() {
        "merge" => {
            let out = out_dir.unwrap_or_else(|| dir.clone());
            let report = shard::merge(&name, &dir, &out)
                .unwrap_or_else(|e| fail(&format!("merge {name}"), e));
            println!(
                "merged {} shards of campaign {name}: {} points, {} chunks \
                 ({} duplicate chunks and {} malformed lines dropped)",
                report.shards,
                report.points,
                report.chunks,
                report.duplicate_chunks,
                report.malformed_lines
            );
            if report.store_served_chunks > 0 {
                println!(
                    "  note: {} chunk executions ({} packets) were store-resumed by the \
                     legs (provenance normalized away in the merged manifest)",
                    report.store_served_chunks, report.store_served_packets
                );
            }
            println!("  store:    {}", report.store_path.display());
            println!("  manifest: {}", report.manifest_path.display());
        }
        "gc" => {
            let report =
                shard::gc(&name, &dir, spec).unwrap_or_else(|e| fail(&format!("gc {name}"), e));
            println!(
                "gc campaign {name}: kept {} chunks; dropped {} orphaned, {} stale, \
                 {} duplicate, {} malformed, {} corrupt",
                report.kept,
                report.dropped_orphans,
                report.dropped_stale,
                report.dropped_duplicates,
                report.dropped_malformed,
                report.dropped_corrupt
            );
        }
        "verify" => {
            let report = shard::verify_with(&name, &dir, spec, strict)
                .unwrap_or_else(|e| fail(&format!("verify {name}"), e));
            println!(
                "verify campaign {name}: {}/{} points covered by the store \
                 ({} orphaned, {} stale, {} duplicate chunks, {} malformed lines)",
                report.covered_points,
                report.points,
                report.orphan_chunks,
                report.stale_chunks,
                report.duplicate_chunks,
                report.malformed_lines
            );
            if !report.ok() {
                for p in &report.problems {
                    eprintln!("  PROBLEM: {p}");
                }
                std::process::exit(1);
            }
        }
        "stats" => {
            let text = shard::stats(&name, &dir, spec)
                .unwrap_or_else(|e| fail(&format!("stats {name}"), e));
            print!("{text}");
        }
        "query" => {
            let text = shard::query(&name, &dir, spec, &filter)
                .unwrap_or_else(|e| fail(&format!("query {name}"), e));
            print!("{text}");
        }
        "export" => {
            let Some(out) = file else {
                usage();
            };
            let (src, _) = shard::detect_store_file(&name, &dir, spec)
                .unwrap_or_else(|e| fail(&format!("export {name}"), e));
            let n =
                store::convert(&src, &out).unwrap_or_else(|e| fail(&format!("export {name}"), e));
            println!(
                "exported {n} chunk records: {} -> {}",
                src.display(),
                out.display()
            );
        }
        "import" => {
            let Some(input) = file else {
                usage();
            };
            // Refuse an import that would leave the campaign with two
            // live backends — detection (gc, stats, merge) would then
            // error on the ambiguity.
            let other = dir.join(shard::store_file(
                &name,
                spec,
                match backend {
                    BackendKind::Jsonl => BackendKind::Indexed,
                    BackendKind::Indexed => BackendKind::Jsonl,
                },
            ));
            if other.exists() {
                fail(
                    &format!("import {name}"),
                    format_args!(
                        "{} already exists — delete it first or import with \
                         --store-backend {}",
                        other.display(),
                        BackendKind::for_path(&other),
                    ),
                );
            }
            let dst = dir.join(shard::store_file(&name, spec, backend));
            let n =
                store::convert(&input, &dst).unwrap_or_else(|e| fail(&format!("import {name}"), e));
            println!(
                "imported {n} chunk records: {} -> {}",
                input.display(),
                dst.display()
            );
        }
        "top" => top(&name, &dir, once, interval_secs),
        _ => usage(),
    }
}

/// Discovers the live telemetry snapshots of `name` in `dir` — the
/// unsuffixed `<name>.telemetry.json` of a single-host run and/or the
/// `<name>.shard-I-of-N.telemetry.json` files of dispatched legs —
/// sorted by file name so shard order is stable.
fn discover_snapshots(name: &str, dir: &Path) -> Vec<LiveSnapshot> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let Some(stem) = p
                .file_name()
                .and_then(|f| f.to_str())
                .and_then(|f| f.strip_suffix(".telemetry.json"))
            else {
                return false;
            };
            stem == name
                || stem
                    .strip_prefix(&format!("{name}.shard-"))
                    .is_some_and(|rest| rest.contains("-of-"))
        })
        .collect();
    files.sort();
    files.iter().filter_map(|p| LiveSnapshot::read(p)).collect()
}

/// Renders one `top` frame over the merged per-shard snapshots.
fn render_frame(name: &str, snaps: &[LiveSnapshot]) -> String {
    let sum = |f: fn(&LiveSnapshot) -> u64| snaps.iter().map(f).sum::<u64>();
    let packets_realized = sum(|s| s.packets_realized);
    let packets_from_store = sum(|s| s.packets_from_store);
    let pps: f64 = snaps.iter().map(|s| s.packets_per_sec).sum();
    let hits = sum(|s| s.store_chunk_hits);
    let misses = sum(|s| s.store_chunk_misses);
    let hit_ratio = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let done = snaps.iter().all(|s| s.done);
    let mut out = format!(
        "campaign {name} [{}]: {}/{} points converged, {} packets ({} from store), \
         {:.1} packets/sec, store-hit ratio {:.1}%\n",
        if done { "done" } else { "live" },
        sum(|s| s.points_converged),
        sum(|s| s.points_total),
        packets_realized,
        packets_from_store,
        pps,
        hit_ratio * 100.0,
    );
    out.push_str(&format!(
        "  {:<36} {:>13} {:>8} {:>7}  {}\n",
        "point", "packets", "BLER", "rel-hw", "status"
    ));
    let mut rows: Vec<_> = snaps.iter().flat_map(|s| s.points.iter()).collect();
    rows.sort_by(|a, b| a.label.cmp(&b.label));
    for p in rows {
        out.push_str(&format!(
            "  {:<36} {:>6}/{:<6} {:>8.4} {:>7.2}  {}\n",
            p.label,
            p.packets,
            p.max_packets,
            p.bler,
            p.half_width,
            if p.converged { "converged" } else { "running" },
        ));
    }
    out
}

/// The `top` subcommand: tail live snapshots until every leg reports
/// done (or forever if legs never finish — Ctrl-C is the exit). With
/// `--once`, render a single frame. Falls back to manifest totals when
/// no snapshot exists; exits 2 when there is nothing to show at all.
fn top(name: &str, dir: &Path, once: bool, interval_secs: u64) -> ! {
    loop {
        let snaps = discover_snapshots(name, dir);
        if snaps.is_empty() {
            // Fallback: a finished (or telemetry-less) campaign still
            // has its manifest — show its totals instead of nothing.
            let manifest_path = dir.join(shard::manifest_file(name, ShardSpec::single()));
            match manifest::read_summary(&manifest_path) {
                Some(s) => {
                    let t = s.totals;
                    println!(
                        "campaign {name} [no live snapshot; manifest totals]: \
                         {}/{} points converged, {} packets, store-hit rate {:.1}% \
                         ({:.1}% of packets)",
                        t.points_converged,
                        t.points_total,
                        t.realized_packets,
                        t.store_hit_rate() * 100.0,
                        t.store_packet_rate() * 100.0,
                    );
                    std::process::exit(0);
                }
                None => {
                    if once {
                        fail(
                            &format!("top {name}"),
                            format_args!(
                                "no telemetry snapshot or manifest in {} — run the campaign \
                                 with --telemetry",
                                dir.display()
                            ),
                        );
                    }
                    // Live mode: the campaign may simply not have
                    // started yet; keep polling.
                }
            }
        } else {
            print!("{}", render_frame(name, &snaps));
            if once || snaps.iter().all(|s| s.done) {
                std::process::exit(0);
            }
            println!();
        }
        std::thread::sleep(std::time::Duration::from_secs(interval_secs.max(1)));
    }
}
