//! Administers the campaign layer's on-disk state (result stores +
//! manifests under `target/campaign/` by default).
//!
//! ```text
//! campaign-admin merge  --name fig6 [--dir D] [--out-dir D2]
//! campaign-admin gc     --name fig6 [--dir D] [--shard i/n]
//! campaign-admin verify --name fig6 [--dir D] [--shard i/n]
//! campaign-admin stats  --name fig6 [--dir D] [--shard i/n]
//! ```
//!
//! * `merge` — gathers every `<name>.shard-*-of-*` store/manifest pair
//!   in `--dir` (e.g. CI artifacts of parallel `--shard i/n` legs),
//!   proves they form one complete partition, and writes the unified
//!   `<name>.jsonl` + `<name>.manifest.json` into `--out-dir` (default:
//!   `--dir`). The merged manifest is byte-identical to a single-host
//!   run's — CI `cmp`s the two on every push.
//! * `gc` — rewrites the store down to the canonical chunk cover its
//!   manifest needs, dropping orphaned keys, duplicates, stale chunks
//!   from abandoned schedules and torn lines.
//! * `verify` — checks the store can reproduce every manifest point
//!   (chunks tile `0..packets` gaplessly); exits 1 on inconsistency.
//! * `stats` — human-readable store/manifest summary.
//!
//! Exit codes: 0 ok, 1 verification failure, 2 usage/I-O error.

use std::path::PathBuf;

use resilience_core::campaign::{shard, ShardSpec, DEFAULT_STORE_DIR};

fn usage() -> ! {
    eprintln!(
        "usage: campaign-admin <merge|gc|verify|stats> --name <campaign> \
         [--dir DIR] [--out-dir DIR] [--shard I/N]"
    );
    std::process::exit(2);
}

fn fail(context: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("campaign-admin {context}: {e}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage();
    };
    let mut name: Option<String> = None;
    let mut dir = PathBuf::from(DEFAULT_STORE_DIR);
    let mut out_dir: Option<PathBuf> = None;
    let mut spec = ShardSpec::single();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--name" => name = it.next().cloned(),
            "--dir" => dir = it.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--out-dir" => out_dir = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--shard" => {
                spec = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(name) = name else {
        usage();
    };

    match command.as_str() {
        "merge" => {
            let out = out_dir.unwrap_or_else(|| dir.clone());
            let report = shard::merge(&name, &dir, &out)
                .unwrap_or_else(|e| fail(&format!("merge {name}"), e));
            println!(
                "merged {} shards of campaign {name}: {} points, {} chunks \
                 ({} duplicate chunks and {} malformed lines dropped)",
                report.shards,
                report.points,
                report.chunks,
                report.duplicate_chunks,
                report.malformed_lines
            );
            if report.store_served_chunks > 0 {
                println!(
                    "  note: {} chunk executions were store-resumed by the legs \
                     (provenance normalized away in the merged manifest)",
                    report.store_served_chunks
                );
            }
            println!("  store:    {}", report.store_path.display());
            println!("  manifest: {}", report.manifest_path.display());
        }
        "gc" => {
            let report =
                shard::gc(&name, &dir, spec).unwrap_or_else(|e| fail(&format!("gc {name}"), e));
            println!(
                "gc campaign {name}: kept {} chunks; dropped {} orphaned, {} stale, \
                 {} duplicate, {} malformed, {} corrupt",
                report.kept,
                report.dropped_orphans,
                report.dropped_stale,
                report.dropped_duplicates,
                report.dropped_malformed,
                report.dropped_corrupt
            );
        }
        "verify" => {
            let report = shard::verify(&name, &dir, spec)
                .unwrap_or_else(|e| fail(&format!("verify {name}"), e));
            println!(
                "verify campaign {name}: {}/{} points covered by the store \
                 ({} orphaned, {} stale, {} duplicate chunks, {} malformed lines)",
                report.covered_points,
                report.points,
                report.orphan_chunks,
                report.stale_chunks,
                report.duplicate_chunks,
                report.malformed_lines
            );
            if !report.ok() {
                for p in &report.problems {
                    eprintln!("  PROBLEM: {p}");
                }
                std::process::exit(1);
            }
        }
        "stats" => {
            let text = shard::stats(&name, &dir, spec)
                .unwrap_or_else(|e| fail(&format!("stats {name}"), e));
            print!("{text}");
        }
        _ => usage(),
    }
}
