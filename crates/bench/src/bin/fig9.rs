//! Regenerates Fig. 9 — throughput under 10/11/12-bit LLR quantization
//! with an unprotected array at 10% defects.

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::fig9;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("Fig. 9", "bit-width vs defect interaction", budget)
    );
    let res = fig9::run(&cfg, budget);
    println!("{}", res.table());
    for (i, w) in fig9::BIT_WIDTHS.iter().enumerate() {
        println!(
            "{w}-bit: {} storage cells, high-SNR mean throughput {:.3}",
            res.storage_cells[i],
            res.high_snr_mean(i)
        );
    }
    println!("\nexpected shape: under 10% defects the 10-bit system matches or beats");
    println!("11/12-bit at high SNR - bigger arrays collect more faults.\n");
    bench::finish(&args, &budget, &["fig9"]);
}
