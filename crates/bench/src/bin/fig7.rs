//! Regenerates Fig. 7 — throughput after 8T-protecting 0-6 MSBs of each
//! stored LLR, with 1% (panel a) and 10% (panel b) defects in the 6T bits.

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::fig7;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("Fig. 7", "throughput vs protected MSBs", budget)
    );
    let res = fig7::run(&cfg, budget);
    println!(
        "--- panel (a): Nf = 1% in 6T cells\n{}",
        res.panel_a.table()
    );
    println!(
        "--- panel (b): Nf = 10% in 6T cells\n{}",
        res.panel_b.table()
    );
    println!("expected shape: protecting 3-4 MSBs recovers (almost) the defect-free");
    println!("curve even under 10% defects in the remaining bits.\n");
    bench::finish(&args, &budget, &["fig7"]);
}
