//! Regenerates Fig. 3 — memory-cell failure probability vs supply
//! voltage for 6T / upsized-6T / 8T cells (65 nm model).

use resilience_core::experiments::fig3;

fn main() {
    println!("=== DAC'12 reproduction — Fig. 3: log10 P_cell(Vdd), 65 nm\n");
    let res = fig3::run();
    println!("{}", res.table());
    println!("expected shape: RDF curves fall ~18 decades/V (a billion times per");
    println!("500 mV); the 8T curve sits ~200 mV left of 6T; soft errors are flat.");
}
