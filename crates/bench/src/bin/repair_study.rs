//! Extension study (§3): spare-row/column repair vs defect acceptance.
//!
//! Quantifies the paper's claim that conventional redundancy becomes
//! insufficient as defect rates grow, while accepting faulty cells
//! (backed by the system's inherent resilience) keeps yielding.

use resilience_core::report::render_table;
use silicon::repair::{yield_with_repair, ArrayGeometry, SpareBudget};
use silicon::yield_model::yield_accepting;

fn main() {
    let g = ArrayGeometry {
        rows: 256,
        cols: 128,
    }; // 32 Kb tile
    let budget = SpareBudget { rows: 4, cols: 4 };
    println!("=== DAC'12 reproduction — §3 ext: repair vs acceptance yield");
    println!(
        "=== {}x{} tile, {} spare rows + {} spare columns\n",
        g.rows, g.cols, budget.rows, budget.cols
    );
    let mut rows = Vec::new();
    for (i, p) in [1e-5f64, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2].iter().enumerate() {
        let y_zero = yield_accepting(g.cells(), *p, 0);
        let y_rep = yield_with_repair(g, *p, budget, 400, 100 + i as u64);
        let tol = g.cells() / 100; // tolerate 1% faulty cells
        let y_acc = yield_accepting(g.cells(), *p, tol);
        rows.push(vec![
            format!("{p:.0e}"),
            format!("{:.1}", g.cells() as f64 * p),
            format!("{y_zero:.3}"),
            format!("{y_rep:.3}"),
            format!("{y_acc:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Pcell".into(),
                "E[faults]".into(),
                "zero-defect".into(),
                "4+4 spares".into(),
                "accept 1%".into()
            ],
            &rows,
        )
    );
    println!("expected shape: spares rescue yield for a handful of faults, then");
    println!("collapse; acceptance (enabled by system resilience) keeps yielding");
    println!("until E[faults] approaches the tolerated count - the paper's §3 point.");
}
