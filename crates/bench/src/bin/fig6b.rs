//! Regenerates Fig. 6(b) — average number of transmissions vs SNR under
//! the same defect-rate sweep as Fig. 6(a).

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::fig6;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("Fig. 6b", "avg transmissions vs SNR vs defect rate", budget)
    );
    let res = fig6::run(&cfg, budget);
    println!("{}", res.table_avg_tx());
    println!("expected shape: defect rates beyond 0.1% push the retransmission");
    println!("count toward the budget (4), wasting energy across the whole chain.\n");
    bench::finish(&args, &budget, &["fig6"]);
}
