//! Dispatches a sharded campaign: launches the `--shard i/n` legs of a
//! figure binary, monitors their liveness, steals work from dead or
//! stalled legs, then merges and verifies the artifacts — ending with a
//! store/manifest pair byte-identical to a single-host run.
//!
//! ```text
//! campaign-dispatch --name fig6 --bin target/release/fig6a --legs 2 \
//!     [--steal|--no-steal] [--work-dir D] [--stall-timeout SECS] \
//!     [--launcher TEMPLATE] [--hosts a,b,c] [--pull TEMPLATE] \
//!     [--backoff BASE_MS:FACTOR:MAX_MS] [--no-reshard] [--chaos-seed N] \
//!     [--manifest-json PATH] [--telemetry] [--store-backend KIND] \
//!     [--quiet] [-- LEG_ARGS...]
//! ```
//!
//! `--launcher TEMPLATE` switches from local child processes to the
//! remote-capable command launcher: the template (`ssh {host} {cmd}`
//! canonically; `sh -c {cmd}` in tests) is run per leg with `{host}`
//! drawn round-robin from `--hosts` and `{cmd}` the quoted leg command.
//! `--pull TEMPLATE` runs after each leg exits or is killed — the hook
//! that rsyncs remote artifacts back before the merge.
//!
//! `--chaos-seed N` arms the deterministic failpoints: in this
//! dispatcher (launch failures) and, via the leg environment, in every
//! launched leg (crashes, hangs, stale heartbeats, torn appends, index
//! corruption). Failed shards retry under `--backoff`; when slots are
//! idle a dead shard is re-sharded into parallel slices unless
//! `--no-reshard`; a shard that exhausts its attempts is abandoned and
//! the survivors merge into a partial-but-verified manifest.
//!
//! `--store-backend KIND` (`jsonl` or `indexed`) is forwarded to every
//! leg, so the whole dispatched campaign writes one store format; the
//! merge detects the legs' backend from their artifact files either
//! way.
//!
//! `--telemetry` turns on observability end to end: every leg gets
//! `--telemetry` appended (so it writes the live snapshot that doubles
//! as its heartbeat, plus its event log), and the dispatcher itself
//! logs launches/stall-kills/rescues/merge provenance to
//! `<name>.dispatch.telemetry.jsonl`. Watch a running dispatch with
//! `campaign-admin top --name <campaign>`.
//!
//! Legs run with their working directory at `--work-dir` (default `.`),
//! so their artifacts land under `<work-dir>/target/campaign/` — the
//! same place a hand-run `--shard i/n` leg writes, which is what lets a
//! re-dispatch with `--steal` resume a previously killed run's store.
//!
//! Exit codes: 0 ok, 1 dispatch/merge/verify failure, 2 usage error,
//! 3 partial success (shards abandoned; merged manifest verified but
//! incomplete).

use std::path::Path;
use std::time::Duration;

use bench::dispatch_from_args;
use resilience_core::campaign::{
    dispatch, CommandLauncher, DispatchConfig, Launcher, LocalLauncher, DEFAULT_STORE_DIR,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = dispatch_from_args(&args).unwrap_or_else(|e| {
        eprintln!("campaign-dispatch: {e}");
        eprintln!(
            "usage: campaign-dispatch --name <campaign> --bin <figure binary> \
             [--legs N] [--steal|--no-steal] [--work-dir D] \
             [--stall-timeout SECS] [--launcher TEMPLATE] [--hosts a,b,c] \
             [--pull TEMPLATE] [--backoff BASE_MS:FACTOR:MAX_MS] \
             [--no-reshard] [--chaos-seed N] [--manifest-json PATH] \
             [--telemetry] [--store-backend jsonl|indexed] [--quiet] \
             [-- LEG_ARGS...]"
        );
        std::process::exit(2);
    });

    // With --telemetry the legs are told to write their live snapshots
    // (the dispatcher's primary heartbeat) and event logs.
    let mut leg_args = parsed.leg_args.clone();
    if parsed.telemetry && !leg_args.iter().any(|a| a == "--telemetry") {
        leg_args.push("--telemetry".into());
    }
    // Forward the store backend to the legs (unless the operator pinned
    // one in the leg args themselves).
    if let Some(kind) = parsed.store_backend {
        if !leg_args.iter().any(|a| a == "--store-backend") {
            leg_args.push("--store-backend".into());
            leg_args.push(kind.to_string());
        }
    }
    // Arm this process's failpoints too: the launch-io site lives in the
    // dispatcher, not the legs. The legs get the seed via their
    // environment, set by the launcher below.
    if let Some(seed) = parsed.chaos_seed {
        resilience_core::failpoint::arm(seed);
    }

    let store_dir = Path::new(&parsed.work_dir).join(DEFAULT_STORE_DIR);
    let launcher: Box<dyn Launcher> = match &parsed.launcher {
        Some(template) => {
            let mut l =
                CommandLauncher::new(template, &parsed.bin, &parsed.work_dir).with_args(leg_args);
            if let Some(hosts) = &parsed.hosts {
                l = l.with_hosts(hosts);
            }
            if let Some(pull) = &parsed.pull {
                l = l.with_pull(pull);
            }
            if let Some(seed) = parsed.chaos_seed {
                l = l.with_chaos_seed(seed);
            }
            Box::new(l)
        }
        None => {
            let mut l = LocalLauncher::new(&parsed.bin, &parsed.work_dir).with_args(leg_args);
            if parsed.quiet {
                l = l.quiet();
            }
            if let Some(seed) = parsed.chaos_seed {
                l = l.with_chaos_seed(seed);
            }
            Box::new(l)
        }
    };
    let mut cfg = DispatchConfig {
        steal: parsed.steal,
        reshard: parsed.reshard,
        stall_timeout: match parsed.stall_timeout_secs {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        telemetry: parsed.telemetry,
        ..DispatchConfig::new(&parsed.name, parsed.legs, store_dir)
    };
    if let Some(backoff) = parsed.backoff {
        cfg.backoff = backoff;
    }

    println!(
        "=== dispatching campaign '{}': {} legs of {} ({}){}",
        parsed.name,
        parsed.legs,
        parsed.bin,
        if parsed.steal {
            "work stealing on"
        } else {
            "no stealing"
        },
        if parsed.leg_args.is_empty() {
            String::new()
        } else {
            format!(", leg args: {}", parsed.leg_args.join(" "))
        },
    );
    let report = dispatch(&cfg, launcher.as_ref()).unwrap_or_else(|e| {
        eprintln!("campaign-dispatch {}: {e}", parsed.name);
        std::process::exit(1);
    });
    print!("{}", report.summary());

    if let Some(out) = parsed.manifest_json {
        if let Err(e) = std::fs::copy(Path::new(&report.merge.manifest_path), &out) {
            eprintln!(
                "--manifest-json: cannot copy {} to {out}: {e}",
                report.merge.manifest_path.display()
            );
            std::process::exit(1);
        }
        println!("manifest JSON written to {out}");
    }

    if !report.abandoned.is_empty() {
        eprintln!(
            "campaign-dispatch {}: {} shard(s) abandoned — merged manifest is partial",
            parsed.name,
            report.abandoned.len()
        );
        std::process::exit(3);
    }
}
