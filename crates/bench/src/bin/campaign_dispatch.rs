//! Dispatches a sharded campaign: launches the `--shard i/n` legs of a
//! figure binary, monitors their liveness, steals work from dead or
//! stalled legs, then merges and verifies the artifacts — ending with a
//! store/manifest pair byte-identical to a single-host run.
//!
//! ```text
//! campaign-dispatch --name fig6 --bin target/release/fig6a --legs 2 \
//!     [--steal|--no-steal] [--work-dir D] [--stall-timeout SECS] \
//!     [--manifest-json PATH] [--telemetry] [--store-backend KIND] \
//!     [--quiet] [-- LEG_ARGS...]
//! ```
//!
//! `--store-backend KIND` (`jsonl` or `indexed`) is forwarded to every
//! leg, so the whole dispatched campaign writes one store format; the
//! merge detects the legs' backend from their artifact files either
//! way.
//!
//! `--telemetry` turns on observability end to end: every leg gets
//! `--telemetry` appended (so it writes the live snapshot that doubles
//! as its heartbeat, plus its event log), and the dispatcher itself
//! logs launches/stall-kills/rescues/merge provenance to
//! `<name>.dispatch.telemetry.jsonl`. Watch a running dispatch with
//! `campaign-admin top --name <campaign>`.
//!
//! Legs run with their working directory at `--work-dir` (default `.`),
//! so their artifacts land under `<work-dir>/target/campaign/` — the
//! same place a hand-run `--shard i/n` leg writes, which is what lets a
//! re-dispatch with `--steal` resume a previously killed run's store.
//!
//! Exit codes: 0 ok, 1 dispatch/merge/verify failure, 2 usage error.

use std::path::Path;
use std::time::Duration;

use bench::dispatch_from_args;
use resilience_core::campaign::{dispatch, DispatchConfig, LocalLauncher};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = dispatch_from_args(&args).unwrap_or_else(|e| {
        eprintln!("campaign-dispatch: {e}");
        eprintln!(
            "usage: campaign-dispatch --name <campaign> --bin <figure binary> \
             [--legs N] [--steal|--no-steal] [--work-dir D] \
             [--stall-timeout SECS] [--manifest-json PATH] [--telemetry] \
             [--store-backend jsonl|indexed] [--quiet] [-- LEG_ARGS...]"
        );
        std::process::exit(2);
    });

    // With --telemetry the legs are told to write their live snapshots
    // (the dispatcher's primary heartbeat) and event logs.
    let mut leg_args = parsed.leg_args.clone();
    if parsed.telemetry && !leg_args.iter().any(|a| a == "--telemetry") {
        leg_args.push("--telemetry".into());
    }
    // Forward the store backend to the legs (unless the operator pinned
    // one in the leg args themselves).
    if let Some(kind) = parsed.store_backend {
        if !leg_args.iter().any(|a| a == "--store-backend") {
            leg_args.push("--store-backend".into());
            leg_args.push(kind.to_string());
        }
    }
    let mut launcher = LocalLauncher::new(&parsed.bin, &parsed.work_dir).with_args(leg_args);
    if parsed.quiet {
        launcher = launcher.quiet();
    }
    let cfg = DispatchConfig {
        steal: parsed.steal,
        stall_timeout: match parsed.stall_timeout_secs {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        telemetry: parsed.telemetry,
        ..DispatchConfig::new(&parsed.name, parsed.legs, launcher.store_dir())
    };

    println!(
        "=== dispatching campaign '{}': {} legs of {} ({}){}",
        parsed.name,
        parsed.legs,
        parsed.bin,
        if parsed.steal {
            "work stealing on"
        } else {
            "no stealing"
        },
        if parsed.leg_args.is_empty() {
            String::new()
        } else {
            format!(", leg args: {}", parsed.leg_args.join(" "))
        },
    );
    let report = dispatch(&cfg, &launcher).unwrap_or_else(|e| {
        eprintln!("campaign-dispatch {}: {e}", parsed.name);
        std::process::exit(1);
    });
    print!("{}", report.summary());

    if let Some(out) = parsed.manifest_json {
        if let Err(e) = std::fs::copy(Path::new(&report.merge.manifest_path), &out) {
            eprintln!(
                "--manifest-json: cannot copy {} to {out}: {e}",
                report.merge.manifest_path.display()
            );
            std::process::exit(1);
        }
        println!("manifest JSON written to {out}");
    }
}
