//! Regenerates the golden decode corpus of `tests/decode_golden.rs`.
//!
//! Prints one Rust tuple literal per corpus case; paste the output into
//! the `GOLDEN_*` tables of the test. The corpus pins the decoder's
//! exact bit-level behavior: hard decisions and posterior LLRs are
//! folded into an FNV-1a hash over the raw `f64` bit patterns, so any
//! numerical deviation — however small — changes the hash. Run this
//! binary *before* a decoder/equalizer refactor to prove the refactor
//! is bit-identical, and again after intentional algorithm changes to
//! refresh the tables.
//!
//! ```text
//! cargo run --release --bin golden-gen
//! ```

use rand::SeedableRng;

use hspa_phy::turbo::{AccuracyTier, DecoderConfig, TurboBatchScratch};
use resilience_core::config::{ChannelKind, SystemConfig};
use resilience_core::montecarlo::{build_buffer, StorageConfig};
use resilience_core::simulator::{LinkSimulator, PacketScratch};

/// FNV-1a 64-bit, the same fold the golden test applies.
fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = seed;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn hash_decode(bits: &[u8], llrs: &[f64]) -> u64 {
    let h = fnv1a(bits.iter().copied(), FNV_OFFSET);
    fnv1a(llrs.iter().flat_map(|l| l.to_bits().to_le_bytes()), h)
}

fn noisy_llrs(coded: &[u8], snr_db: f64, seed: u64) -> Vec<f64> {
    let mut rng = dsp::rng::seeded(seed);
    let esn0 = dsp::stats::db_to_linear(snr_db);
    let sigma2 = 1.0 / (2.0 * esn0);
    coded
        .iter()
        .map(|&b| {
            let x = 1.0 - 2.0 * b as f64;
            let y = x + sigma2.sqrt() * dsp::rng::standard_normal(&mut rng);
            2.0 * y / sigma2
        })
        .collect()
}

fn decoder_cases() {
    println!("// (k, snr_db_x10, seed, iterations, bits_llr_hash, iterations_run)");
    for &k in &[40usize, 120, 624, 1000] {
        let code = hspa_phy::turbo::TurboCode::new(k).expect("valid k");
        for &snr_x10 in &[-45i32, -20, 0, 15, 40] {
            let seed = k as u64 * 31 + snr_x10.unsigned_abs() as u64;
            let mut rng = dsp::rng::seeded(seed);
            let bits = dsp::rng::random_bits(&mut rng, k);
            let coded = code.encode(&bits);
            let llrs = noisy_llrs(&coded, snr_x10 as f64 / 10.0, seed ^ 0x5eed);
            let out = code.decode(&llrs, 8);
            println!(
                "    ({k}, {snr_x10}, {seed}, 8, 0x{:016x}, {}),",
                hash_decode(&out.bits, &out.llrs),
                out.iterations_run
            );
        }
    }
}

/// Decoder-level Fast32 goldens: the f32 LLR path through a one-lane
/// `TurboBatchScratch`. The hash still folds `f64` bit patterns — the
/// batch scratch widens its f32 posteriors on output — so these tables
/// pin the exact f32 arithmetic, not a rounded view of it.
fn fast32_decoder_cases() {
    println!("// (k, snr_db_x10, seed, iterations, bits_llr_hash, iterations_run)");
    let mut batch = TurboBatchScratch::new();
    for &k in &[40usize, 120, 624, 1000] {
        let code = hspa_phy::turbo::TurboCode::new(k).expect("valid k");
        for &snr_x10 in &[-45i32, -20, 0, 15, 40] {
            let seed = k as u64 * 31 + snr_x10.unsigned_abs() as u64;
            let mut rng = dsp::rng::seeded(seed);
            let bits = dsp::rng::random_bits(&mut rng, k);
            let coded = code.encode(&bits);
            let llrs = noisy_llrs(&coded, snr_x10 as f64 / 10.0, seed ^ 0x5eed);
            batch.begin_batch(llrs.len());
            batch.push_lane(&llrs);
            code.decode_batch(
                DecoderConfig::new(8, AccuracyTier::Fast32),
                &mut batch,
                None,
            );
            println!(
                "    ({k}, {snr_x10}, {seed}, 8, 0x{:016x}, {}),",
                hash_decode(batch.bits(0), batch.llrs(0)),
                batch.iterations_run(0)
            );
        }
    }
}

fn outcome_cases(tier: AccuracyTier) {
    println!("// (cfg, channel, storage, snr_db_x10, packets, outcome_hash)");
    // The Exact tier sweeps the full channel × storage × config grid;
    // the non-default tiers pin a reduced but still faulty-inclusive
    // slice so the per-tier tables stay cheap to run in CI.
    let channels: &[(&str, ChannelKind)] = if tier == AccuracyTier::Exact {
        &[
            ("awgn", ChannelKind::Awgn),
            ("peda", ChannelKind::PedestrianA),
            ("veha", ChannelKind::VehicularA),
            ("jakes", ChannelKind::CorrelatedSlowFading),
        ]
    } else {
        &[
            ("awgn", ChannelKind::Awgn),
            ("veha", ChannelKind::VehicularA),
        ]
    };
    let configs: &[(&str, SystemConfig)] = if tier == AccuracyTier::Exact {
        &[
            ("fast", SystemConfig::fast_test()),
            ("paper", SystemConfig::paper_64qam()),
        ]
    } else {
        &[("fast", SystemConfig::fast_test())]
    };
    for &(cfg_name, mut cfg) in configs {
        cfg.accuracy_tier = tier;
        let packets = if cfg_name == "fast" { 6 } else { 2 };
        for &(ch_name, ch) in channels {
            cfg.channel = ch;
            cfg.equalizer_taps = if ch == ChannelKind::VehicularA { 21 } else { 7 };
            let sim = LinkSimulator::new(cfg);
            let storages: &[(&str, StorageConfig)] = if tier == AccuracyTier::Exact {
                &[
                    ("perfect", StorageConfig::Perfect),
                    ("quantized", StorageConfig::Quantized),
                    ("faulty10", StorageConfig::unprotected(0.10, cfg.llr_bits)),
                ]
            } else {
                &[
                    ("perfect", StorageConfig::Perfect),
                    ("faulty10", StorageConfig::unprotected(0.10, cfg.llr_bits)),
                ]
            };
            for (st_name, storage) in storages {
                for &snr_x10 in &[20i32, 80, 200] {
                    let seed = fnv1a(
                        format!("{cfg_name}/{ch_name}/{st_name}/{snr_x10}").bytes(),
                        FNV_OFFSET,
                    );
                    let mut buffer = build_buffer(&cfg, storage, seed ^ 0xd1e);
                    let mut scratch = PacketScratch::new();
                    let mut h = FNV_OFFSET;
                    for p in 0..packets {
                        let pseed = dsp::rng::packet_seed(seed, p);
                        let mut rng = rand::rngs::StdRng::seed_from_u64(pseed);
                        buffer.begin_packet(pseed);
                        let out = sim.simulate_packet_with(
                            snr_x10 as f64 / 10.0,
                            &mut buffer,
                            &mut rng,
                            &mut scratch,
                        );
                        h = fnv1a(
                            [
                                out.success_after.map_or(0, |t| t as u8),
                                out.transmissions_used as u8,
                            ],
                            h,
                        );
                    }
                    println!(
                        "    (\"{cfg_name}\", \"{ch_name}\", \"{st_name}\", {snr_x10}, {packets}, 0x{h:016x}),"
                    );
                }
            }
        }
    }
}

fn main() {
    println!("// --- decoder-level golden cases (Exact, f64) ---");
    decoder_cases();
    println!("// --- decoder-level golden cases (Fast32, f32 LLR path) ---");
    fast32_decoder_cases();
    println!("// --- link-level packet-outcome golden cases (Exact) ---");
    outcome_cases(AccuracyTier::Exact);
    println!("// --- link-level packet-outcome golden cases (EarlyStop) ---");
    outcome_cases(AccuracyTier::EarlyStop);
    println!("// --- link-level packet-outcome golden cases (Fast32) ---");
    outcome_cases(AccuracyTier::Fast32);
}
