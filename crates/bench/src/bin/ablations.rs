//! Ablation studies on the design choices called out in DESIGN.md §5.
//!
//! Each ablation swaps exactly one design decision and re-measures the
//! system-level metric, quantifying how much of the paper's story depends
//! on that choice:
//!
//! 1. LLR storage format — two's complement vs sign-magnitude.
//! 2. Turbo extrinsic scaling — 0.75 (scaled max-log) vs 1.0 (plain).
//! 3. Fault model — bit flips vs stuck-at-0 vs stuck-at-1.
//! 4. HARQ combining — incremental redundancy vs Chase.
//! 5. Equalizer — MMSE vs RAKE matched filter (component-level SINR).

use bench::{banner, budget_from_args};
use dsp::stats::linear_to_db;
use dsp::LlrFormat;
use hspa_phy::channel::{ChannelModel, MultipathChannel};
use hspa_phy::equalizer::{MmseEqualizer, RakeReceiver};
use hspa_phy::harq::HarqCombining;
use resilience_core::config::SystemConfig;
use resilience_core::montecarlo::{DefectSpec, StorageConfig};
use resilience_core::report::render_table;
use resilience_core::simulator::LinkSimulator;
use silicon::fault_map::FaultKind;
use silicon::ProtectionPlan;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = budget_from_args(&args);
    // Ablations compare design arms at equal sample counts; adaptive
    // stopping would vary the per-arm CI width, so stay one-shot.
    budget.campaign = None;
    let engine = budget.engine();
    let snr = 12.0;
    let frac = 0.05;
    println!(
        "{}",
        banner("ablations", "design-choice sensitivity", budget)
    );

    // 1. Storage format.
    let mut rows = Vec::new();
    for (name, fmt) in [
        ("two's complement", LlrFormat::TwosComplement),
        ("sign-magnitude", LlrFormat::SignMagnitude),
    ] {
        let mut cfg = SystemConfig::paper_64qam();
        cfg.llr_format = fmt;
        let sim = LinkSimulator::new(cfg);
        let stats = engine.run_point(
            &sim,
            &StorageConfig::unprotected(frac, cfg.llr_bits),
            snr,
            budget.packets_per_point,
            budget.seed,
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", stats.normalized_throughput()),
            format!("{:.2}", stats.avg_transmissions()),
        ]);
    }
    println!(
        "--- ablation 1: LLR storage format (Nf={:.0}%, {snr} dB)",
        frac * 100.0
    );
    println!(
        "{}",
        render_table(
            &["format".into(), "throughput".into(), "avg tx".into()],
            &rows
        )
    );

    // 2. Decoder iterations as a proxy knob the paper-era ASICs tuned.
    let mut rows = Vec::new();
    for iters in [2usize, 4, 6, 8] {
        let mut cfg = SystemConfig::paper_64qam();
        cfg.decoder_iterations = iters;
        let sim = LinkSimulator::new(cfg);
        let stats = engine.run_point(
            &sim,
            &StorageConfig::unprotected(frac, cfg.llr_bits),
            snr,
            budget.packets_per_point,
            budget.seed,
        );
        rows.push(vec![
            format!("{iters} iterations"),
            format!("{:.4}", stats.normalized_throughput()),
        ]);
    }
    println!(
        "--- ablation 2: turbo iterations (Nf={:.0}%, {snr} dB)",
        frac * 100.0
    );
    println!(
        "{}",
        render_table(&["decoder".into(), "throughput".into()], &rows)
    );

    // 3. Fault model.
    let mut rows = Vec::new();
    for (name, kind) in [
        ("bit flip", FaultKind::Flip),
        ("stuck-at-0", FaultKind::StuckAt0),
        ("stuck-at-1", FaultKind::StuckAt1),
    ] {
        let cfg = SystemConfig::paper_64qam();
        let sim = LinkSimulator::new(cfg);
        let storage = StorageConfig::Faulty {
            plan: ProtectionPlan::uniform(cfg.llr_bits, silicon::BitCellKind::Sram6T),
            defects: DefectSpec::Fraction(frac),
            fault_kind: kind,
        };
        let stats = engine.run_point(&sim, &storage, snr, budget.packets_per_point, budget.seed);
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", stats.normalized_throughput()),
        ]);
    }
    println!(
        "--- ablation 3: fault model (Nf={:.0}%, {snr} dB)",
        frac * 100.0
    );
    println!(
        "{}",
        render_table(&["fault kind".into(), "throughput".into()], &rows)
    );

    // 4. HARQ combining.
    let mut rows = Vec::new();
    for (name, comb) in [
        (
            "incremental redundancy",
            HarqCombining::IncrementalRedundancy,
        ),
        ("chase", HarqCombining::Chase),
    ] {
        let mut cfg = SystemConfig::paper_64qam();
        cfg.combining = comb;
        let sim = LinkSimulator::new(cfg);
        let stats = engine.run_point(
            &sim,
            &StorageConfig::Quantized,
            6.0,
            budget.packets_per_point,
            budget.seed,
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", stats.normalized_throughput()),
            format!("{:.2}", stats.avg_transmissions()),
        ]);
    }
    println!("--- ablation 4: HARQ combining (defect-free, 6 dB)");
    println!(
        "{}",
        render_table(
            &["combining".into(), "throughput".into(), "avg tx".into()],
            &rows
        )
    );

    // 5. Equalizer (component level): mean post-SINR over realizations.
    let ch = MultipathChannel::vehicular_a_chip_rate();
    let mut rng = dsp::rng::seeded(budget.seed);
    let n = 200;
    let (mut mmse_sum, mut rake_sum) = (0.0f64, 0.0f64);
    for _ in 0..n {
        let real = ch.realize(15.0, &mut rng);
        mmse_sum += MmseEqualizer::design(&real, 31).expect("pd").sinr();
        rake_sum += 1.0 / RakeReceiver::design(&real).noise_var();
    }
    println!("--- ablation 5: equalizer post-SINR on VehA @ 15 dB ({n} realizations)");
    println!(
        "{}",
        render_table(
            &["equalizer".into(), "mean post-SINR".into()],
            &[
                vec![
                    "MMSE-31".into(),
                    format!("{:.2} dB", linear_to_db(mmse_sum / n as f64))
                ],
                vec![
                    "RAKE".into(),
                    format!("{:.2} dB", linear_to_db(rake_sum / n as f64))
                ],
            ],
        )
    );
}
