//! Regenerates the Section 6.3 power study: voltage scaling enabled by
//! defect tolerance and MSB protection (~30% HARQ-block power saving).

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::power;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    let snr = 9.0; // the paper's retransmission comparison point
    println!(
        "{}",
        banner("§6.3", "power reduction via defect tolerance", budget)
    );
    let res = power::run(&cfg, budget, snr);
    println!("{}", res.table());
    println!("expected shape: 6T@0.8V saves ~30-40% with no throughput cost;");
    println!("hybrid@0.6V saves more while needing fewer retransmissions than the");
    println!("unprotected 0.6V array (paper: 2.4 vs 3.5 at 9 dB).\n");
    bench::finish(&args, &budget, &["power"]);
}
