//! Regenerates Fig. 5 — yield vs number of accepted faulty cells for a
//! 200 Kb array at several cell-failure probabilities (Eq. 2).

use resilience_core::experiments::fig5;

fn main() {
    println!("=== DAC'12 reproduction — Fig. 5: yield Y(Nf), 200 Kb array\n");
    let res = fig5::run();
    println!("{}", res.table());
    println!("expected shape: sigmoids around M*Pcell; at Pcell=1e-4 accepting 0.1%");
    println!("defects meets the 95% target that zero-defect screening cannot.");
}
