//! Regenerates Fig. 2 — decoding-failure probability over HARQ
//! transmissions at three SNR regimes (defect-free system).

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::fig2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!("{}", banner("Fig. 2", "BLER vs HARQ transmission", budget));
    let res = fig2::run(&cfg, budget);
    println!("{}", res.table());
    println!("expected shape: ~95% first-try decoding at 29 dB; partial at 11 dB;");
    println!("virtually all packets retransmitted at 3 dB with BLER falling per combine.\n");
    bench::finish(&args, &budget, &["fig2"]);
}
