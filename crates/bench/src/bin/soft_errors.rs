//! Extension study: transient soft errors vs persistent defects (§3).

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::soft_errors;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("§3 ext", "soft-error (transient upset) sensitivity", budget)
    );
    let res = soft_errors::run(&cfg, budget, 18.0);
    println!("{}", res.table());
    println!("expected shape: throughput unaffected until ~1e-4 upsets/bit/read,");
    println!("orders of magnitude above the model's prediction - persistent RDF");
    println!("defects, not soft errors, are the binding constraint (paper §3).\n");
    bench::finish(&args, &budget, &["soft-errors"]);
}
