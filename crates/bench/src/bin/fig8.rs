//! Regenerates Fig. 8 — protection efficiency (throughput gain per unit
//! area) vs number of protected bits at 10% defects, plus ECC baseline.

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::fig8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    // Mid-waterfall SNR: where the unprotected system suffers most.
    let snr = 9.0;
    println!(
        "{}",
        banner("Fig. 8", "protection efficiency at Nf=10%", budget)
    );
    let res = fig8::run(&cfg, budget, snr);
    println!("{}", res.table());
    println!("best gain/area protection: {} MSBs", res.best_protection());
    println!("\nexpected shape: gain saturates at 3-4 protected bits (~12-13% area);");
    println!("full-word SECDED pays >=35-50% area for no additional throughput.\n");
    bench::finish(&args, &budget, &["fig8"]);
}
