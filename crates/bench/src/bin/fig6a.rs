//! Regenerates Fig. 6(a) — normalized throughput vs SNR under LLR-storage
//! defect rates of 0 / 0.1 / 1 / 5 / 10 %.

use bench::{banner, budget_from_args};
use resilience_core::config::SystemConfig;
use resilience_core::experiments::{fig6, THROUGHPUT_REQUIREMENT};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = budget_from_args(&args);
    let cfg = SystemConfig::paper_64qam().with_tier(budget.accuracy_tier);
    println!(
        "{}",
        banner("Fig. 6a", "throughput vs SNR vs defect rate", budget)
    );
    let res = fig6::run(&cfg, budget);
    println!("{}", res.table_throughput());
    let (snr_req, thr_req) = THROUGHPUT_REQUIREMENT;
    for s in res.throughput_series() {
        match s.crossing(thr_req) {
            Some(x) => println!(
                "{:<10} crosses {:.2} at {:5.1} dB (3GPP point: {:.0} dB)",
                s.label, thr_req, x, snr_req
            ),
            None => println!("{:<10} never reaches {:.2}", s.label, thr_req),
        }
    }
    println!("\nexpected shape: <=0.1% defects coincide with defect-free; degradation");
    println!("grows beyond that; even 10% defects still cross the 0.53 requirement.\n");
    bench::finish(&args, &budget, &["fig6"]);
}
