//! Shared command-line handling for every figure binary.
//!
//! Historically each binary re-parsed `--packets/--seed/--threads` by
//! hand; this module is now the single place that turns `argv` into an
//! [`ExperimentBudget`], including the campaign-layer flags:
//!
//! * `--packets N` / `--max-packets N` — per-point packet budget (the
//!   escalation **cap** under a campaign);
//! * `--seed S`, `--threads T` — as before;
//! * `--batch N` — engine decode batch width (`0`/unset = engine
//!   default). Bit-identical at every width — a pure throughput knob;
//! * `--accuracy-tier TIER` — decoder tier (`exact`, `early-stop`,
//!   `fast32`). Non-default tiers change Monte-Carlo outcomes and get
//!   their own campaign fingerprints (stores never mix tiers);
//! * `--precision P` — target relative half-width of the per-point BLER
//!   confidence interval (default 0.25);
//! * `--bler-floor F` — BLER below which a point counts as resolved;
//! * `--chunk N` — packets of the first adaptive chunk;
//! * `--target-ci W` — absolute Wilson half-width target: replaces the
//!   relative rule and sizes chunks straight from the Wilson estimate;
//! * `--shard I/N` — run only the points of shard `I` (of `N` total) of
//!   the campaign, into suffixed store/manifest files that
//!   `campaign-admin merge` folds back into the single-host result;
//! * `--store-backend KIND` — result-store backend: `jsonl` (default,
//!   line-oriented interchange format) or `indexed` (append-only binary
//!   segments with a point-key index — open/resume cost proportional to
//!   points touched, not file size). A storage knob like `--resume`:
//!   manifests are byte-identical across backends;
//! * `--resume` / `--no-resume` — reuse or truncate the persistent
//!   result store under `target/campaign/`;
//! * `--manifest-json PATH` — after the run, copy the campaign manifest
//!   to `PATH` (machine-readable summary for CI assertions);
//! * `--telemetry` — write live telemetry exposition files under
//!   `target/campaign/` (`<name>.telemetry.json` live snapshot,
//!   `<name>.telemetry.jsonl` event log, `<name>.prom` Prometheus text).
//!   Metric *recording* is always on; the flag only enables the files,
//!   so results are byte-identical with or without it. `campaign-admin
//!   top` tails the snapshot;
//! * `--chaos-seed N` — arm the deterministic failpoints with seed `N`
//!   (chaos test suite). Like `--telemetry` this is process-global and
//!   excluded from campaign identity: injected faults kill or degrade
//!   the process, they never alter a surviving result byte. The
//!   `RESILIENCE_CHAOS_SEED` / `RESILIENCE_CHAOS_ATTEMPT` environment
//!   (what the dispatcher's launchers set for their legs) arms the same
//!   switch;
//! * `--one-shot` — bypass the campaign layer entirely (classic fixed
//!   budget on the bare engine).
//!
//! Campaigns are the default execution path: unless `--one-shot` is
//! given, every binary runs adaptive budgets against the store.

use std::path::Path;

use hspa_phy::turbo::AccuracyTier;
use resilience_core::campaign::{
    manifest, BackendKind, BackoffPolicy, Campaign, CampaignSettings, ShardSpec,
};
use resilience_core::experiments::ExperimentBudget;

/// Parses command-line arguments into a budget. Unknown arguments are
/// ignored so binaries can add their own flags.
pub fn budget_from_args(args: &[String]) -> ExperimentBudget {
    // Dispatcher-launched legs inherit their chaos arming through the
    // environment (the launcher sets it per attempt); a `--chaos-seed`
    // flag below overrides it for direct invocations.
    resilience_core::failpoint::arm_from_env();
    let mut budget = ExperimentBudget::full().with_campaign(CampaignSettings::default());
    // Flags with a value: parse it strictly (wrong type/sign keeps the
    // default, exactly like an unknown flag) or leave the default.
    fn next_parsed<T: std::str::FromStr>(it: &mut std::slice::Iter<String>) -> Option<T> {
        it.next().and_then(|s| s.parse().ok())
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--packets" | "--max-packets" => {
                if let Some(v) = next_parsed::<usize>(&mut it) {
                    budget.packets_per_point = v;
                }
            }
            "--seed" => {
                if let Some(v) = next_parsed::<u64>(&mut it) {
                    budget.seed = v;
                }
            }
            "--threads" => {
                if let Some(v) = next_parsed::<usize>(&mut it) {
                    budget.threads = v;
                }
            }
            "--batch" => {
                if let Some(v) = next_parsed::<usize>(&mut it) {
                    budget.batch = v;
                }
            }
            "--accuracy-tier" => {
                if let Some(v) = next_parsed::<AccuracyTier>(&mut it) {
                    budget.accuracy_tier = v;
                }
            }
            "--precision" => {
                if let (Some(v), Some(c)) = (next_parsed::<f64>(&mut it), budget.campaign.as_mut())
                {
                    c.precision = v;
                }
            }
            "--bler-floor" => {
                if let (Some(v), Some(c)) = (next_parsed::<f64>(&mut it), budget.campaign.as_mut())
                {
                    c.bler_floor = v;
                }
            }
            "--chunk" => {
                if let (Some(v), Some(c)) =
                    (next_parsed::<usize>(&mut it), budget.campaign.as_mut())
                {
                    if v >= 1 {
                        c.initial_chunk = v;
                    }
                }
            }
            "--target-ci" => {
                if let (Some(v), Some(c)) = (next_parsed::<f64>(&mut it), budget.campaign.as_mut())
                {
                    if v > 0.0 {
                        c.target_ci = v;
                    }
                }
            }
            "--shard" => {
                if let (Some(v), Some(c)) =
                    (next_parsed::<ShardSpec>(&mut it), budget.campaign.as_mut())
                {
                    c.shard = v;
                }
            }
            "--store-backend" => {
                if let (Some(v), Some(c)) = (
                    next_parsed::<BackendKind>(&mut it),
                    budget.campaign.as_mut(),
                ) {
                    c.backend = v;
                }
            }
            "--resume" => {
                if let Some(c) = budget.campaign.as_mut() {
                    c.resume = true;
                }
            }
            "--no-resume" => {
                if let Some(c) = budget.campaign.as_mut() {
                    c.resume = false;
                }
            }
            // Process-global on purpose: exposition must stay out of
            // `CampaignSettings` (settings render into the manifest,
            // and telemetry may never change manifest bytes).
            "--telemetry" => resilience_core::telemetry::set_enabled(true),
            // Same identity rule as --telemetry: armed failpoints crash
            // or degrade the process but never change a surviving
            // result, so the seed stays out of `CampaignSettings`.
            "--chaos-seed" => {
                if let Some(v) = next_parsed::<u64>(&mut it) {
                    resilience_core::failpoint::arm(v);
                }
            }
            "--one-shot" => budget.campaign = None,
            _ => {}
        }
    }
    budget
}

/// Standard banner for figure binaries.
pub fn banner(figure: &str, what: &str, budget: ExperimentBudget) -> String {
    let mode = match budget.campaign {
        Some(c) => {
            let target = if c.target_ci > 0.0 {
                format!("target-ci {:.3}", c.target_ci)
            } else {
                format!("precision {:.2}, floor {:.2}", c.precision, c.bler_floor)
            };
            let shard = if c.shard.is_sharded() {
                format!(", shard {}", c.shard)
            } else {
                String::new()
            };
            let backend = if c.backend == BackendKind::default() {
                String::new()
            } else {
                format!(", store {}", c.backend)
            };
            format!(
                "campaign: {target}, {}{shard}{backend}",
                if c.resume { "resume" } else { "no-resume" }
            )
        }
        None => "one-shot".into(),
    };
    let tier = if budget.accuracy_tier == AccuracyTier::Exact {
        String::new()
    } else {
        format!(", tier {}", budget.accuracy_tier)
    };
    format!(
        "=== DAC'12 reproduction — {figure}: {what}\n=== packets/point <= {}, seed = {:#x}, {mode}{tier}\n",
        budget.packets_per_point, budget.seed
    )
}

/// Prints the campaign summaries (store-hit rate, packets saved versus
/// the fixed budget, convergence tally) for the given campaign names.
/// No-op in `--one-shot` mode or when a manifest is missing. Resolves
/// the shard-suffixed manifest of a `--shard i/n` run.
pub fn print_campaign_summary(budget: &ExperimentBudget, names: &[&str]) {
    let Some(settings) = budget.campaign else {
        return;
    };
    for name in names {
        let path = Campaign::manifest_path_for(name, &settings);
        match manifest::read_summary(&path) {
            Some(s) => println!("{}", summary_line(&s)),
            None => println!("campaign {name}: no manifest at {}", path.display()),
        }
    }
}

/// Post-run epilogue shared by every figure binary: prints the campaign
/// summaries, then honors `--manifest-json PATH` by copying the first
/// campaign's manifest to `PATH` (CI asserts on the copy with `jq`
/// instead of scraping stdout). Exits non-zero if the copy was
/// requested but no manifest exists — a silent skip would make CI
/// assertions vacuously pass.
pub fn finish(args: &[String], budget: &ExperimentBudget, names: &[&str]) {
    print_campaign_summary(budget, names);
    let Some(out) = flag_value(args, "--manifest-json") else {
        return;
    };
    let Some(settings) = budget.campaign else {
        eprintln!("--manifest-json: no campaign manifest in --one-shot mode");
        std::process::exit(1);
    };
    let Some(name) = names.first() else {
        eprintln!("--manifest-json: this binary runs no campaign");
        std::process::exit(1);
    };
    let path = Campaign::manifest_path_for(name, &settings);
    if let Err(e) = std::fs::copy(&path, &out) {
        eprintln!(
            "--manifest-json: cannot copy {} to {out}: {e}",
            path.display()
        );
        std::process::exit(1);
    }
    println!("manifest JSON written to {out}");
}

/// Parsed arguments of the `campaign-dispatch` binary.
///
/// ```text
/// campaign-dispatch --name fig6 --bin target/release/fig6a --legs 2 \
///     [--steal|--no-steal] [--work-dir D] [--stall-timeout SECS] \
///     [--launcher TEMPLATE] [--hosts a,b,c] [--pull TEMPLATE] \
///     [--backoff BASE_MS:FACTOR:MAX_MS] [--no-reshard] [--chaos-seed N] \
///     [--manifest-json PATH] [--quiet] [-- LEG_ARGS...]
/// ```
///
/// Everything after `--` is passed to every leg verbatim (before the
/// dispatcher's own `--shard i/n`), so campaign knobs like
/// `--precision` / `--packets` / `--chunk` ride through unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchArgs {
    /// Campaign name (store/manifest file stem, e.g. `fig6`).
    pub name: String,
    /// Figure binary to launch as legs.
    pub bin: String,
    /// Shard count (`--legs`, default 2).
    pub legs: u32,
    /// Steal work from dead/stalled legs (default on).
    pub steal: bool,
    /// Working directory of the legs; their artifacts land under
    /// `<work-dir>/target/campaign/` (default `.`).
    pub work_dir: String,
    /// Stall timeout in seconds (`0` disables; default 600).
    pub stall_timeout_secs: u64,
    /// Copy the merged manifest here after a successful dispatch.
    pub manifest_json: Option<String>,
    /// Enable telemetry exposition: the dispatcher writes its own event
    /// log and every leg gets `--telemetry` appended (live snapshots
    /// double as the legs' heartbeat).
    pub telemetry: bool,
    /// Result-store backend forwarded to every leg as
    /// `--store-backend KIND` (`None`: legs use their default).
    pub store_backend: Option<BackendKind>,
    /// Launch-command template for the remote-capable
    /// `CommandLauncher` (`ssh {host} {cmd}`; tests use `sh -c {cmd}`).
    /// `None` launches legs as local child processes.
    pub launcher: Option<String>,
    /// Comma-separated `{host}` pool for `--launcher` (round-robin).
    pub hosts: Option<String>,
    /// Artifact pull-back template run after each `--launcher` leg
    /// exits or is killed.
    pub pull: Option<String>,
    /// Relaunch backoff schedule (`None`: the dispatcher default).
    pub backoff: Option<BackoffPolicy>,
    /// Elastic re-sharding of dead shards across idle slots
    /// (`--no-reshard` turns it off).
    pub reshard: bool,
    /// Chaos seed armed into every leg's environment (and the
    /// dispatcher's own launch failpoint).
    pub chaos_seed: Option<u64>,
    /// Silence leg stdout.
    pub quiet: bool,
    /// Arguments forwarded to every leg.
    pub leg_args: Vec<String>,
}

/// Largest accepted `--legs` value (mirrors
/// `resilience_core::campaign::dispatch::MAX_LEGS`).
const MAX_LEGS: u32 = resilience_core::campaign::dispatch::MAX_LEGS;

/// Parses `campaign-dispatch` argv (without the program name). Unlike
/// the figure binaries' lenient [`budget_from_args`], unknown or
/// malformed dispatcher flags are hard errors — a typo here silently
/// changes how many hosts' worth of compute gets launched.
pub fn dispatch_from_args(args: &[String]) -> Result<DispatchArgs, String> {
    let mut parsed = DispatchArgs {
        name: String::new(),
        bin: String::new(),
        legs: 2,
        steal: true,
        work_dir: ".".into(),
        stall_timeout_secs: 600,
        manifest_json: None,
        telemetry: false,
        store_backend: None,
        launcher: None,
        hosts: None,
        pull: None,
        backoff: None,
        reshard: true,
        chaos_seed: None,
        quiet: false,
        leg_args: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--name" => parsed.name = value("--name")?,
            "--bin" => parsed.bin = value("--bin")?,
            "--legs" => {
                // Every leg is a concurrently spawned child process, so
                // an implausible count (extra digits) must not parse —
                // it would fork-bomb the host before monitoring starts.
                parsed.legs = value("--legs")?
                    .parse()
                    .ok()
                    .filter(|&n| (1..=MAX_LEGS).contains(&n))
                    .ok_or_else(|| format!("--legs needs an integer in 1..={MAX_LEGS}"))?
            }
            "--steal" => parsed.steal = true,
            "--no-steal" => parsed.steal = false,
            "--work-dir" => parsed.work_dir = value("--work-dir")?,
            "--stall-timeout" => {
                parsed.stall_timeout_secs = value("--stall-timeout")?
                    .parse()
                    .map_err(|_| "--stall-timeout needs a number of seconds")?
            }
            "--manifest-json" => parsed.manifest_json = Some(value("--manifest-json")?),
            "--telemetry" => parsed.telemetry = true,
            "--store-backend" => parsed.store_backend = Some(value("--store-backend")?.parse()?),
            "--launcher" => parsed.launcher = Some(value("--launcher")?),
            "--hosts" => parsed.hosts = Some(value("--hosts")?),
            "--pull" => parsed.pull = Some(value("--pull")?),
            "--backoff" => parsed.backoff = Some(value("--backoff")?.parse::<BackoffPolicy>()?),
            "--no-reshard" => parsed.reshard = false,
            "--chaos-seed" => {
                parsed.chaos_seed = Some(
                    value("--chaos-seed")?
                        .parse()
                        .map_err(|_| "--chaos-seed needs an unsigned integer")?,
                )
            }
            "--quiet" => parsed.quiet = true,
            "--" => {
                parsed.leg_args = it.cloned().collect();
                break;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if parsed.name.is_empty() {
        return Err("--name <campaign> is required".into());
    }
    if parsed.bin.is_empty() {
        return Err("--bin <figure binary> is required".into());
    }
    if parsed.launcher.is_none() && (parsed.hosts.is_some() || parsed.pull.is_some()) {
        return Err("--hosts/--pull only apply to a --launcher template".into());
    }
    // Leg args that would break the dispatch contract are rejected, not
    // forwarded: `--shard` is the dispatcher's own to assign;
    // `--no-resume` would make every rescue leg truncate the straggler's
    // store and re-simulate it (the opposite of stealing); `--one-shot`
    // legs write no manifest, so every leg would be "rescued" to the
    // attempt cap; `--manifest-json` would have the legs race on one
    // output file (pass it to campaign-dispatch itself instead).
    for forbidden in ["--shard", "--no-resume", "--one-shot", "--manifest-json"] {
        if parsed.leg_args.iter().any(|a| a == forbidden) {
            return Err(format!(
                "leg argument '{forbidden}' conflicts with dispatching \
                 (the dispatcher owns sharding, store resume and manifest export)"
            ));
        }
    }
    Ok(parsed)
}

/// The value following a `--flag VALUE` pair, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
    }
    None
}

/// One human- and grep-friendly line per campaign (the CI resume-smoke
/// job parses the `store-hit rate` figure).
pub fn summary_line(s: &manifest::ManifestSummary) -> String {
    let t = s.totals;
    format!(
        "campaign {}: {} points ({} converged), store-hit rate: {:.1}% ({}/{} chunks, \
         {:.1}% of packets), packets {}/{} (saved {:.1}% vs fixed budget)",
        s.name,
        t.points_total,
        t.points_converged,
        t.store_hit_rate() * 100.0,
        t.store_chunks,
        t.total_chunks,
        t.store_packet_rate() * 100.0,
        t.realized_packets,
        t.budget_packets,
        t.saved_vs_fixed() * 100.0,
    )
}

/// Reads a manifest summary from an explicit path (benches and tests).
pub fn summary_at(path: &Path) -> Option<manifest::ManifestSummary> {
    manifest::read_summary(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_packets_and_seed() {
        let b = budget_from_args(&args(&["--packets", "12", "--seed", "99"]));
        assert_eq!(b.packets_per_point, 12);
        assert_eq!(b.seed, 99);
        assert_eq!(
            budget_from_args(&args(&["--max-packets", "7"])).packets_per_point,
            7
        );
    }

    #[test]
    fn ignores_unknown_args() {
        let b = budget_from_args(&args(&["--whatever", "--packets", "3"]));
        assert_eq!(b.packets_per_point, 3);
    }

    #[test]
    fn malformed_values_keep_defaults() {
        // Negative or fractional integer flags must not collapse to 0 —
        // they are ignored like any unparsable value.
        let d = budget_from_args(&[]);
        for bad in [
            &["--packets", "-5"][..],
            &["--packets", "3.7"],
            &["--threads", "-1"],
            &["--chunk", "0"],
        ] {
            let b = budget_from_args(&args(bad));
            assert_eq!(b.packets_per_point, d.packets_per_point, "{bad:?}");
            assert_eq!(b.threads, d.threads, "{bad:?}");
            assert_eq!(b.campaign, d.campaign, "{bad:?}");
        }
    }

    #[test]
    fn parses_threads() {
        assert_eq!(budget_from_args(&args(&["--threads", "4"])).threads, 4);
        assert_eq!(budget_from_args(&[]).threads, 0, "default is auto");
    }

    #[test]
    fn parses_batch_and_tier() {
        let b = budget_from_args(&args(&["--batch", "4", "--accuracy-tier", "fast32"]));
        assert_eq!(b.batch, 4);
        assert_eq!(b.accuracy_tier, AccuracyTier::Fast32);
        let d = budget_from_args(&[]);
        assert_eq!(d.batch, 0, "default is the engine's batch width");
        assert_eq!(d.accuracy_tier, AccuracyTier::Exact);
        // Malformed values keep the defaults, like every other flag.
        for bad in [&["--batch", "x"][..], &["--accuracy-tier", "f16"]] {
            let b = budget_from_args(&args(bad));
            assert_eq!(b.batch, d.batch, "{bad:?}");
            assert_eq!(b.accuracy_tier, d.accuracy_tier, "{bad:?}");
        }
        // The banner flags a non-default tier; the default stays silent.
        let text = banner("figX", "t", b);
        assert!(text.contains("tier fast32"), "{text}");
        assert!(
            !banner("figX", "t", d).contains("tier "),
            "default tier is silent"
        );
    }

    #[test]
    fn campaign_is_the_default_path() {
        let b = budget_from_args(&[]);
        let c = b.campaign.expect("campaign on by default");
        assert_eq!(c, CampaignSettings::default());
        assert!(c.resume);
    }

    #[test]
    fn campaign_flags() {
        let b = budget_from_args(&args(&[
            "--precision",
            "0.1",
            "--bler-floor",
            "0.05",
            "--chunk",
            "16",
            "--no-resume",
        ]));
        let c = b.campaign.unwrap();
        assert_eq!(c.precision, 0.1);
        assert_eq!(c.bler_floor, 0.05);
        assert_eq!(c.initial_chunk, 16);
        assert!(!c.resume);
    }

    #[test]
    fn parses_shard_and_target_ci() {
        use resilience_core::campaign::ShardSpec;
        let b = budget_from_args(&args(&["--shard", "1/4", "--target-ci", "0.05"]));
        let c = b.campaign.unwrap();
        assert_eq!(c.shard, ShardSpec::new(1, 4).unwrap());
        assert_eq!(c.target_ci, 0.05);
        let text = banner("fig6", "x", b);
        assert!(text.contains("target-ci 0.050"), "{text}");
        assert!(text.contains("shard 1/4"), "{text}");
        // Malformed values keep the defaults.
        let d = budget_from_args(&[]).campaign.unwrap();
        for bad in [
            &["--shard", "4/4"][..],
            &["--shard", "x"],
            &["--target-ci", "-0.1"],
            &["--target-ci", "0"],
        ] {
            assert_eq!(budget_from_args(&args(bad)).campaign.unwrap(), d, "{bad:?}");
        }
    }

    #[test]
    fn parses_store_backend() {
        // Figure binaries: lenient like every campaign knob.
        let b = budget_from_args(&args(&["--store-backend", "indexed"]));
        let c = b.campaign.unwrap();
        assert_eq!(c.backend, BackendKind::Indexed);
        let text = banner("fig6", "x", b);
        assert!(text.contains("store indexed"), "{text}");
        let d = budget_from_args(&[]).campaign.unwrap();
        assert_eq!(d.backend, BackendKind::Jsonl, "jsonl is the default");
        assert!(
            !banner("fig6", "x", budget_from_args(&[])).contains("store "),
            "default backend is silent"
        );
        assert_eq!(
            budget_from_args(&args(&["--store-backend", "sqlite"]))
                .campaign
                .unwrap(),
            d,
            "malformed backend keeps the default"
        );

        // Dispatcher: strict, forwarded to legs.
        let d = dispatch_from_args(&args(&[
            "--name",
            "c",
            "--bin",
            "b",
            "--store-backend",
            "indexed",
        ]))
        .unwrap();
        assert_eq!(d.store_backend, Some(BackendKind::Indexed));
        assert_eq!(
            dispatch_from_args(&args(&["--name", "c", "--bin", "b"]))
                .unwrap()
                .store_backend,
            None
        );
        let err = dispatch_from_args(&args(&[
            "--name",
            "c",
            "--bin",
            "b",
            "--store-backend",
            "sqlite",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown store backend"), "{err}");
    }

    #[test]
    fn flag_value_finds_pairs() {
        let a = args(&["--packets", "5", "--manifest-json", "out.json"]);
        assert_eq!(
            flag_value(&a, "--manifest-json").as_deref(),
            Some("out.json")
        );
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(
            flag_value(&args(&["--manifest-json"]), "--manifest-json"),
            None
        );
    }

    #[test]
    fn one_shot_disables_the_campaign() {
        let b = budget_from_args(&args(&["--one-shot", "--packets", "5"]));
        assert!(b.campaign.is_none());
        assert_eq!(b.packets_per_point, 5);
        assert!(banner("figX", "test", b).contains("one-shot"));
    }

    #[test]
    fn banner_mentions_figure_and_mode() {
        let b = budget_from_args(&[]);
        let text = banner("fig6", "throughput", b);
        assert!(text.contains("fig6"));
        assert!(text.contains("campaign: precision"));
    }

    #[test]
    fn dispatch_args_parse_and_validate() {
        let d = dispatch_from_args(&args(&[
            "--name",
            "fig6",
            "--bin",
            "target/release/fig6a",
            "--legs",
            "3",
            "--no-steal",
            "--stall-timeout",
            "30",
            "--manifest-json",
            "out.json",
            "--quiet",
            "--",
            "--precision",
            "0.2",
        ]))
        .expect("full flag set parses");
        assert_eq!(d.name, "fig6");
        assert_eq!(d.legs, 3);
        assert!(!d.steal);
        assert_eq!(d.stall_timeout_secs, 30);
        assert_eq!(d.manifest_json.as_deref(), Some("out.json"));
        assert!(d.quiet);
        assert_eq!(d.leg_args, args(&["--precision", "0.2"]));

        // Defaults: 2 legs, steal on, cwd work dir.
        let d = dispatch_from_args(&args(&["--name", "c", "--bin", "b"])).unwrap();
        assert_eq!((d.legs, d.steal, d.work_dir.as_str()), (2, true, "."));

        // The dispatcher is strict where the figure binaries are
        // lenient: missing requireds, unknown flags and malformed
        // values are hard errors.
        for bad in [
            &["--bin", "b"][..],
            &["--name", "c"],
            &["--name", "c", "--bin", "b", "--legs", "0"],
            &["--name", "c", "--bin", "b", "--legs", "x"],
            &["--name", "c", "--bin", "b", "--legs", "2000000"],
            &["--name", "c", "--bin", "b", "--what"],
            &["--name"],
        ] {
            assert!(dispatch_from_args(&args(bad)).is_err(), "{bad:?}");
        }

        // Leg args that would subvert the dispatch contract are
        // rejected: --no-resume turns stealing into re-simulation,
        // --one-shot legs write no manifest, --shard belongs to the
        // dispatcher, --manifest-json would race across legs.
        for forbidden in ["--shard", "--no-resume", "--one-shot", "--manifest-json"] {
            let err = dispatch_from_args(&args(&["--name", "c", "--bin", "b", "--", forbidden]))
                .unwrap_err();
            assert!(err.contains(forbidden), "{err}");
        }
        assert!(
            dispatch_from_args(&args(&["--name", "c", "--bin", "b", "--", "--resume"])).is_ok(),
            "--resume is the contract, not a conflict"
        );
    }

    #[test]
    fn chaos_and_launcher_flags_parse() {
        use std::time::Duration;

        // Figure binaries: `--chaos-seed` arms the process-global
        // failpoint switch and leaves the budget untouched, exactly
        // like `--telemetry`.
        assert!(!resilience_core::failpoint::armed());
        let b = budget_from_args(&args(&["--chaos-seed", "42"]));
        assert!(resilience_core::failpoint::armed());
        assert_eq!(b.campaign, budget_from_args(&[]).campaign);
        resilience_core::failpoint::disarm();

        // Dispatcher: strict config bits, nothing armed at parse time.
        let d = dispatch_from_args(&args(&[
            "--name",
            "c",
            "--bin",
            "b",
            "--launcher",
            "ssh {host} {cmd}",
            "--hosts",
            "alpha,beta",
            "--pull",
            "rsync {host}:dir dir",
            "--backoff",
            "100:2:5000",
            "--no-reshard",
            "--chaos-seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(d.launcher.as_deref(), Some("ssh {host} {cmd}"));
        assert_eq!(d.hosts.as_deref(), Some("alpha,beta"));
        assert_eq!(d.pull.as_deref(), Some("rsync {host}:dir dir"));
        let backoff = d.backoff.unwrap();
        assert_eq!(backoff.base, Duration::from_millis(100));
        assert_eq!(backoff.max, Duration::from_millis(5000));
        assert!(!d.reshard);
        assert_eq!(d.chaos_seed, Some(7));
        assert!(!resilience_core::failpoint::armed());

        let d = dispatch_from_args(&args(&["--name", "c", "--bin", "b"])).unwrap();
        assert!(d.reshard, "re-sharding defaults on");
        assert_eq!((d.launcher, d.backoff, d.chaos_seed), (None, None, None));

        for bad in [
            &["--name", "c", "--bin", "b", "--backoff", "100:2"][..],
            &["--name", "c", "--bin", "b", "--chaos-seed", "x"],
            &["--name", "c", "--bin", "b", "--hosts", "alpha"],
            &["--name", "c", "--bin", "b", "--pull", "scp x y"],
        ] {
            assert!(dispatch_from_args(&args(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn summary_line_is_grepable() {
        let s = manifest::ManifestSummary {
            name: "fig6".into(),
            totals: manifest::ManifestTotals {
                points_total: 10,
                points_converged: 8,
                total_chunks: 20,
                store_chunks: 20,
                store_packets: 300,
                realized_packets: 400,
                budget_packets: 600,
            },
        };
        let line = summary_line(&s);
        assert!(line.contains("store-hit rate: 100.0%"), "{line}");
        assert!(line.contains("75.0% of packets"), "{line}");
        assert!(line.contains("saved 33.3%"), "{line}");
    }

    #[test]
    fn telemetry_flags_parse() {
        // Figure binaries: `--telemetry` flips the process-global
        // exposition switch and leaves the budget (and hence the
        // manifest-rendered settings) untouched.
        assert!(!resilience_core::telemetry::enabled());
        let b = budget_from_args(&args(&["--telemetry"]));
        assert!(resilience_core::telemetry::enabled());
        assert_eq!(b.campaign, budget_from_args(&[]).campaign);
        resilience_core::telemetry::set_enabled(false);

        // Dispatcher: `--telemetry` is a plain config bit.
        let d = dispatch_from_args(&args(&["--name", "c", "--bin", "b", "--telemetry"])).unwrap();
        assert!(d.telemetry);
        assert!(
            !dispatch_from_args(&args(&["--name", "c", "--bin", "b"]))
                .unwrap()
                .telemetry
        );
        // Legs may receive it verbatim (the dispatcher forwards it).
        assert!(
            dispatch_from_args(&args(&["--name", "c", "--bin", "b", "--", "--telemetry"])).is_ok()
        );
    }
}
