//! One-packet link simulation through the (possibly faulty) LLR memory.
//!
//! [`LinkSimulator`] wires the full chain of the paper's Fig. 1:
//!
//! ```text
//! payload → CRC24 → turbo encode → rate match(RV) → channel interleave
//!        → QAM modulate → fading channel + noise → MMSE equalize
//!        → soft demap → deinterleave → HARQ combine ⟷ LLR MEMORY
//!        → turbo decode → CRC check → ACK / retransmission
//! ```
//!
//! The LLR memory is any [`LlrBuffer`]; swapping in a
//! [`crate::FaultyLlrBuffer`] realizes the paper's fault-injection
//! methodology with zero changes to the protocol code.
//!
//! # Parallel execution
//!
//! The simulator is split for the Monte-Carlo engine
//! ([`crate::engine::SimulationEngine`]): all codec state — CRC, turbo
//! code, rate matcher (with its cached RV index maps), channel
//! interleaver, channel model — lives behind one shared [`Arc`], so
//! cloning a `LinkSimulator` hands a worker thread a cheap handle instead
//! of rebuilding interleaver tables. All per-packet mutable state lives
//! in the caller-owned [`PacketScratch`], whose buffers (including the
//! [`DspScratch`] with the turbo-decoder trellis, equalizer design and
//! channel-realization workspaces) are reused across packets so the
//! steady-state packet loop performs no heap allocation anywhere in the
//! chain.

use std::sync::Arc;

use rand::rngs::StdRng;

use dsp::rng::random_bits_into;
use dsp::Complex64;
use hspa_phy::channel::{
    AwgnChannel, ChannelModel, ChannelRealization, CorrelatedFadingChannel, MultipathChannel,
};
use hspa_phy::crc::Crc;
use hspa_phy::equalizer::EqScratch;
use hspa_phy::harq::{HarqProcess, LlrBuffer};
use hspa_phy::interleave::ChannelInterleaver;
use hspa_phy::rate_match::RateMatcher;
use hspa_phy::turbo::{
    AccuracyTier, DecodeResult, DecoderConfig, TurboBatchScratch, TurboCode, TurboScratch,
};

use crate::config::{ChannelKind, SystemConfig};

/// Result of simulating one transport block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketOutcome {
    /// 1-based transmission on which the CRC passed, or `None`.
    pub success_after: Option<usize>,
    /// Transmissions actually sent.
    pub transmissions_used: usize,
}

/// The immutable components of the link, shared between worker handles.
struct LinkCore {
    config: SystemConfig,
    crc: Crc,
    code: TurboCode,
    rate_matcher: RateMatcher,
    interleaver: ChannelInterleaver,
    channel: Box<dyn ChannelModel + Send + Sync>,
}

/// Per-stage wall-clock accumulators of [`LinkSimulator::simulate_packet_with`].
///
/// The counters always advance: a stage boundary costs one monotonic
/// clock read (vDSO `clock_gettime`, ~tens of ns) against stages that
/// run for tens of microseconds, so the always-on overhead is well
/// under 1% of serial throughput — pinned by the `serial_telemetry`
/// entry of `BENCH_engine.json` and the nightly bench gate. The engine
/// flushes these into the global [`crate::telemetry`] stage counters
/// once per shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Payload generation + CRC attach + turbo encode (once per packet).
    pub encode: u64,
    /// Rate matching + channel interleaving + modulation.
    pub modulate: u64,
    /// Channel realization + propagation + noise.
    pub channel: u64,
    /// MMSE design + filtering (or the flat-channel scalar path).
    pub equalize: u64,
    /// Soft demapping + deinterleaving.
    pub demap: u64,
    /// HARQ combining through the LLR buffer.
    pub harq: u64,
    /// Turbo decoding + CRC check.
    pub decode: u64,
}

impl StageNanos {
    /// Total accounted nanoseconds.
    pub fn total(&self) -> u64 {
        self.encode
            + self.modulate
            + self.channel
            + self.equalize
            + self.demap
            + self.harq
            + self.decode
    }
}

/// The DSP-stage scratch owned by [`PacketScratch`]: persistent buffers
/// for the turbo codec (trellis matrices, extrinsic/posterior streams,
/// de-multiplexed observations), the MMSE equalizer workspace, the
/// channel realization and the encode-side bit vectors. Together with
/// the transmission buffers in `PacketScratch` it makes the steady-state
/// packet loop perform **zero heap allocations**.
#[derive(Debug, Clone)]
pub struct DspScratch {
    payload: Vec<u8>,
    block: Vec<u8>,
    coded: Vec<u8>,
    realization: ChannelRealization,
    turbo: TurboScratch,
    /// Single-lane batch workspace backing the `Fast32` tier in the
    /// scalar packet path (the lockstep kernel is the `f32` reference).
    turbo_batch: TurboBatchScratch,
    decoded: DecodeResult,
    eq: EqScratch,
}

impl Default for DspScratch {
    fn default() -> Self {
        Self {
            payload: Vec::new(),
            block: Vec::new(),
            coded: Vec::new(),
            realization: ChannelRealization::empty(),
            turbo: TurboScratch::new(),
            turbo_batch: TurboBatchScratch::new(),
            decoded: DecodeResult::new(),
            eq: EqScratch::new(),
        }
    }
}

/// Reusable per-packet work buffers (one per worker thread).
///
/// Every vector is cleared and refilled in place each transmission, so
/// after the first packet the steady state performs no heap allocation
/// anywhere in the chain — encode, modulation, channel, equalization,
/// demapping, HARQ combining and turbo decoding all run out of this
/// scratch (the DSP-side buffers live in the owned [`DspScratch`]).
/// `tests/alloc_regression.rs` pins that invariant via
/// [`PacketScratch::heap_capacities`].
#[derive(Default)]
pub struct PacketScratch {
    tx_bits: Vec<u8>,
    tx_interleaved: Vec<u8>,
    symbols: Vec<Complex64>,
    received: Vec<Complex64>,
    equalized: Vec<Complex64>,
    llrs: Vec<f64>,
    llrs_deinterleaved: Vec<f64>,
    combined: Vec<f64>,
    dsp: DspScratch,
    /// Per-stage time breakdown (always advancing; see [`StageNanos`]).
    pub stage_nanos: StageNanos,
}

impl PacketScratch {
    /// Fresh scratch space; buffers grow to steady-state size on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacities of every heap buffer reachable from this scratch, in a
    /// stable order — the steady-state zero-allocation invariant is
    /// "this snapshot stops changing once the buffers are warm", which
    /// `tests/alloc_regression.rs` asserts.
    pub fn heap_capacities(&self) -> Vec<usize> {
        let mut caps = vec![
            self.tx_bits.capacity(),
            self.tx_interleaved.capacity(),
            self.symbols.capacity(),
            self.received.capacity(),
            self.equalized.capacity(),
            self.llrs.capacity(),
            self.llrs_deinterleaved.capacity(),
            self.combined.capacity(),
            self.dsp.payload.capacity(),
            self.dsp.block.capacity(),
            self.dsp.coded.capacity(),
            self.dsp.realization.taps.capacity(),
            self.dsp.decoded.bits.capacity(),
            self.dsp.decoded.llrs.capacity(),
        ];
        self.dsp.turbo.heap_capacities(&mut caps);
        self.dsp.turbo_batch.heap_capacities(&mut caps);
        self.dsp.eq.heap_capacities(&mut caps);
        caps
    }

    /// Resets the per-stage timing counters.
    pub fn reset_stage_nanos(&mut self) {
        self.stage_nanos = StageNanos::default();
    }
}

/// Times `$body` into the `$field` stage counter of the scratch — the
/// inlined span form for the packet hot path: two monotonic clock reads
/// and a plain `u64` add, no atomics (the engine flushes scratch
/// tallies into the global telemetry counters once per shard).
macro_rules! stage {
    ($scratch:expr, $field:ident, $body:expr) => {{
        // determinism: wallclock(stage timing telemetry; nanos feed counters, never the decoded bits)
        let __stage_start = std::time::Instant::now();
        let result = $body;
        $scratch.stage_nanos.$field += __stage_start.elapsed().as_nanos() as u64;
        result
    }};
}

/// The standing link simulator for one [`SystemConfig`].
///
/// Cloning is cheap (an [`Arc`] bump): clones share the codecs and
/// channel model, which are immutable after construction.
#[derive(Clone)]
pub struct LinkSimulator {
    core: Arc<LinkCore>,
}

impl std::fmt::Debug for LinkSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkSimulator")
            .field("config", &self.core.config)
            .field("channel", &self.core.channel.name())
            .finish()
    }
}

impl LinkSimulator {
    /// Builds the simulator, instantiating codec, interleavers and channel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Self {
        config.validate();
        let code = TurboCode::new(config.turbo_k()).expect("validated turbo length");
        let rate_matcher = RateMatcher::new(config.turbo_k(), config.channel_bits_per_tx);
        let interleaver = ChannelInterleaver::new(config.channel_bits_per_tx);
        let channel: Box<dyn ChannelModel + Send + Sync> = match config.channel {
            ChannelKind::Awgn => Box::new(AwgnChannel),
            ChannelKind::PedestrianA => Box::new(MultipathChannel::pedestrian_a_symbol_rate()),
            ChannelKind::VehicularA => Box::new(MultipathChannel::vehicular_a_chip_rate()),
            ChannelKind::CorrelatedSlowFading => {
                // Normalized Doppler of 0.05 per HARQ round trip: fades
                // persist across a retransmission burst.
                Box::new(CorrelatedFadingChannel::new(&[1.0], 0.05, 0xc0_44e1))
            }
        };
        Self {
            core: Arc::new(LinkCore {
                config,
                crc: Crc::gcrc24(),
                code,
                rate_matcher,
                interleaver,
                channel,
            }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.core.config
    }

    /// Simulates one transport block at `snr_db` through `buffer`.
    ///
    /// Convenience wrapper over [`LinkSimulator::simulate_packet_with`]
    /// that allocates throwaway scratch space. Loops should hold a
    /// [`PacketScratch`] and call the `_with` variant instead.
    pub fn simulate_packet<B: LlrBuffer>(
        &self,
        snr_db: f64,
        buffer: &mut B,
        rng: &mut StdRng,
    ) -> PacketOutcome {
        let mut scratch = PacketScratch::new();
        self.simulate_packet_with(snr_db, buffer, rng, &mut scratch)
    }

    /// Simulates one transport block at `snr_db` through `buffer`, using
    /// caller-owned scratch buffers.
    ///
    /// The buffer is reset at block start (new HARQ process) and carries
    /// the combined LLRs across retransmissions — through whatever
    /// corruption the backend applies.
    pub fn simulate_packet_with<B: LlrBuffer>(
        &self,
        snr_db: f64,
        buffer: &mut B,
        rng: &mut StdRng,
        scratch: &mut PacketScratch,
    ) -> PacketOutcome {
        let core = &*self.core;
        let cfg = &core.config;
        stage!(scratch, encode, {
            random_bits_into(rng, cfg.payload_bits, &mut scratch.dsp.payload);
            core.crc
                .attach_into(&scratch.dsp.payload, &mut scratch.dsp.block);
            core.code
                .encode_into(&scratch.dsp.block, &mut scratch.dsp.coded);
        });

        let mut harq = HarqProcess::new(&core.rate_matcher, cfg.combining, &mut *buffer);
        harq.start_block();
        // Time-correlated channels anchor the whole block's fades here;
        // memoryless channels consume nothing.
        let block_phase = core.channel.block_phase(rng);

        for attempt in 0..cfg.max_transmissions {
            let rv = cfg.combining.rv(attempt);
            stage!(scratch, modulate, {
                core.rate_matcher
                    .rate_match_into(&scratch.dsp.coded, rv, &mut scratch.tx_bits);
                core.interleaver
                    .interleave_into(&scratch.tx_bits, &mut scratch.tx_interleaved);
                cfg.modulation
                    .modulate_into(&scratch.tx_interleaved, &mut scratch.symbols);
            });

            // Per-(re)transmission realization: independent block fading
            // for memoryless channels, correlated along `block_phase` for
            // the slow-fading model.
            stage!(scratch, channel, {
                core.channel.realize_attempt_into(
                    snr_db,
                    block_phase,
                    attempt,
                    rng,
                    &mut scratch.dsp.realization,
                );
                scratch
                    .dsp
                    .realization
                    .apply_into(&scratch.symbols, rng, &mut scratch.received);
            });

            let eff_noise: f64 = stage!(scratch, equalize, {
                if scratch.dsp.realization.taps.len() == 1 {
                    // Flat channel: scalar MMSE (derotate + bias-correct).
                    let h = scratch.dsp.realization.taps[0];
                    let g = h.norm_sqr();
                    let inv = h.conj() / (g.max(1e-12));
                    scratch.equalized.clear();
                    scratch
                        .equalized
                        .extend(scratch.received.iter().map(|&y| y * inv));
                    scratch.dsp.realization.noise_var / g.max(1e-12)
                } else {
                    scratch
                        .dsp
                        .eq
                        .design(&scratch.dsp.realization, cfg.equalizer_taps)
                        .expect("MMSE design is PD for positive noise");
                    scratch
                        .dsp
                        .eq
                        .equalize_into(&scratch.received, &mut scratch.equalized);
                    scratch.dsp.eq.noise_var()
                }
            });

            stage!(scratch, demap, {
                cfg.modulation.demodulate_soft_into(
                    &scratch.equalized,
                    eff_noise.max(1e-9),
                    &mut scratch.llrs,
                );
                core.interleaver
                    .deinterleave_into(&scratch.llrs, &mut scratch.llrs_deinterleaved);
            });
            stage!(scratch, harq, {
                harq.combine_transmission_into(
                    attempt,
                    &scratch.llrs_deinterleaved,
                    &mut scratch.combined,
                );
            });

            // Decode under the configured accuracy tier. `Exact` keeps
            // the agreement early-stop (bit-exact reference semantics);
            // `EarlyStop` adds the CRC-gated iteration stop, which is
            // faster on marginal packets but measurably changes
            // Monte-Carlo outcomes — an intermediate iteration can hit a
            // CRC-valid block that later iterations walk away from — so
            // it is opt-in and keyed into the campaign fingerprint;
            // `Fast32` runs the single-precision lockstep kernel.
            let crc_ok = stage!(scratch, decode, {
                match cfg.accuracy_tier {
                    AccuracyTier::Exact => {
                        core.code.decode_into(
                            &scratch.combined,
                            cfg.decoder_iterations,
                            &mut scratch.dsp.turbo,
                            &mut scratch.dsp.decoded,
                        );
                    }
                    AccuracyTier::EarlyStop => {
                        core.code.decode_into_with_stop(
                            &scratch.combined,
                            cfg.decoder_iterations,
                            &mut scratch.dsp.turbo,
                            &mut scratch.dsp.decoded,
                            &|bits: &[u8]| core.crc.check(bits),
                        );
                    }
                    AccuracyTier::Fast32 => {
                        let batch = &mut scratch.dsp.turbo_batch;
                        batch.begin_batch(scratch.combined.len());
                        batch.push_lane(&scratch.combined);
                        core.code.decode_batch(
                            DecoderConfig::new(cfg.decoder_iterations, AccuracyTier::Fast32),
                            batch,
                            None,
                        );
                        let decoded = &mut scratch.dsp.decoded;
                        decoded.bits.clear();
                        decoded.bits.extend_from_slice(batch.bits(0));
                        decoded.llrs.clear();
                        decoded.llrs.extend_from_slice(batch.llrs(0));
                        decoded.iterations_run = batch.iterations_run(0);
                    }
                }
                core.crc.check(&scratch.dsp.decoded.bits)
            });
            if crc_ok {
                return PacketOutcome {
                    success_after: Some(attempt + 1),
                    transmissions_used: attempt + 1,
                };
            }
        }
        PacketOutcome {
            success_after: None,
            transmissions_used: cfg.max_transmissions,
        }
    }

    /// Simulates a wave of `N` transport blocks in lockstep: every lane
    /// runs the per-lane front end (encode, rate match, channel,
    /// equalize, demap, HARQ combine) against its own buffer and RNG,
    /// then all still-active lanes decode together through
    /// [`TurboCode::decode_batch`]; lanes whose CRC passes (or whose
    /// retransmission budget is spent) drop out of subsequent attempts.
    ///
    /// Lane `l` consumes exactly the RNG/buffer operation sequence of
    /// `simulate_packet_with(snr_db, &mut buffers[l], &mut rngs[l], ..)`
    /// and — because batched decoding is bit-identical lane for lane —
    /// produces exactly the same [`PacketOutcome`], at every wave width.
    /// The engine relies on this to keep batched campaign results
    /// byte-identical to unbatched ones.
    ///
    /// Decode time is not attributed to per-lane [`StageNanos`] in wave
    /// mode (one batched decode serves many lanes); front-end stages
    /// still accumulate per lane.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree or a buffer has the wrong
    /// capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_wave_with<B: LlrBuffer>(
        &self,
        snr_db: f64,
        buffers: &mut [B],
        rngs: &mut [StdRng],
        scratches: &mut [PacketScratch],
        batch: &mut TurboBatchScratch,
        wave: &mut WaveScratch,
        out: &mut [PacketOutcome],
    ) {
        let core = &*self.core;
        let cfg = &core.config;
        let lanes = buffers.len();
        assert_eq!(rngs.len(), lanes, "one RNG per lane");
        assert_eq!(scratches.len(), lanes, "one scratch per lane");
        assert_eq!(out.len(), lanes, "one outcome per lane");

        wave.block_phase.clear();
        wave.active.clear();
        for l in 0..lanes {
            let scratch = &mut scratches[l];
            let rng = &mut rngs[l];
            stage!(scratch, encode, {
                random_bits_into(rng, cfg.payload_bits, &mut scratch.dsp.payload);
                core.crc
                    .attach_into(&scratch.dsp.payload, &mut scratch.dsp.block);
                core.code
                    .encode_into(&scratch.dsp.block, &mut scratch.dsp.coded);
            });
            // New HARQ process per lane (= HarqProcess::start_block).
            buffers[l].reset();
            wave.block_phase.push(core.channel.block_phase(rng));
            out[l] = PacketOutcome {
                success_after: None,
                transmissions_used: 0,
            };
            wave.active.push(l);
        }

        for attempt in 0..cfg.max_transmissions {
            if wave.active.is_empty() {
                break;
            }
            batch.begin_batch(cfg.coded_len());
            for &l in &wave.active {
                let scratch = &mut scratches[l];
                let rng = &mut rngs[l];
                let rv = cfg.combining.rv(attempt);
                stage!(scratch, modulate, {
                    core.rate_matcher
                        .rate_match_into(&scratch.dsp.coded, rv, &mut scratch.tx_bits);
                    core.interleaver
                        .interleave_into(&scratch.tx_bits, &mut scratch.tx_interleaved);
                    cfg.modulation
                        .modulate_into(&scratch.tx_interleaved, &mut scratch.symbols);
                });
                stage!(scratch, channel, {
                    core.channel.realize_attempt_into(
                        snr_db,
                        wave.block_phase[l],
                        attempt,
                        rng,
                        &mut scratch.dsp.realization,
                    );
                    scratch.dsp.realization.apply_into(
                        &scratch.symbols,
                        rng,
                        &mut scratch.received,
                    );
                });
                let eff_noise: f64 = stage!(scratch, equalize, {
                    if scratch.dsp.realization.taps.len() == 1 {
                        let h = scratch.dsp.realization.taps[0];
                        let g = h.norm_sqr();
                        let inv = h.conj() / (g.max(1e-12));
                        scratch.equalized.clear();
                        scratch
                            .equalized
                            .extend(scratch.received.iter().map(|&y| y * inv));
                        scratch.dsp.realization.noise_var / g.max(1e-12)
                    } else {
                        scratch
                            .dsp
                            .eq
                            .design(&scratch.dsp.realization, cfg.equalizer_taps)
                            .expect("MMSE design is PD for positive noise");
                        scratch
                            .dsp
                            .eq
                            .equalize_into(&scratch.received, &mut scratch.equalized);
                        scratch.dsp.eq.noise_var()
                    }
                });
                stage!(scratch, demap, {
                    cfg.modulation.demodulate_soft_into(
                        &scratch.equalized,
                        eff_noise.max(1e-9),
                        &mut scratch.llrs,
                    );
                    core.interleaver
                        .deinterleave_into(&scratch.llrs, &mut scratch.llrs_deinterleaved);
                });
                stage!(scratch, harq, {
                    let mut harq =
                        HarqProcess::new(&core.rate_matcher, cfg.combining, &mut buffers[l]);
                    harq.combine_transmission_into(
                        attempt,
                        &scratch.llrs_deinterleaved,
                        &mut scratch.combined,
                    );
                });
                batch.push_lane(&scratch.combined);
            }

            let dcfg = DecoderConfig::new(cfg.decoder_iterations, cfg.accuracy_tier);
            // The whole wave decodes in one batched call, so its time is
            // recorded against lane 0's scratch (per-lane attribution is
            // meaningless for a lockstep group).
            stage!(scratches[0], decode, {
                match cfg.accuracy_tier {
                    AccuracyTier::EarlyStop => {
                        let stop = |_lane: usize, bits: &[u8]| core.crc.check(bits);
                        core.code.decode_batch(dcfg, batch, Some(&stop));
                    }
                    AccuracyTier::Exact | AccuracyTier::Fast32 => {
                        core.code.decode_batch(dcfg, batch, None);
                    }
                }
            });

            wave.next_active.clear();
            for (i, &l) in wave.active.iter().enumerate() {
                out[l].transmissions_used = attempt + 1;
                if core.crc.check(batch.bits(i)) {
                    out[l].success_after = Some(attempt + 1);
                } else {
                    wave.next_active.push(l);
                }
            }
            std::mem::swap(&mut wave.active, &mut wave.next_active);
        }
    }
}

/// Reusable wave-level bookkeeping of
/// [`LinkSimulator::simulate_wave_with`]: per-lane block phases and the
/// active-lane worklist. Steady state is allocation-free, pinned by
/// [`WaveScratch::heap_capacities`].
#[derive(Debug, Clone, Default)]
pub struct WaveScratch {
    block_phase: Vec<f64>,
    active: Vec<usize>,
    next_active: Vec<usize>,
}

impl WaveScratch {
    /// Fresh scratch; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the capacity of every owned heap buffer to `out`.
    pub fn heap_capacities(&self, out: &mut Vec<usize>) {
        out.extend([
            self.block_phase.capacity(),
            self.active.capacity(),
            self.next_active.capacity(),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::QuantizedLlrBuffer;
    use dsp::rng::seeded;
    use hspa_phy::harq::PerfectLlrBuffer;

    #[test]
    fn high_snr_awgn_decodes_first_try() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(1);
        for _ in 0..5 {
            let out = sim.simulate_packet(25.0, &mut buffer, &mut rng);
            assert_eq!(out.success_after, Some(1));
        }
    }

    #[test]
    fn very_low_snr_fails() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(2);
        let mut failures = 0;
        for _ in 0..5 {
            let out = sim.simulate_packet(-10.0, &mut buffer, &mut rng);
            if out.success_after.is_none() {
                failures += 1;
            }
        }
        assert!(failures >= 4, "expected near-total failure at -10 dB");
    }

    #[test]
    fn harq_rescues_marginal_snr() {
        // Pick an SNR where single transmissions often fail but the
        // retransmission budget saves most packets.
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(3);
        let mut needed_retx = 0;
        let mut delivered = 0;
        for _ in 0..12 {
            let out = sim.simulate_packet(2.0, &mut buffer, &mut rng);
            if let Some(t) = out.success_after {
                delivered += 1;
                if t > 1 {
                    needed_retx += 1;
                }
            }
        }
        assert!(
            delivered >= 9,
            "HARQ should deliver most packets, got {delivered}"
        );
        assert!(
            needed_retx >= 1,
            "expected at least one packet needing HARQ"
        );
    }

    #[test]
    fn quantized_buffer_matches_perfect_at_high_snr() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let mut qbuf = QuantizedLlrBuffer::new(cfg.coded_len(), cfg.quantizer());
        let mut rng = seeded(4);
        for _ in 0..5 {
            let out = sim.simulate_packet(25.0, &mut qbuf, &mut rng);
            assert_eq!(
                out.success_after,
                Some(1),
                "10-bit quantization must be transparent"
            );
        }
    }

    #[test]
    fn fading_channel_runs() {
        let mut cfg = SystemConfig::fast_test();
        cfg.channel = crate::config::ChannelKind::PedestrianA;
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(5);
        let mut delivered = 0;
        for _ in 0..8 {
            if sim
                .simulate_packet(30.0, &mut buffer, &mut rng)
                .success_after
                .is_some()
            {
                delivered += 1;
            }
        }
        assert!(delivered >= 6, "30 dB fading should deliver most packets");
    }

    #[test]
    fn dispersive_channel_runs() {
        let mut cfg = SystemConfig::fast_test();
        cfg.channel = crate::config::ChannelKind::VehicularA;
        cfg.equalizer_taps = 21;
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(6);
        let out = sim.simulate_packet(30.0, &mut buffer, &mut rng);
        assert!(out.transmissions_used >= 1);
    }

    #[test]
    fn correlated_fading_channel_runs() {
        let mut cfg = SystemConfig::fast_test();
        cfg.channel = crate::config::ChannelKind::CorrelatedSlowFading;
        let sim = LinkSimulator::new(cfg);
        let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
        let mut rng = seeded(31);
        let mut delivered = 0;
        for _ in 0..8 {
            if sim
                .simulate_packet(30.0, &mut buffer, &mut rng)
                .success_after
                .is_some()
            {
                delivered += 1;
            }
        }
        assert!(
            delivered >= 5,
            "30 dB slow fading should deliver most packets"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let run = |seed| {
            let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
            let mut rng = seeded(seed);
            (0..4)
                .map(|_| {
                    sim.simulate_packet(4.0, &mut buffer, &mut rng)
                        .success_after
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch reused across packets must not change results
        // versus a fresh scratch per packet (stale-state check).
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let reused: Vec<_> = {
            let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
            let mut rng = seeded(8);
            let mut scratch = PacketScratch::new();
            (0..4)
                .map(|_| {
                    sim.simulate_packet_with(4.0, &mut buffer, &mut rng, &mut scratch)
                        .success_after
                })
                .collect()
        };
        let fresh: Vec<_> = {
            let mut buffer = PerfectLlrBuffer::new(cfg.coded_len());
            let mut rng = seeded(8);
            (0..4)
                .map(|_| {
                    sim.simulate_packet(4.0, &mut buffer, &mut rng)
                        .success_after
                })
                .collect()
        };
        assert_eq!(reused, fresh);
    }

    #[test]
    fn clones_share_the_core() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let clone = sim.clone();
        assert!(
            Arc::ptr_eq(&sim.core, &clone.core),
            "clone must be a handle"
        );
    }
}
