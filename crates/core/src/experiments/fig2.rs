//! Fig. 2 — decoding-failure probability (BLER) over HARQ transmissions.
//!
//! Reproduces the paper's motivation figure: BLER after each incremental
//! transmission for a high (29 dB), medium (11 dB) and low (3 dB) SNR
//! regime, on the defect-free system. Expected shape: ≈95 % first-try
//! decoding at 29 dB; a considerable fraction at 11 dB; virtually all
//! packets retransmitted at 3 dB, with HARQ combining steadily lowering the
//! failure probability.

use dsp::stats::wilson_interval;
use serde::{Deserialize, Serialize};

use crate::campaign::controller::WILSON_Z;
use crate::config::SystemConfig;
use crate::engine::PointSpec;
use crate::montecarlo::StorageConfig;
use crate::report::{render_series_table, Series};
use crate::simulator::LinkSimulator;

use super::ExperimentBudget;

/// The paper's three SNR regimes (dB).
pub const SNR_REGIMES: [f64; 3] = [3.0, 11.0, 29.0];

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// One BLER-vs-transmission curve per SNR regime.
    pub bler: Vec<BlerCurve>,
}

/// BLER after each transmission at one SNR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlerCurve {
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// `bler[t]` = failure probability after transmission `t+1`.
    pub bler: Vec<f64>,
    /// 95 % Wilson interval per transmission — the achieved precision of
    /// the (possibly adaptive) packet budget.
    pub ci: Vec<(f64, f64)>,
}

/// Runs the experiment.
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget) -> Fig2Result {
    let sim = LinkSimulator::new(*cfg);
    let specs: Vec<PointSpec> = SNR_REGIMES
        .iter()
        .enumerate()
        .map(|(i, &snr_db)| PointSpec {
            storage: StorageConfig::Quantized,
            snr_db,
            n_packets: budget.packets_per_point,
            seed: budget.seed.wrapping_add(i as u64),
        })
        .collect();
    let bler = budget
        .runner("fig2")
        .run_batch(&sim, &specs)
        .iter()
        .zip(&SNR_REGIMES)
        .map(|(stats, &snr)| BlerCurve {
            snr_db: snr,
            bler: (1..=cfg.max_transmissions)
                .map(|t| stats.bler_after(t))
                .collect(),
            ci: (1..=cfg.max_transmissions)
                .map(|t| wilson_interval(stats.failures_at[t - 1], stats.packets, WILSON_Z))
                .collect(),
        })
        .collect();
    Fig2Result { bler }
}

impl Fig2Result {
    /// Formats the result as the Fig. 2 table.
    pub fn table(&self) -> String {
        let max_tx = self.bler.first().map(|c| c.bler.len()).unwrap_or(0);
        let x: Vec<f64> = (1..=max_tx).map(|t| t as f64).collect();
        let series: Vec<Series> = self
            .bler
            .iter()
            .map(|c| {
                Series::new(format!("SNR={:.0}dB", c.snr_db), x.clone(), c.bler.clone())
                    .with_ci(c.ci.clone())
            })
            .collect();
        render_series_table("tx#", &series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shapes() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke());
        assert_eq!(res.bler.len(), 3);
        for curve in &res.bler {
            assert_eq!(curve.bler.len(), cfg.max_transmissions);
            // BLER must be non-increasing over transmissions.
            for w in curve.bler.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
        assert!(res.table().contains("SNR=29dB"));
    }
}
