//! Extension study — die-to-die variation of the throughput impact.
//!
//! The paper simulates "the worst-case behavior of dies with exactly
//! `N_f` failing cells" using random fault-location maps, implicitly
//! assuming the map's *location* matters little once `N_f` is fixed.
//! This study quantifies that: it draws many independent dies with the
//! same defect count and reports the spread of per-die throughput. A
//! tight spread validates the paper's single-map methodology; a wide one
//! would mean binning by count alone is insufficient.

use serde::{Deserialize, Serialize};

use dsp::stats::{mean, variance};

use crate::config::SystemConfig;
use crate::engine::PointSpec;
use crate::montecarlo::StorageConfig;
use crate::simulator::LinkSimulator;

use super::ExperimentBudget;

/// Result of the die-variation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DieVariationResult {
    /// Evaluation SNR (dB).
    pub snr_db: f64,
    /// Defect fraction shared by all dies.
    pub defect_fraction: f64,
    /// Per-die normalized throughput.
    pub per_die: Vec<f64>,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Extremes.
    pub min: f64,
    /// Extremes.
    pub max: f64,
}

/// Simulates `n_dies` independent dies with the same defect fraction.
pub fn run(
    cfg: &SystemConfig,
    budget: ExperimentBudget,
    snr_db: f64,
    defect_fraction: f64,
    n_dies: usize,
) -> DieVariationResult {
    assert!(n_dies >= 2, "need at least two dies for a spread");
    let sim = LinkSimulator::new(*cfg);
    let storage = StorageConfig::unprotected(defect_fraction, cfg.llr_bits);
    // One engine batch, one point per die: the die index perturbs the
    // seed, drawing a fresh fault map (and fresh channel noise) per die,
    // and all dies simulate concurrently.
    let specs: Vec<PointSpec> = (0..n_dies)
        .map(|die| PointSpec {
            storage: storage.clone(),
            snr_db,
            n_packets: budget.packets_per_point,
            seed: budget.seed.wrapping_add(0x10_0000 + die as u64),
        })
        .collect();
    // A spread study needs equal per-die sample counts: adaptive early
    // stopping would mix die-to-die variation with unequal estimation
    // noise, so only the store/resume part of the campaign is used.
    let per_die: Vec<f64> = budget
        .equal_samples()
        .runner("die-variation")
        .run_batch(&sim, &specs)
        .iter()
        .map(|s| s.normalized_throughput())
        .collect();
    let m = mean(&per_die);
    let sd = variance(&per_die).sqrt();
    DieVariationResult {
        snr_db,
        defect_fraction,
        mean: m,
        std_dev: sd,
        min: per_die.iter().cloned().fold(f64::INFINITY, f64::min),
        max: per_die.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        per_die,
    }
}

impl DieVariationResult {
    /// Formats the study summary.
    pub fn table(&self) -> String {
        format!(
            "dies: {}   Nf: {:.1}%   SNR: {:.1} dB\n\
             throughput mean {:.4}  std {:.4}  min {:.4}  max {:.4}\n\
             coefficient of variation: {:.1}%\n",
            self.per_die.len(),
            self.defect_fraction * 100.0,
            self.snr_db,
            self.mean,
            self.std_dev,
            self.min,
            self.max,
            100.0 * self.std_dev / self.mean.max(1e-12)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_finite_and_dies_differ() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke(), 14.0, 0.10, 4);
        assert_eq!(res.per_die.len(), 4);
        assert!(res.min <= res.mean && res.mean <= res.max);
        assert!(res.std_dev >= 0.0);
        assert!(res.table().contains("dies: 4"));
    }

    #[test]
    #[should_panic(expected = "two dies")]
    fn single_die_rejected() {
        let cfg = SystemConfig::fast_test();
        let _ = run(&cfg, ExperimentBudget::smoke(), 14.0, 0.1, 1);
    }
}
