//! Fig. 8 — protection efficiency: throughput gain per unit area.
//!
//! At the worst-case SNR (where unprotected storage loses the most
//! throughput) and 10 % defects, sweeps the number of 8T-protected MSBs
//! and computes `throughput(k)/throughput(defect-free)` against the area
//! overhead of the hybrid array. Also rates the ECC alternative (SECDED
//! over the full word, ≥35 % overhead). Expected shape: gain saturates at
//! 3–4 protected bits — protecting more buys area, not throughput — and
//! hybrid protection dominates ECC on the gain/area metric.

use serde::{Deserialize, Serialize};

use silicon::area_power::protection_efficiency;
use silicon::ecc::Secded;
use silicon::fault_map::FaultKind;
use silicon::ProtectionPlan;

use crate::config::SystemConfig;
use crate::engine::PointSpec;
use crate::montecarlo::{DefectSpec, StorageConfig};
use crate::report::render_table;
use crate::simulator::LinkSimulator;

use super::ExperimentBudget;

/// The defect rate of the study (10 % as in the paper).
pub const DEFECT_FRACTION: f64 = 0.10;

/// One row of the efficiency table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Scheme label.
    pub scheme: String,
    /// Number of protected MSBs (0 for none, `None` for ECC).
    pub protected_bits: Option<u8>,
    /// Area overhead versus the plain 6T array.
    pub area_overhead: f64,
    /// Normalized throughput at the evaluation SNR.
    pub throughput: f64,
    /// Throughput ratio to the defect-free system.
    pub gain: f64,
    /// `gain / (1 + overhead)` — the ranking metric.
    pub efficiency: f64,
}

/// Result of the Fig. 8 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Evaluation SNR (dB).
    pub snr_db: f64,
    /// Rows in protection order, ECC last.
    pub rows: Vec<EfficiencyRow>,
}

/// Runs the experiment at the given evaluation SNR (the paper uses the
/// point of worst unprotected throughput penalty; 9 dB sits mid-waterfall
/// for the scaled link).
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget, snr_db: f64) -> Fig8Result {
    let sim = LinkSimulator::new(*cfg);
    let ecc = Secded::new(cfg.llr_bits);

    // One engine batch: reference point, every protection level, ECC.
    let mut specs = vec![PointSpec {
        storage: StorageConfig::Quantized,
        snr_db,
        n_packets: budget.packets_per_point,
        seed: budget.seed,
    }];
    for (i, protected) in (0..=cfg.llr_bits).enumerate() {
        specs.push(PointSpec {
            storage: StorageConfig::msb_protected(protected, DEFECT_FRACTION, cfg.llr_bits),
            snr_db,
            n_packets: budget.packets_per_point,
            seed: budget.seed.wrapping_add(31 * i as u64),
        });
    }
    specs.push(PointSpec {
        storage: StorageConfig::Ecc {
            defects: DefectSpec::Fraction(DEFECT_FRACTION),
            fault_kind: FaultKind::Flip,
        },
        snr_db,
        n_packets: budget.packets_per_point,
        seed: budget.seed.wrapping_add(4242),
    });

    // `best_protection` ranks the arms against each other, so every arm
    // gets the same sample count (no adaptive early stop) — otherwise
    // the argmax would ride on unequal CI widths.
    let stats = budget
        .equal_samples()
        .runner("fig8")
        .run_batch(&sim, &specs);
    let reference = stats[0].normalized_throughput().max(1e-9);

    let mut rows = Vec::new();
    for (i, protected) in (0..=cfg.llr_bits).enumerate() {
        let plan = ProtectionPlan::msb_protected(cfg.llr_bits, protected);
        let thr = stats[1 + i].normalized_throughput();
        let overhead = plan.area_overhead_vs_6t();
        let gain = thr / reference;
        rows.push(EfficiencyRow {
            scheme: format!("{protected}x8T MSB"),
            protected_bits: Some(protected),
            area_overhead: overhead,
            throughput: thr,
            gain,
            efficiency: protection_efficiency(gain, overhead),
        });
    }

    // ECC baseline: SECDED over the full word on 6T cells with the same
    // per-cell defect fraction (more cells → more faults).
    let thr = stats
        .last()
        .expect("ECC point present")
        .normalized_throughput();
    let overhead = ecc.storage_overhead();
    let gain = thr / reference;
    rows.push(EfficiencyRow {
        scheme: format!("SECDED({},{})", ecc.codeword_bits(), ecc.data_bits()),
        protected_bits: None,
        area_overhead: overhead,
        throughput: thr,
        gain,
        efficiency: protection_efficiency(gain, overhead),
    });

    Fig8Result { snr_db, rows }
}

impl Fig8Result {
    /// The protected-bit count with the best efficiency (ECC excluded).
    pub fn best_protection(&self) -> u8 {
        self.rows
            .iter()
            .filter_map(|r| r.protected_bits.map(|p| (p, r.efficiency)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(p, _)| p)
            .unwrap_or(0)
    }

    /// Formats the efficiency table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    format!("{:.1}%", r.area_overhead * 100.0),
                    format!("{:.4}", r.throughput),
                    format!("{:.3}", r.gain),
                    format!("{:.3}", r.efficiency),
                ]
            })
            .collect();
        render_table(
            &[
                "scheme".into(),
                "area ovh".into(),
                "throughput".into(),
                "gain".into(),
                "gain/area".into(),
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_and_overheads() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke(), 10.0);
        assert_eq!(res.rows.len(), cfg.llr_bits as usize + 2);
        // Area overhead grows with protection; ECC is the most expensive
        // storage-wise.
        let ovh4 = res.rows[4].area_overhead;
        assert!((ovh4 - 0.12).abs() < 1e-9);
        let ecc = res.rows.last().unwrap();
        assert!(ecc.area_overhead >= 0.35);
        assert!(res.table().contains("SECDED"));
        let _ = res.best_protection();
    }
}
