//! Fig. 7 — throughput after protecting the MSBs of every LLR word.
//!
//! The paper's proposal: implement the top `k` bits of each stored LLR in
//! robust 8T cells (fault-free in this worst-case analysis) and tolerate
//! `N_f` defects in the remaining 6T bits. Panels: (a) `N_f = 1 %`,
//! (b) `N_f = 10 %` of the 6T cells. Expected shape: protecting 3–4 MSBs
//! recovers almost the whole defect-free curve even at 10 % defects.

use serde::{Deserialize, Serialize};

use dsp::rng::derive_seed;

use crate::config::SystemConfig;
use crate::montecarlo::StorageConfig;
use crate::report::{render_series_table, Series};
use crate::simulator::LinkSimulator;

use super::{snr_grid, ExperimentBudget};

/// Protected-MSB counts swept.
pub const PROTECTED_BITS: [u8; 5] = [0, 2, 3, 4, 6];

/// One panel of Fig. 7 (one defect rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Panel {
    /// Defect fraction in the unprotected cells.
    pub defect_fraction: f64,
    /// SNR grid (dB).
    pub snr_db: Vec<f64>,
    /// Throughput per protected-bit count (same order as
    /// [`PROTECTED_BITS`]).
    pub throughput: Vec<Vec<f64>>,
    /// Defect-free reference curve.
    pub reference: Vec<f64>,
}

/// Result: panels (a) and (b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Panel (a): 1 % defects.
    pub panel_a: Fig7Panel,
    /// Panel (b): 10 % defects.
    pub panel_b: Fig7Panel,
}

/// Runs both panels (one shared campaign manifest when adaptive).
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget) -> Fig7Result {
    let runner = budget.runner("fig7");
    Fig7Result {
        panel_a: run_panel_with(&runner, cfg, budget, 0.01),
        panel_b: run_panel_with(&runner, cfg, budget, 0.10),
    }
}

/// Runs one panel at the given 6T-cell defect fraction.
pub fn run_panel(cfg: &SystemConfig, budget: ExperimentBudget, defect_fraction: f64) -> Fig7Panel {
    run_panel_with(&budget.runner("fig7"), cfg, budget, defect_fraction)
}

/// Runs one panel on an existing runner.
fn run_panel_with(
    runner: &super::Runner,
    cfg: &SystemConfig,
    budget: ExperimentBudget,
    defect_fraction: f64,
) -> Fig7Panel {
    let sim = LinkSimulator::new(*cfg);
    let snrs = snr_grid();
    // Rows: one per protected-bit count, defect-free reference last. The
    // whole panel is a single engine grid so its points shard together.
    let mut storages: Vec<StorageConfig> = PROTECTED_BITS
        .iter()
        .map(|&protected| StorageConfig::msb_protected(protected, defect_fraction, cfg.llr_bits))
        .collect();
    storages.push(StorageConfig::Quantized);
    let master = derive_seed(budget.seed, (defect_fraction * 1e4) as u64);
    let grid = runner.run_grid(&sim, &storages, &snrs, budget.packets_per_point, master);
    let mut rows: Vec<Vec<f64>> = grid
        .stats
        .iter()
        .map(|row| row.iter().map(|s| s.normalized_throughput()).collect())
        .collect();
    let reference = rows.pop().expect("reference row present");
    Fig7Panel {
        defect_fraction,
        snr_db: snrs,
        throughput: rows,
        reference,
    }
}

impl Fig7Panel {
    /// Formats the panel as a table.
    pub fn table(&self) -> String {
        let mut series: Vec<Series> = PROTECTED_BITS
            .iter()
            .zip(&self.throughput)
            .map(|(&p, ys)| Series::new(format!("{p} MSB"), self.snr_db.clone(), ys.clone()))
            .collect();
        series.push(Series::new(
            "defect-free",
            self.snr_db.clone(),
            self.reference.clone(),
        ));
        render_series_table("SNR[dB]", &series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panel() {
        let cfg = SystemConfig::fast_test();
        let panel = run_panel(&cfg, ExperimentBudget::smoke(), 0.10);
        assert_eq!(panel.throughput.len(), PROTECTED_BITS.len());
        assert_eq!(panel.reference.len(), panel.snr_db.len());
        assert!(panel.table().contains("4 MSB"));
        // The most protected configuration must not lose to the least at
        // the top SNR point (Monte-Carlo noise aside, protection helps).
        let last = panel.snr_db.len() - 1;
        let most = panel.throughput[PROTECTED_BITS.len() - 1][last];
        let least = panel.throughput[0][last];
        assert!(
            most >= least - 0.35,
            "most-protected {most} vs unprotected {least}"
        );
    }
}
