//! Section 6.3 — power reduction through defect tolerance.
//!
//! Combines the failure, yield and power models with link simulation:
//!
//! 1. Conventional design: plain 6T array at its reliable supply (1.0 V).
//! 2. Resilience-limited voltage scaling: 6T at 0.8 V, accepting ~0.1 %
//!    defects (Fig. 5/6 operating point).
//! 3. The proposed hybrid: 4 MSBs in 8T, 0.6 V, tolerating 1–10 % defects
//!    in the 6T bits — the paper quotes ~30 % HARQ-block power savings
//!    and 2.4 vs 3.5 average transmissions at 9 dB compared to the
//!    unprotected array at the same defect rate.

use serde::{Deserialize, Serialize};

use silicon::area_power::PowerModel;
use silicon::cell::{BitCellKind, CellFailureModel};
use silicon::ProtectionPlan;

use crate::config::SystemConfig;
use crate::engine::PointSpec;
use crate::montecarlo::StorageConfig;
use crate::report::render_table;
use crate::simulator::LinkSimulator;

use super::ExperimentBudget;

/// One operating point of the power study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRow {
    /// Scheme label.
    pub scheme: String,
    /// Supply voltage (V).
    pub vdd: f64,
    /// 6T-cell failure probability at this voltage.
    pub p_cell_6t: f64,
    /// Expected defect fraction of the array under its plan.
    pub defect_fraction: f64,
    /// Relative array power (6T at 1.0 V = 1.0).
    pub relative_power: f64,
    /// Power saving versus the conventional design.
    pub saving: f64,
    /// Normalized throughput at the evaluation SNR.
    pub throughput: f64,
    /// Average transmissions at the evaluation SNR.
    pub avg_transmissions: f64,
}

/// Result of the power study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerResult {
    /// Evaluation SNR (dB).
    pub snr_db: f64,
    /// Operating points.
    pub rows: Vec<PowerRow>,
}

/// Runs the study at the given evaluation SNR (the paper discusses 9 dB).
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget, snr_db: f64) -> PowerResult {
    let sim = LinkSimulator::new(*cfg);
    let model = CellFailureModel::dac12();
    let pm = PowerModel::dac12();
    let plain = ProtectionPlan::uniform(cfg.llr_bits, BitCellKind::Sram6T);
    let hybrid = ProtectionPlan::msb_protected(cfg.llr_bits, 4);
    let p_ref = pm.cell_power(plain.relative_area(), 1.0) * cfg.llr_bits as f64;

    // (label, plan, vdd, storage)
    let points: Vec<(String, &ProtectionPlan, f64, StorageConfig)> = vec![
        (
            "6T @ 1.0V (conventional)".into(),
            &plain,
            1.0,
            StorageConfig::Quantized,
        ),
        (
            "6T @ 0.8V (tolerate 0.1%)".into(),
            &plain,
            0.8,
            StorageConfig::unprotected(0.001, cfg.llr_bits),
        ),
        (
            "6T @ 0.6V (unprotected 10%)".into(),
            &plain,
            0.6,
            StorageConfig::unprotected(0.10, cfg.llr_bits),
        ),
        (
            "hybrid 4MSB/8T @ 0.6V (10% in 6T)".into(),
            &hybrid,
            0.6,
            StorageConfig::msb_protected(4, 0.10, cfg.llr_bits),
        ),
    ];

    let specs: Vec<PointSpec> = points
        .iter()
        .enumerate()
        .map(|(i, (_, _, _, storage))| PointSpec {
            storage: storage.clone(),
            snr_db,
            n_packets: budget.packets_per_point,
            seed: budget.seed.wrapping_add(555 * i as u64),
        })
        .collect();
    let stats = budget.runner("power").run_batch(&sim, &specs);

    let rows = points
        .into_iter()
        .zip(stats)
        .map(|((scheme, plan, vdd, _), point_stats)| {
            let power = pm.cell_power(plan.relative_area(), vdd) * cfg.llr_bits as f64;
            PowerRow {
                scheme,
                vdd,
                p_cell_6t: model.p_cell(BitCellKind::Sram6T, vdd),
                defect_fraction: plan.expected_defect_fraction(&model, vdd),
                relative_power: power / p_ref,
                saving: 1.0 - power / p_ref,
                throughput: point_stats.normalized_throughput(),
                avg_transmissions: point_stats.avg_transmissions(),
            }
        })
        .collect();

    PowerResult { snr_db, rows }
}

impl PowerResult {
    /// Formats the study as a table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    format!("{:.2}", r.vdd),
                    format!("{:.1e}", r.p_cell_6t),
                    format!("{:.3}", r.relative_power),
                    format!("{:.1}%", r.saving * 100.0),
                    format!("{:.3}", r.throughput),
                    format!("{:.2}", r.avg_transmissions),
                ]
            })
            .collect();
        render_table(
            &[
                "scheme".into(),
                "Vdd".into(),
                "Pcell(6T)".into(),
                "rel power".into(),
                "saving".into(),
                "throughput".into(),
                "avg tx".into(),
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_power_ordering() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke(), 10.0);
        assert_eq!(res.rows.len(), 4);
        // Power strictly drops with voltage; the hybrid at 0.6 V still
        // saves ≥ 30 % versus 6T at 1.0 V despite its larger area.
        assert!(res.rows[1].relative_power < res.rows[0].relative_power);
        let hybrid = &res.rows[3];
        assert!(hybrid.saving > 0.30, "hybrid saving {}", hybrid.saving);
        // The hybrid needs no more transmissions than the unprotected
        // array at the same supply (usually strictly fewer).
        assert!(
            hybrid.avg_transmissions <= res.rows[2].avg_transmissions + 1e-9,
            "hybrid {} vs unprotected {}",
            hybrid.avg_transmissions,
            res.rows[2].avg_transmissions
        );
        assert!(res.table().contains("hybrid"));
    }
}
