//! Paper-figure experiments (Figs. 2–9 and the §6.3 power analysis).
//!
//! Each submodule regenerates one figure of the paper: it produces
//! structured, serializable results plus a formatted table, and the
//! `bench` crate exposes one binary per figure. Budgets are explicit so
//! tests can run tiny versions of the same code paths the full
//! regeneration uses.

pub mod die_variation;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod power;
pub mod soft_errors;

use serde::{Deserialize, Serialize};

use crate::engine::SimulationEngine;

/// Monte-Carlo effort knobs shared by all link-simulation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentBudget {
    /// Packets simulated per (storage, SNR) operating point.
    pub packets_per_point: usize,
    /// Master seed; every point derives its own stream.
    pub seed: u64,
    /// Worker threads for the Monte-Carlo engine (`0` = one per CPU).
    /// Results are bit-identical for any value — this only trades
    /// wall-clock for cores.
    pub threads: usize,
}

impl ExperimentBudget {
    /// Budget for the full figure regeneration (minutes of CPU).
    pub fn full() -> Self {
        Self {
            packets_per_point: 60,
            seed: 0xdac1_2012,
            threads: 0,
        }
    }

    /// Tiny budget for integration tests (seconds of CPU).
    pub fn smoke() -> Self {
        Self {
            packets_per_point: 6,
            seed: 0xdac1_2012,
            threads: 0,
        }
    }

    /// The sharded Monte-Carlo engine this budget asks for.
    pub fn engine(&self) -> SimulationEngine {
        SimulationEngine::with_threads(self.threads)
    }
}

impl Default for ExperimentBudget {
    fn default() -> Self {
        Self::full()
    }
}

/// The default SNR grid (dB) used by the throughput figures.
pub fn snr_grid() -> Vec<f64> {
    vec![0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0, 27.0, 30.0]
}

/// The 3GPP normalized-throughput requirement the paper quotes for the
/// 64QAM mode (0.53 at 18 dB).
pub const THROUGHPUT_REQUIREMENT: (f64, f64) = (18.0, 0.53);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_ordered() {
        assert!(
            ExperimentBudget::full().packets_per_point
                > ExperimentBudget::smoke().packets_per_point
        );
    }

    #[test]
    fn snr_grid_covers_requirement_point() {
        let grid = snr_grid();
        assert!(grid.contains(&THROUGHPUT_REQUIREMENT.0));
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }
}
