//! Paper-figure experiments (Figs. 2–9 and the §6.3 power analysis).
//!
//! Each submodule regenerates one figure of the paper: it produces
//! structured, serializable results plus a formatted table, and the
//! `bench` crate exposes one binary per figure. Budgets are explicit so
//! tests can run tiny versions of the same code paths the full
//! regeneration uses.

pub mod die_variation;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod power;
pub mod soft_errors;

use serde::{Deserialize, Serialize};

use hspa_phy::harq::{HarqStats, LlrBuffer};
use hspa_phy::turbo::AccuracyTier;

use crate::campaign::{Campaign, CampaignPoint, CampaignSettings, CustomCampaignPoint};
use crate::engine::{CustomPoint, GridResult, PointSpec, SimulationEngine};
use crate::montecarlo::StorageConfig;
use crate::simulator::LinkSimulator;

/// Monte-Carlo effort knobs shared by all link-simulation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentBudget {
    /// Packets simulated per (storage, SNR) operating point. Under a
    /// campaign this is the **maximum** (escalation cap) per point.
    pub packets_per_point: usize,
    /// Master seed; every point derives its own stream.
    pub seed: u64,
    /// Worker threads for the Monte-Carlo engine (`0` = one per CPU).
    /// Results are bit-identical for any value — this only trades
    /// wall-clock for cores.
    pub threads: usize,
    /// `Some`: route the experiment through an adaptive, store-backed
    /// [`Campaign`]; `None`: classic fixed budget on the bare engine.
    pub campaign: Option<CampaignSettings>,
    /// Decode batch width for the engine (`0` = engine default,
    /// [`SimulationEngine::DEFAULT_BATCH`]). Results are bit-identical
    /// for any value — like `threads`, a pure throughput knob.
    pub batch: usize,
    /// Turbo-decoder accuracy tier applied to the figure's
    /// [`crate::config::SystemConfig`]. Non-default tiers change
    /// Monte-Carlo outcomes and therefore campaign fingerprints.
    pub accuracy_tier: AccuracyTier,
}

impl ExperimentBudget {
    /// Budget for the full figure regeneration (minutes of CPU).
    pub fn full() -> Self {
        Self {
            packets_per_point: 60,
            seed: 0xdac1_2012,
            threads: 0,
            campaign: None,
            batch: 0,
            accuracy_tier: AccuracyTier::Exact,
        }
    }

    /// Tiny budget for integration tests (seconds of CPU).
    pub fn smoke() -> Self {
        Self {
            packets_per_point: 6,
            seed: 0xdac1_2012,
            threads: 0,
            campaign: None,
            batch: 0,
            accuracy_tier: AccuracyTier::Exact,
        }
    }

    /// Builder: attach adaptive campaign settings.
    pub fn with_campaign(mut self, settings: CampaignSettings) -> Self {
        self.campaign = Some(settings);
        self
    }

    /// Builder: restrict the campaign to one shard of a multi-host run
    /// (`--shard i/n`). No-op without campaign settings — sharding is a
    /// property of the store-backed path; a one-shot run has no
    /// manifest for the merge tool to reassemble.
    pub fn with_shard(mut self, shard: crate::campaign::ShardSpec) -> Self {
        if let Some(c) = self.campaign.as_mut() {
            c.shard = shard;
        }
        self
    }

    /// Builder: disable early stopping while keeping the campaign's
    /// store/resume machinery. Studies that compare arms against each
    /// other (die-to-die spread, protection-scheme ranking) need equal
    /// per-arm sample counts — adaptive budgets would conflate the
    /// compared effect with unequal Monte-Carlo noise.
    pub fn equal_samples(mut self) -> Self {
        if let Some(c) = self.campaign.as_mut() {
            c.precision = 0.0;
            c.bler_floor = 0.0;
        }
        self
    }

    /// The sharded Monte-Carlo engine this budget asks for.
    pub fn engine(&self) -> SimulationEngine {
        let engine = SimulationEngine::with_threads(self.threads);
        if self.batch >= 1 {
            engine.batch_lanes(self.batch)
        } else {
            engine
        }
    }

    /// The execution path this budget asks for: a fixed-budget engine
    /// pass, or an adaptive campaign named `name` (its store and
    /// manifest land under `target/campaign/<name>.*`).
    pub fn runner(&self, name: &str) -> Runner {
        match self.campaign {
            None => Runner::OneShot(self.engine()),
            Some(settings) => {
                Runner::Adaptive(Box::new(Campaign::new(name, settings, self.engine())))
            }
        }
    }
}

impl Default for ExperimentBudget {
    fn default() -> Self {
        Self::full()
    }
}

/// The execution path of an experiment: every figure calls the engine
/// through this dispatcher, so `--precision`-style adaptive campaigns
/// and classic fixed budgets share one code path per figure.
///
/// Because the campaign's shard filter lives **below** this dispatcher
/// (in [`Campaign`]'s adaptive loop), every figure binary can run a
/// `--shard i/n` slice of its grid without figure-specific code: the
/// full point list is always enumerated (so shard manifests agree on
/// the global point order), foreign points come back as zero-packet
/// placeholders, and `campaign-admin merge` reassembles the single-host
/// result from the shard artifacts.
#[derive(Debug)]
pub enum Runner {
    /// Fixed budget, straight on the engine (no store, no early stop).
    OneShot(SimulationEngine),
    /// Adaptive budgets with the persistent result store (boxed: a
    /// campaign carries its cumulative manifest and is much larger than
    /// the engine-only variant).
    Adaptive(Box<Campaign>),
}

impl Runner {
    /// The campaign behind this runner, when adaptive.
    pub fn campaign(&self) -> Option<&Campaign> {
        match self {
            Runner::OneShot(_) => None,
            Runner::Adaptive(c) => Some(c),
        }
    }

    /// Batch of explicit operating points
    /// (cf. [`SimulationEngine::run_batch`]). Under a campaign each
    /// spec's `n_packets` becomes that point's maximum budget.
    pub fn run_batch(&self, sim: &LinkSimulator, specs: &[PointSpec]) -> Vec<HarqStats> {
        match self {
            Runner::OneShot(engine) => engine.run_batch(sim, specs),
            Runner::Adaptive(campaign) => {
                let points: Vec<CampaignPoint> = specs
                    .iter()
                    .map(|s| CampaignPoint {
                        label: format!("{} @ {} dB", s.storage.label(), s.snr_db),
                        storage: s.storage.clone(),
                        snr_db: s.snr_db,
                        max_packets: s.n_packets,
                        seed: s.seed,
                        fault_seed: None,
                    })
                    .collect();
                campaign.run(sim, &points).stats()
            }
        }
    }

    /// SNR sweep of one storage configuration
    /// (cf. [`SimulationEngine::run_sweep`]).
    pub fn run_sweep(
        &self,
        sim: &LinkSimulator,
        storage: &StorageConfig,
        snrs_db: &[f64],
        n_packets: usize,
        seed: u64,
    ) -> Vec<HarqStats> {
        match self {
            Runner::OneShot(engine) => engine.run_sweep(sim, storage, snrs_db, n_packets, seed),
            Runner::Adaptive(campaign) => {
                campaign.run_sweep(sim, storage, snrs_db, n_packets, seed)
            }
        }
    }

    /// Full (storage × SNR) matrix with one shared die per row
    /// (cf. [`SimulationEngine::run_grid`]).
    pub fn run_grid(
        &self,
        sim: &LinkSimulator,
        storages: &[StorageConfig],
        snrs_db: &[f64],
        n_packets: usize,
        master_seed: u64,
    ) -> GridResult {
        match self {
            Runner::OneShot(engine) => {
                engine.run_grid(sim, storages, snrs_db, n_packets, master_seed)
            }
            Runner::Adaptive(campaign) => {
                campaign.run_grid(sim, storages, snrs_db, n_packets, master_seed)
            }
        }
    }

    /// Batch over caller-built buffers
    /// (cf. [`SimulationEngine::run_batch_with_buffers`]).
    /// `fingerprints[i]` must canonically describe the buffer the
    /// factory builds for point `i` — it keys the campaign store.
    pub fn run_batch_with_buffers<F>(
        &self,
        sim: &LinkSimulator,
        points: &[CustomPoint],
        fingerprints: &[String],
        make_buffer: F,
    ) -> Vec<HarqStats>
    where
        F: Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync,
    {
        assert_eq!(
            points.len(),
            fingerprints.len(),
            "one fingerprint per custom point"
        );
        match self {
            Runner::OneShot(engine) => engine.run_batch_with_buffers(sim, points, make_buffer),
            Runner::Adaptive(campaign) => {
                let cpoints: Vec<CustomCampaignPoint> = points
                    .iter()
                    .zip(fingerprints)
                    .map(|(p, fp)| CustomCampaignPoint {
                        label: format!("{fp} @ {} dB", p.snr_db),
                        fingerprint: fp.clone(),
                        snr_db: p.snr_db,
                        max_packets: p.n_packets,
                        seed: p.seed,
                    })
                    .collect();
                campaign
                    .run_with_buffers(sim, &cpoints, make_buffer)
                    .stats()
            }
        }
    }
}

/// The default SNR grid (dB) used by the throughput figures.
pub fn snr_grid() -> Vec<f64> {
    vec![0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0, 27.0, 30.0]
}

/// The 3GPP normalized-throughput requirement the paper quotes for the
/// 64QAM mode (0.53 at 18 dB).
pub const THROUGHPUT_REQUIREMENT: (f64, f64) = (18.0, 0.53);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn runner_dispatches_on_campaign_settings() {
        let fixed = ExperimentBudget::smoke();
        assert!(matches!(fixed.runner("x"), Runner::OneShot(_)));
        let adaptive = fixed.with_campaign(CampaignSettings::default());
        let runner = adaptive.runner("x");
        assert!(matches!(runner, Runner::Adaptive(_)));
        assert_eq!(runner.campaign().unwrap().name(), "x");
    }

    #[test]
    fn exhaustive_campaign_batch_equals_one_shot() {
        // With early stopping disabled, the adaptive chunked path must
        // reproduce the fixed-budget engine bit-for-bit.
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let specs = vec![PointSpec {
            storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
            snr_db: 9.0,
            n_packets: 13,
            seed: 5,
        }];
        let dir =
            std::env::temp_dir().join(format!("experiments-runner-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let one_shot = Runner::OneShot(SimulationEngine::serial()).run_batch(&sim, &specs);
        let settings = CampaignSettings {
            initial_chunk: 4,
            ..CampaignSettings::exhaustive()
        };
        let adaptive = Runner::Adaptive(Box::new(
            Campaign::new("eq", settings, SimulationEngine::with_threads(2)).with_store_dir(&dir),
        ))
        .run_batch(&sim, &specs);
        assert_eq!(one_shot, adaptive);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_shard_applies_only_under_a_campaign() {
        use crate::campaign::ShardSpec;
        let spec = ShardSpec::new(1, 2).unwrap();
        let sharded = ExperimentBudget::smoke()
            .with_campaign(CampaignSettings::default())
            .with_shard(spec);
        assert_eq!(sharded.campaign.unwrap().shard, spec);
        // One-shot budgets have no store/manifest to shard.
        assert!(ExperimentBudget::smoke()
            .with_shard(spec)
            .campaign
            .is_none());
    }

    #[test]
    fn budgets_ordered() {
        assert!(
            ExperimentBudget::full().packets_per_point
                > ExperimentBudget::smoke().packets_per_point
        );
    }

    #[test]
    fn snr_grid_covers_requirement_point() {
        let grid = snr_grid();
        assert!(grid.contains(&THROUGHPUT_REQUIREMENT.0));
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }
}
