//! Fig. 9 — joint choice of LLR bit-width and defect tolerance.
//!
//! Sweeps the LLR quantization width (10/11/12 bits) with an unprotected
//! array at 10 % defects. Wider words mean lower quantization noise but a
//! larger array with proportionally more faulty cells per stored LLR, so
//! — counter to defect-free intuition — 10-bit quantization wins under
//! high defect rates. Expected shape: at high SNR the 10-bit curve sits
//! at or above the 11/12-bit curves.

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::montecarlo::StorageConfig;
use crate::report::{render_series_table, Series};
use crate::simulator::LinkSimulator;

use super::{snr_grid, ExperimentBudget};

/// Quantization widths swept.
pub const BIT_WIDTHS: [u8; 3] = [10, 11, 12];

/// The defect fraction of the study.
pub const DEFECT_FRACTION: f64 = 0.10;

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// SNR grid (dB).
    pub snr_db: Vec<f64>,
    /// One throughput curve per bit width (order of [`BIT_WIDTHS`]).
    pub throughput: Vec<Vec<f64>>,
    /// Storage cells per configuration (grows with width).
    pub storage_cells: Vec<u64>,
}

/// Runs the experiment.
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget) -> Fig9Result {
    let snrs = snr_grid();
    let mut throughput = Vec::new();
    let mut storage_cells = Vec::new();
    // Each bit width changes the link configuration, so each sweep needs
    // its own simulator; the runner still shards every sweep's points
    // (and one campaign manifest covers all three widths).
    let runner = budget.runner("fig9");
    for (i, &bits) in BIT_WIDTHS.iter().enumerate() {
        let mut wcfg = *cfg;
        wcfg.llr_bits = bits;
        storage_cells.push(wcfg.storage_cells());
        let sim = LinkSimulator::new(wcfg);
        let storage = StorageConfig::unprotected(DEFECT_FRACTION, bits);
        let stats = runner.run_sweep(
            &sim,
            &storage,
            &snrs,
            budget.packets_per_point,
            budget.seed.wrapping_add(17 * i as u64),
        );
        throughput.push(stats.iter().map(|s| s.normalized_throughput()).collect());
    }
    Fig9Result {
        snr_db: snrs,
        throughput,
        storage_cells,
    }
}

impl Fig9Result {
    /// Formats the result as a table.
    pub fn table(&self) -> String {
        let series: Vec<Series> = BIT_WIDTHS
            .iter()
            .zip(&self.throughput)
            .map(|(&b, ys)| Series::new(format!("{b}-bit"), self.snr_db.clone(), ys.clone()))
            .collect();
        render_series_table("SNR[dB]", &series)
    }

    /// Mean throughput of one width over the top half of the SNR grid —
    /// the region where the paper's crossover shows.
    pub fn high_snr_mean(&self, width_index: usize) -> f64 {
        let ys = &self.throughput[width_index];
        let half = ys.len() / 2;
        ys[half..].iter().sum::<f64>() / (ys.len() - half) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shapes() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke());
        assert_eq!(res.throughput.len(), 3);
        // Storage grows with width.
        assert!(res.storage_cells[0] < res.storage_cells[2]);
        assert!(res.table().contains("12-bit"));
        let _ = res.high_snr_mean(0);
    }
}
