//! Fig. 5 — yield versus accepted faulty cells (200 Kb array).
//!
//! Evaluates Eq. (2): `Y(N_f)` for several cell-failure probabilities.
//! Expected shape: each curve is a sharp sigmoid around `M·P_cell`;
//! accepting ~0.1 % defects meets a 95 % yield target at `P_cell = 1e-4`,
//! and higher `P_cell` (lower supply voltage) needs proportionally more
//! accepted defects.

use serde::{Deserialize, Serialize};

use silicon::yield_model::{min_accepted_faults, yield_accepting};

use crate::report::{render_table, Series};

/// Default array size: 200 Kb, as in the paper's Fig. 5.
pub const ARRAY_CELLS: u64 = 200 * 1024;

/// Cell-failure probabilities swept (each corresponds to a supply
/// voltage through Fig. 3).
pub const P_CELLS: [f64; 4] = [1e-5, 1e-4, 1e-3, 1e-2];

/// Result of the Fig. 5 evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Accepted-fault counts (x axis).
    pub n_f: Vec<u64>,
    /// One yield curve per `P_cell`.
    pub curves: Vec<YieldCurve>,
    /// Minimum `N_f` meeting the 95 % target per `P_cell`.
    pub nf_for_95: Vec<Option<u64>>,
}

/// One yield curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldCurve {
    /// The per-cell failure probability.
    pub p_cell: f64,
    /// Yield at each accepted-fault count.
    pub yields: Vec<f64>,
}

/// Runs the evaluation for the standard array.
pub fn run() -> Fig5Result {
    run_for(ARRAY_CELLS)
}

/// Runs the evaluation for an arbitrary array size.
pub fn run_for(cells: u64) -> Fig5Result {
    // Log-spaced N_f axis from 1 cell to 10 % of the array.
    let mut n_f: Vec<u64> = Vec::new();
    let mut v = 1u64;
    while v <= cells / 10 {
        n_f.push(v);
        v = (v as f64 * 1.6).ceil() as u64;
    }
    let curves: Vec<YieldCurve> = P_CELLS
        .iter()
        .map(|&p| YieldCurve {
            p_cell: p,
            yields: n_f
                .iter()
                .map(|&nf| yield_accepting(cells, p, nf))
                .collect(),
        })
        .collect();
    let nf_for_95 = P_CELLS
        .iter()
        .map(|&p| min_accepted_faults(cells, p, 0.95))
        .collect();
    Fig5Result {
        n_f,
        curves,
        nf_for_95,
    }
}

impl Fig5Result {
    /// Formats the curves as a table plus the 95 %-target summary.
    pub fn table(&self) -> String {
        let x: Vec<f64> = self.n_f.iter().map(|&n| n as f64).collect();
        let series: Vec<Series> = self
            .curves
            .iter()
            .map(|c| {
                Series::new(
                    format!("Pcell={:.0e}", c.p_cell),
                    x.clone(),
                    c.yields.clone(),
                )
            })
            .collect();
        let mut out = crate::report::render_series_table("Nf", &series);
        out.push('\n');
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .zip(&self.nf_for_95)
            .map(|(c, nf)| {
                vec![
                    format!("{:.0e}", c.p_cell),
                    nf.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                    nf.map(|n| format!("{:.4}%", 100.0 * n as f64 / ARRAY_CELLS as f64))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["Pcell".into(), "Nf@95%".into(), "defect %".into()],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_point() {
        let res = run();
        // Pcell = 1e-4: accepting 0.1% of the array meets 95%.
        let idx = P_CELLS.iter().position(|&p| p == 1e-4).unwrap();
        let nf95 = res.nf_for_95[idx].unwrap();
        assert!(
            (nf95 as f64) < ARRAY_CELLS as f64 * 0.001,
            "0.1% acceptance must suffice at Pcell=1e-4, needs {nf95}"
        );
        // And the curves are monotone in Nf.
        for c in &res.curves {
            for w in c.yields.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn higher_pcell_needs_more_acceptance() {
        let res = run();
        let mut prev = 0u64;
        for nf in res.nf_for_95.iter().flatten() {
            assert!(*nf >= prev);
            prev = *nf;
        }
        assert!(res.table().contains("Pcell"));
    }
}
