//! Fig. 3 — memory failure probability versus supply voltage (65 nm).
//!
//! Pure model evaluation: `P_cell(Vdd)` for medium 6T, 15 %-upsized 6T
//! and 8T cells, plus the soft-error curve for contrast. Expected shape:
//! the RDF curves fall ~18 decades per volt with the 8T curve shifted
//! ≈200 mV left; the soft-error curve is nearly flat.

use serde::{Deserialize, Serialize};

use silicon::cell::{BitCellKind, CellFailureModel, SoftErrorModel};

use crate::report::{render_series_table, Series};

/// Result of the Fig. 3 evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Supply-voltage grid (V).
    pub vdd: Vec<f64>,
    /// `log10 P_cell` per cell kind, same order as [`BitCellKind::ALL`].
    pub log10_p: Vec<Vec<f64>>,
    /// `log10` soft-error probability.
    pub log10_soft: Vec<f64>,
}

/// Runs the evaluation over `0.5 V ..= 1.1 V`.
pub fn run() -> Fig3Result {
    let model = CellFailureModel::dac12();
    let soft = SoftErrorModel::dac12();
    let vdd: Vec<f64> = (0..=24).map(|i| 0.5 + i as f64 * 0.025).collect();
    let log10_p = BitCellKind::ALL
        .iter()
        .map(|&kind| vdd.iter().map(|&v| model.p_cell(kind, v).log10()).collect())
        .collect();
    let log10_soft = vdd.iter().map(|&v| soft.p_upset(v).log10()).collect();
    Fig3Result {
        vdd,
        log10_p,
        log10_soft,
    }
}

impl Fig3Result {
    /// Formats the curves as a table of `log10 P`.
    pub fn table(&self) -> String {
        let mut series: Vec<Series> = BitCellKind::ALL
            .iter()
            .zip(&self.log10_p)
            .map(|(kind, ys)| Series::new(kind.to_string(), self.vdd.clone(), ys.clone()))
            .collect();
        series.push(Series::new(
            "soft-error",
            self.vdd.clone(),
            self.log10_soft.clone(),
        ));
        render_series_table("Vdd[V]", &series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_paper_shape() {
        let res = run();
        let n = res.vdd.len();
        // RDF curves strictly decreasing with voltage (where unclamped).
        let six_t = &res.log10_p[0];
        assert!(six_t[0] > six_t[n - 1]);
        // 8T below 6T everywhere.
        for i in 0..n {
            assert!(res.log10_p[2][i] <= res.log10_p[0][i] + 1e-12);
        }
        // Soft errors nearly flat: < 1 decade over the whole range.
        let soft_span = res.log10_soft[0] - res.log10_soft[n - 1];
        assert!(soft_span.abs() < 1.0, "soft span {soft_span}");
        // RDF span is tens of decades (modulo clamping).
        let rdf_span = six_t[0] - six_t[n - 1];
        assert!(rdf_span > 5.0, "rdf span {rdf_span}");
        assert!(res.table().contains("6T"));
    }
}
