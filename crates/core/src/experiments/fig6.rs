//! Fig. 6 — throughput (a) and average transmissions (b) versus SNR under
//! various LLR-storage defect rates.
//!
//! The headline experiment: the unprotected 6T LLR memory is injected
//! with `N_f ∈ {0, 0.1 %, 1 %, 5 %, 10 %}` flip faults. Expected shape:
//! curves up to 0.1 % coincide with the defect-free system; beyond that,
//! throughput degrades and the retransmission count rises, yet even 10 %
//! defects keep the 18 dB point above the 0.53 requirement.

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::montecarlo::StorageConfig;
use crate::report::{render_series_table, Series};
use crate::simulator::LinkSimulator;

use super::{snr_grid, ExperimentBudget};

/// Defect fractions swept (of the LLR array cells).
pub const DEFECT_FRACTIONS: [f64; 5] = [0.0, 0.001, 0.01, 0.05, 0.10];

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// SNR grid (dB).
    pub snr_db: Vec<f64>,
    /// One row per defect fraction.
    pub curves: Vec<DefectCurve>,
}

/// Throughput/retransmission data for one defect rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectCurve {
    /// Fraction of faulty cells.
    pub defect_fraction: f64,
    /// Normalized throughput per SNR point.
    pub throughput: Vec<f64>,
    /// Average transmissions per packet per SNR point.
    pub avg_transmissions: Vec<f64>,
}

/// Runs the experiment.
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget) -> Fig6Result {
    run_with_fractions(cfg, budget, &DEFECT_FRACTIONS)
}

/// The storage backend of each swept defect fraction: a fault-free
/// quantized buffer for 0, an unprotected 6T array otherwise. Shared by
/// the experiment and the campaign benchmark so both always measure the
/// same grid.
pub fn storages(fractions: &[f64], llr_bits: u8) -> Vec<StorageConfig> {
    fractions
        .iter()
        .map(|&f| {
            if f == 0.0 {
                StorageConfig::Quantized
            } else {
                StorageConfig::unprotected(f, llr_bits)
            }
        })
        .collect()
}

/// Runs with custom defect fractions (used by tests and ablations).
pub fn run_with_fractions(
    cfg: &SystemConfig,
    budget: ExperimentBudget,
    fractions: &[f64],
) -> Fig6Result {
    let sim = LinkSimulator::new(*cfg);
    let snrs = snr_grid();
    let storages = storages(fractions, cfg.llr_bits);
    // One call for the whole (defect × SNR) matrix: every row is one die
    // swept over SNR, and all points shard across the workers. Under a
    // campaign budget, easy high-SNR points stop early and re-runs
    // resume from the result store.
    let grid = budget.runner("fig6").run_grid(
        &sim,
        &storages,
        &snrs,
        budget.packets_per_point,
        budget.seed,
    );
    let curves = fractions
        .iter()
        .zip(&grid.stats)
        .map(|(&f, row)| DefectCurve {
            defect_fraction: f,
            throughput: row.iter().map(|s| s.normalized_throughput()).collect(),
            avg_transmissions: row.iter().map(|s| s.avg_transmissions()).collect(),
        })
        .collect();
    Fig6Result {
        snr_db: snrs,
        curves,
    }
}

impl Fig6Result {
    /// Throughput series (Fig. 6a).
    pub fn throughput_series(&self) -> Vec<Series> {
        self.curves
            .iter()
            .map(|c| {
                Series::new(
                    format!("Nf={:.1}%", c.defect_fraction * 100.0),
                    self.snr_db.clone(),
                    c.throughput.clone(),
                )
            })
            .collect()
    }

    /// Average-transmission series (Fig. 6b).
    pub fn avg_tx_series(&self) -> Vec<Series> {
        self.curves
            .iter()
            .map(|c| {
                Series::new(
                    format!("Nf={:.1}%", c.defect_fraction * 100.0),
                    self.snr_db.clone(),
                    c.avg_transmissions.clone(),
                )
            })
            .collect()
    }

    /// Formats Fig. 6a as a table.
    pub fn table_throughput(&self) -> String {
        render_series_table("SNR[dB]", &self.throughput_series())
    }

    /// Formats Fig. 6b as a table.
    pub fn table_avg_tx(&self) -> String {
        render_series_table("SNR[dB]", &self.avg_tx_series())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shapes_and_ordering() {
        let cfg = SystemConfig::fast_test();
        let res = run_with_fractions(&cfg, ExperimentBudget::smoke(), &[0.0, 0.10]);
        assert_eq!(res.curves.len(), 2);
        assert_eq!(res.curves[0].throughput.len(), res.snr_db.len());
        // At the top SNR the clean system must beat (or tie) 10% defects.
        let last = res.snr_db.len() - 1;
        assert!(
            res.curves[0].throughput[last] >= res.curves[1].throughput[last] - 1e-9,
            "defects must not improve throughput"
        );
        assert!(res.table_throughput().contains("Nf=10.0%"));
        assert!(res.table_avg_tx().contains("SNR"));
    }
}
