//! Extension study — transient soft errors versus persistent defects.
//!
//! Section 3 of the paper notes that soft-error rates grow only 3× per
//! 500 mV while RDF failures grow a billion-fold, and concludes that
//! persistent parametric faults dominate. This study makes that argument
//! quantitative at the system level: it sweeps a synthetic per-read
//! upset probability over the LLR storage and finds the rate at which
//! throughput starts to move — orders of magnitude above what the
//! soft-error model predicts at any realistic supply.

use serde::{Deserialize, Serialize};

use silicon::cell::SoftErrorModel;

use crate::buffer::{QuantizedLlrBuffer, TransientLlrBuffer};
use crate::config::SystemConfig;
use crate::engine::CustomPoint;
use crate::report::{render_table, Series};
use crate::simulator::LinkSimulator;

use super::ExperimentBudget;

/// Upset probabilities swept (per bit, per read).
pub const UPSET_RATES: [f64; 6] = [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// Result of the soft-error study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftErrorResult {
    /// Evaluation SNR (dB).
    pub snr_db: f64,
    /// Upset rates swept.
    pub p_upset: Vec<f64>,
    /// Normalized throughput per rate.
    pub throughput: Vec<f64>,
    /// The model-predicted upset rate at 0.6 V for context.
    pub model_rate_at_06v: f64,
}

/// Runs the study at `snr_db`.
pub fn run(cfg: &SystemConfig, budget: ExperimentBudget, snr_db: f64) -> SoftErrorResult {
    let sim = LinkSimulator::new(*cfg);
    let quantizer = cfg.quantizer();
    // The transient buffer is outside StorageConfig, so the engine's
    // buffer-factory escape hatch supplies it: one upset rate per point,
    // reseeded per packet (begin_packet) so sharding cannot shift draws.
    let specs: Vec<CustomPoint> = UPSET_RATES
        .iter()
        .enumerate()
        .map(|(i, _)| CustomPoint {
            snr_db,
            n_packets: budget.packets_per_point,
            seed: budget.seed.wrapping_add(1 + i as u64),
        })
        .collect();
    // Custom buffers are opaque to the campaign store, so each point
    // carries a canonical fingerprint of the factory's configuration.
    let fingerprints: Vec<String> = UPSET_RATES
        .iter()
        .map(|&p| format!("transient-upset|p={p:e}|quantized"))
        .collect();
    let stats = budget.runner("soft-errors").run_batch_with_buffers(
        &sim,
        &specs,
        &fingerprints,
        |point, fault_seed| {
            Box::new(TransientLlrBuffer::new(
                QuantizedLlrBuffer::new(cfg.coded_len(), quantizer),
                quantizer,
                UPSET_RATES[point],
                fault_seed,
            ))
        },
    );
    let throughput = stats.iter().map(|s| s.normalized_throughput()).collect();
    SoftErrorResult {
        snr_db,
        p_upset: UPSET_RATES.to_vec(),
        throughput,
        model_rate_at_06v: SoftErrorModel::dac12().p_upset(0.6),
    }
}

impl SoftErrorResult {
    /// The throughput curve as a series over `log10 p_upset`.
    pub fn series(&self) -> Series {
        let x: Vec<f64> = self
            .p_upset
            .iter()
            .map(|&p| if p == 0.0 { -9.0 } else { p.log10() })
            .collect();
        Series::new("throughput", x, self.throughput.clone())
    }

    /// Formats the study as a table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .p_upset
            .iter()
            .zip(&self.throughput)
            .map(|(&p, &t)| vec![format!("{p:.0e}"), format!("{t:.4}")])
            .collect();
        let mut out = render_table(&["p_upset/bit/read".into(), "throughput".into()], &rows);
        out.push_str(&format!(
            "\nsoft-error model prediction at 0.6 V: {:.1e} per bit per read\n",
            self.model_rate_at_06v
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_errors_negligible_until_large() {
        let cfg = SystemConfig::fast_test();
        let res = run(&cfg, ExperimentBudget::smoke(), 16.0);
        assert_eq!(res.throughput.len(), UPSET_RATES.len());
        // 1e-6 upsets are transparent relative to the clean system.
        assert!((res.throughput[1] - res.throughput[0]).abs() < 0.35);
        // The model-predicted rate is far below anything that matters.
        assert!(res.model_rate_at_06v < 1e-9);
        assert!(res.table().contains("p_upset"));
    }
}
