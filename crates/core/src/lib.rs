//! System-level fault simulator for wireless error resilience.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! methodology that injects silicon-level faults (from the [`silicon`]
//! substrate) into the HARQ LLR storage of a standard-compliant HSPA+
//! link (from the [`hspa_phy`] substrate) and measures the system-level
//! consequences — normalized throughput, average retransmission count,
//! manufacturing yield and protection-scheme efficiency.
//!
//! The pieces:
//!
//! * [`buffer`] — LLR storage backends: quantized-but-perfect, faulty
//!   (6T / hybrid 6T-8T arrays with fault maps), and SECDED-protected.
//! * [`config`] — the simulated link configuration (block length,
//!   modulation, code rate, HARQ budget, quantizer, channel).
//! * [`simulator`] — one-packet link simulation: encode → rate-match →
//!   interleave → modulate → fade+noise → MMSE equalize → demap →
//!   *store in the (faulty) LLR memory* → combine → turbo decode → CRC.
//! * [`montecarlo`] — seeded multi-packet Monte-Carlo runs (serial API).
//! * [`engine`] — the parallel Monte-Carlo engine: shards packets and
//!   whole operating points across worker threads with per-packet RNG
//!   streams, so results are bit-identical for any thread count.
//! * [`campaign`] — adaptive-budget campaigns above the engine: per-point
//!   Wilson-CI stopping (relative `--precision` or absolute
//!   `--target-ci`), a persistent JSONL result store that makes re-runs
//!   resume instead of re-simulate, a manifest of achieved precision per
//!   point, and a multi-host sharding coordinator (`--shard i/n` plus
//!   merge/GC/verify admin tooling) that distributes a grid across
//!   machines with bit-identical merged results.
//! * [`experiments`] — one module per paper figure (Figs. 2–9), each
//!   producing serializable series plus formatted tables.
//! * [`failpoint`] — deterministic fault injection (seeded, replayable)
//!   compiled into the dispatcher, launchers and store backends for the
//!   chaos test suite; zero overhead unarmed.
//! * [`report`] — plain-text table rendering shared by binaries.
//! * [`telemetry`] — always-on lock-free metrics (counters, gauges,
//!   histograms on per-thread shards), span timing, and the opt-in
//!   (`--telemetry`) exposition surfaces: live snapshot JSON, JSONL
//!   event log, Prometheus text.
//!
//! # Example
//!
//! ```no_run
//! use resilience_core::config::SystemConfig;
//! use resilience_core::montecarlo::{run_point, StorageConfig};
//!
//! let cfg = SystemConfig::fast_test();
//! let stats = run_point(&cfg, &StorageConfig::Perfect, 15.0, 20, 42);
//! println!("throughput {:.2}", stats.normalized_throughput());
//! ```

#![forbid(unsafe_code)]

pub mod buffer;
pub mod campaign;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod failpoint;
pub mod montecarlo;
pub mod report;
pub mod simulator;
pub mod telemetry;

pub use buffer::{EccLlrBuffer, FaultyLlrBuffer, QuantizedLlrBuffer, TransientLlrBuffer};
pub use campaign::{Campaign, CampaignPoint, CampaignReport, CampaignSettings, ShardSpec};
pub use config::SystemConfig;
pub use engine::{ChunkSpec, CustomChunk, CustomPoint, GridResult, PointSpec, SimulationEngine};
pub use montecarlo::{run_point, DefectSpec, StorageConfig};
