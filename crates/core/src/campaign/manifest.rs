//! Campaign manifest: a machine-readable summary of what a campaign ran.
//!
//! Every [`super::Campaign`] rewrites `<store_dir>/<name>.manifest.json`
//! after each run call with cumulative totals (chunks simulated vs served
//! from the store, packets realized vs the fixed budget) plus one record
//! per operating point with its achieved confidence interval. The bench
//! binaries print their summary from this file, the CI resume-smoke job
//! asserts on its store-hit rate, and future multi-host sharding work is
//! expected to partition points by walking this manifest.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use hspa_phy::turbo::AccuracyTier;

use super::controller::CampaignSettings;
use super::shard::ShardSpec;
use super::store::{json_bool_field, json_f64_field, json_str_field, json_u64_field, BackendKind};
use super::PointOutcome;

/// One point entry of the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Position of the point in the campaign's full (shard-global)
    /// enumeration order — what [`super::shard::merge`] sorts by to
    /// reassemble the single-host manifest.
    pub index: u64,
    /// The point's stable store key ([`super::hash::point_key`]), tying
    /// the manifest entry to its chunks in the result store.
    pub key: u64,
    /// Human-readable point label (storage + SNR).
    pub label: String,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Realized packet count.
    pub packets: usize,
    /// The point's maximum budget.
    pub max_packets: usize,
    /// Final BLER estimate.
    pub bler: f64,
    /// 95 % Wilson interval on the BLER.
    pub ci: (f64, f64),
    /// Achieved relative half-width (the `--precision` metric).
    pub rel_half_width: f64,
    /// Whether the stopping rule was met before the budget cap.
    pub converged: bool,
    /// Chunks executed for this point.
    pub chunks: usize,
    /// Of those, chunks served from the result store.
    pub chunks_from_store: usize,
    /// Packets served from the result store (the packet-weighted view
    /// of `chunks_from_store` — chunks double in size, so the chunk
    /// ratio alone understates how much work resume actually saved).
    pub packets_from_store: usize,
    /// Decoder accuracy tier the point was simulated at — part of the
    /// point fingerprint, recorded here so `campaign-admin query
    /// --tier` can filter without re-deriving configs.
    pub tier: AccuracyTier,
}

impl PointRecord {
    /// Builds a record from a finished point outcome at the given
    /// shard-global enumeration index.
    pub fn from_outcome(o: &PointOutcome, index: u64) -> Self {
        Self {
            index,
            key: o.key,
            label: o.label.clone(),
            snr_db: o.snr_db,
            packets: o.packets(),
            max_packets: o.max_packets,
            bler: o.check.bler,
            ci: o.check.ci,
            rel_half_width: o.check.rel_half_width,
            converged: o.converged,
            chunks: o.chunks,
            chunks_from_store: o.chunks_from_store,
            packets_from_store: o.packets_from_store,
            tier: o.tier,
        }
    }

    /// Renders the record as one manifest line (no trailing comma).
    fn render(&self) -> String {
        format!(
            "{{\"index\": {}, \"key\": \"{:016x}\", \"label\": \"{}\", \"snr_db\": {}, \"packets\": {}, \"max\": {}, \"bler\": {:.6}, \"ci_lo\": {:.6}, \"ci_hi\": {:.6}, \"rel_hw\": {:.4}, \"converged\": {}, \"chunks\": {}, \"chunks_store\": {}, \"packets_store\": {}, \"tier\": \"{}\"}}",
            self.index,
            self.key,
            self.label.replace('"', "'"),
            self.snr_db,
            self.packets,
            self.max_packets,
            self.bler,
            self.ci.0,
            self.ci.1,
            self.rel_half_width,
            self.converged,
            self.chunks,
            self.chunks_from_store,
            self.packets_from_store,
            self.tier,
        )
    }

    /// Parses one manifest point line (as written by
    /// [`PointRecord::render`]); `None` on malformed input.
    ///
    /// Round-trip stability matters here: `render(parse(line)) == line`
    /// for every line `render` produced, because the shard merge
    /// re-renders parsed records and the merged manifest must be
    /// byte-identical to a single-host run's.
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim().trim_end_matches(',');
        // The label is the only string field that may contain commas,
        // so field scanning is done on the text after its closing quote
        // (labels never contain '"': render maps embedded quotes to ').
        let tag = "\"label\": \"";
        let lstart = line.find(tag)? + tag.len();
        let lend = lstart + line[lstart..].find('"')?;
        let label = line[lstart..lend].to_string();
        let head = &line[..lstart];
        let rest = &line[lend..];
        Some(Self {
            index: json_u64_field(head, "index")?,
            key: u64::from_str_radix(&json_str_field(head, "key")?, 16).ok()?,
            label,
            snr_db: json_f64_field(rest, "snr_db")?,
            packets: json_u64_field(rest, "packets")? as usize,
            max_packets: json_u64_field(rest, "max")? as usize,
            bler: json_f64_field(rest, "bler")?,
            ci: (
                json_f64_field(rest, "ci_lo")?,
                json_f64_field(rest, "ci_hi")?,
            ),
            rel_half_width: json_f64_field(rest, "rel_hw")?,
            converged: json_bool_field(rest, "converged")?,
            chunks: json_u64_field(rest, "chunks")? as usize,
            chunks_from_store: json_u64_field(rest, "chunks_store")? as usize,
            // Lenient: manifests written before the field existed parse
            // as zero (the merge then re-renders them with it).
            packets_from_store: json_u64_field(rest, "packets_store").unwrap_or(0) as usize,
            // Lenient for the same reason: older manifests predate the
            // tier field, and `exact` is the historical default.
            tier: json_str_field(rest, "tier")
                .and_then(|s| s.parse().ok())
                .unwrap_or(AccuracyTier::Exact),
        })
    }
}

/// Cumulative manifest of one campaign (possibly several run calls).
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (also the store/manifest file stem).
    pub name: String,
    /// Controller settings of the campaign.
    pub settings: CampaignSettings,
    /// Points **enumerated** so far, across every shard: a sharded run
    /// records only the points it owns in [`Manifest::points`], but
    /// still counts every point it saw, so shard manifests agree on the
    /// global index space and the merge can prove completeness.
    pub points_enumerated: u64,
    /// Every point run (and owned) so far.
    pub points: Vec<PointRecord>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new(name: impl Into<String>, settings: CampaignSettings) -> Self {
        Self {
            name: name.into(),
            settings,
            points_enumerated: 0,
            points: Vec::new(),
        }
    }

    /// Aggregated totals over all points.
    pub fn totals(&self) -> ManifestTotals {
        ManifestTotals::over(self.points.iter())
    }

    /// Renders the manifest as pretty-printed JSON (hand-formatted; the
    /// offline serde shim has no serializer).
    ///
    /// The `"shard"` line appears only in per-shard manifests, so a
    /// merged manifest (shard cleared) can be byte-identical to a
    /// single-host run's.
    pub fn render_json(&self) -> String {
        let t = self.totals();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", self.name));
        out.push_str(&format!(
            "  \"settings\": {{\"precision\": {}, \"bler_floor\": {}, \"initial_chunk\": {}, \"target_ci\": {}}},\n",
            self.settings.precision,
            self.settings.bler_floor,
            self.settings.initial_chunk,
            self.settings.target_ci
        ));
        if self.settings.shard.is_sharded() {
            out.push_str(&format!("  \"shard\": \"{}\",\n", self.settings.shard));
        }
        out.push_str(&format!(
            "  \"points_enumerated\": {},\n",
            self.points_enumerated
        ));
        out.push_str(&format!("  \"points_total\": {},\n", t.points_total));
        out.push_str(&format!(
            "  \"points_converged\": {},\n",
            t.points_converged
        ));
        out.push_str(&format!("  \"total_chunks\": {},\n", t.total_chunks));
        out.push_str(&format!("  \"store_chunks\": {},\n", t.store_chunks));
        out.push_str(&format!(
            "  \"realized_packets\": {},\n",
            t.realized_packets
        ));
        out.push_str(&format!("  \"budget_packets\": {},\n", t.budget_packets));
        out.push_str(&format!(
            "  \"saved_vs_fixed\": {:.4},\n",
            t.saved_vs_fixed()
        ));
        out.push_str(&format!(
            "  \"store_hit_rate\": {:.4},\n",
            t.store_hit_rate()
        ));
        out.push_str(&format!("  \"store_packets\": {},\n", t.store_packets));
        out.push_str(&format!(
            "  \"store_packet_rate\": {:.4},\n",
            t.store_packet_rate()
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                p.render(),
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a manifest back from its JSON text — the full inverse of
    /// [`Manifest::render_json`] (the store-side `resume` knob is not
    /// part of the rendered identity and comes back as its default).
    pub fn parse(json: &str) -> Option<Self> {
        let name = json_str_field(json, "campaign")?;
        let shard = match json_str_field(json, "shard") {
            Some(s) => s.parse::<ShardSpec>().ok()?,
            None => ShardSpec::single(),
        };
        let settings = CampaignSettings {
            precision: json_f64_field(json, "precision")?,
            bler_floor: json_f64_field(json, "bler_floor")?,
            initial_chunk: json_u64_field(json, "initial_chunk")? as usize,
            target_ci: json_f64_field(json, "target_ci")?,
            shard,
            resume: true,
            backend: BackendKind::default(),
        };
        let points_enumerated = json_u64_field(json, "points_enumerated")?;
        let body = &json[json.find("\"points\": [")?..];
        let mut points = Vec::new();
        for line in body.lines().skip(1) {
            let line = line.trim();
            if line.starts_with(']') {
                break;
            }
            points.push(PointRecord::parse(line)?);
        }
        Some(Self {
            name,
            settings,
            points_enumerated,
            points,
        })
    }

    /// Reads and parses a manifest file (the admin tooling's entry).
    pub fn read(path: &Path) -> std::io::Result<Self> {
        let json = fs::read_to_string(path)?;
        Self::parse(&json).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed campaign manifest: {}", path.display()),
            )
        })
    }

    /// Writes the manifest to `path` (atomically enough for a summary:
    /// write then rename is overkill here — a torn manifest only affects
    /// human-facing reporting, never simulation results).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.render_json().as_bytes())
    }
}

/// Totals block of a manifest (also what
/// [`read_summary`] recovers from disk).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ManifestTotals {
    /// Points run.
    pub points_total: u64,
    /// Points whose stopping rule fired before the budget cap.
    pub points_converged: u64,
    /// Chunk executions (simulated + from store).
    pub total_chunks: u64,
    /// Chunks served from the result store.
    pub store_chunks: u64,
    /// Packets served from the result store.
    pub store_packets: u64,
    /// Packets realized by the adaptive controller.
    pub realized_packets: u64,
    /// Packets a fixed budget would have spent (`Σ max_packets`).
    pub budget_packets: u64,
}

impl ManifestTotals {
    /// Aggregates totals over any set of manifest points — the engine
    /// behind [`Manifest::totals`], and what `campaign-admin query`
    /// uses to summarize a filtered point selection.
    pub fn over<'a>(points: impl IntoIterator<Item = &'a PointRecord>) -> Self {
        let mut t = Self::default();
        for p in points {
            t.points_total += 1;
            t.points_converged += u64::from(p.converged);
            t.total_chunks += p.chunks as u64;
            t.store_chunks += p.chunks_from_store as u64;
            t.store_packets += p.packets_from_store as u64;
            t.realized_packets += p.packets as u64;
            t.budget_packets += p.max_packets as u64;
        }
        t
    }

    /// Fraction of the fixed budget the controller did not need.
    pub fn saved_vs_fixed(&self) -> f64 {
        if self.budget_packets == 0 {
            return 0.0;
        }
        1.0 - self.realized_packets as f64 / self.budget_packets as f64
    }

    /// Fraction of chunk executions served from the store.
    pub fn store_hit_rate(&self) -> f64 {
        if self.total_chunks == 0 {
            return 0.0;
        }
        self.store_chunks as f64 / self.total_chunks as f64
    }

    /// Fraction of realized packets served from the store — the
    /// packet-weighted hit rate the CI resume-smoke job asserts on.
    pub fn store_packet_rate(&self) -> f64 {
        if self.realized_packets == 0 {
            return 0.0;
        }
        self.store_packets as f64 / self.realized_packets as f64
    }
}

/// Summary parsed back from a manifest file.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Campaign name.
    pub name: String,
    /// Aggregated totals.
    pub totals: ManifestTotals,
}

/// Reads the totals block of a manifest file; `None` when the file is
/// missing or malformed.
pub fn read_summary(path: &Path) -> Option<ManifestSummary> {
    let json = fs::read_to_string(path).ok()?;
    // The totals field names occur exactly once, before the points
    // array, so the flat field scanners from the store module apply.
    Some(ManifestSummary {
        name: json_str_field(&json, "campaign")?,
        totals: ManifestTotals {
            points_total: json_u64_field(&json, "points_total")?,
            points_converged: json_u64_field(&json, "points_converged")?,
            total_chunks: json_u64_field(&json, "total_chunks")?,
            store_chunks: json_u64_field(&json, "store_chunks")?,
            store_packets: json_u64_field(&json, "store_packets").unwrap_or(0),
            realized_packets: json_u64_field(&json, "realized_packets")?,
            budget_packets: json_u64_field(&json, "budget_packets")?,
        },
    })
    .filter(|_| json_f64_field(&json, "saved_vs_fixed").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        let mut m = Manifest::new("test", CampaignSettings::default());
        m.points_enumerated = 2;
        m.points.push(PointRecord {
            index: 0,
            key: 0x0123_4567_89ab_cdef,
            label: "quantized @ 18dB".into(),
            snr_db: 18.0,
            packets: 32,
            max_packets: 60,
            bler: 0.0,
            ci: (0.0, 0.107),
            rel_half_width: 0.36,
            converged: true,
            chunks: 1,
            chunks_from_store: 1,
            packets_from_store: 32,
            tier: AccuracyTier::Exact,
        });
        m.points.push(PointRecord {
            index: 1,
            key: 0xfeed_face_0000_0001,
            label: "6T, Nf=10.00% @ 9dB".into(),
            snr_db: 9.0,
            packets: 60,
            max_packets: 60,
            bler: 0.4,
            ci: (0.29, 0.53),
            rel_half_width: 0.3,
            converged: false,
            chunks: 2,
            chunks_from_store: 0,
            packets_from_store: 0,
            tier: AccuracyTier::EarlyStop,
        });
        m
    }

    #[test]
    fn totals_aggregate() {
        let t = sample_manifest().totals();
        assert_eq!(t.points_total, 2);
        assert_eq!(t.points_converged, 1);
        assert_eq!(t.total_chunks, 3);
        assert_eq!(t.store_chunks, 1);
        assert_eq!(t.store_packets, 32);
        assert_eq!(t.realized_packets, 92);
        assert_eq!(t.budget_packets, 120);
        assert!((t.saved_vs_fixed() - (1.0 - 92.0 / 120.0)).abs() < 1e-12);
        assert!((t.store_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((t.store_packet_rate() - 32.0 / 92.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_via_summary() {
        let m = sample_manifest();
        let path = std::env::temp_dir().join(format!(
            "campaign-manifest-test-{}.json",
            std::process::id()
        ));
        m.write(&path).unwrap();
        let summary = read_summary(&path).expect("parses back");
        assert_eq!(summary.name, "test");
        assert_eq!(summary.totals, m.totals());
        let _ = fs::remove_file(&path);
        assert!(read_summary(&path).is_none(), "missing file is None");
    }

    #[test]
    fn empty_manifest_has_zero_rates() {
        let t = Manifest::new("empty", CampaignSettings::default()).totals();
        assert_eq!(t.saved_vs_fixed(), 0.0);
        assert_eq!(t.store_hit_rate(), 0.0);
    }

    #[test]
    fn full_parse_round_trips_to_identical_bytes() {
        // The shard merge re-renders parsed manifests, so
        // render → parse → render must be a byte-level fixed point —
        // including awkward labels (commas, %, @) and float fields.
        let m = sample_manifest();
        let json = m.render_json();
        let parsed = Manifest::parse(&json).expect("parses back");
        assert_eq!(parsed, m);
        assert_eq!(parsed.render_json(), json, "render∘parse must be id");
    }

    #[test]
    fn sharded_manifest_keeps_its_shard_tag() {
        let mut m = sample_manifest();
        m.settings.shard = ShardSpec::new(1, 3).unwrap();
        m.points.truncate(1);
        let json = m.render_json();
        assert!(json.contains("\"shard\": \"1/3\""));
        let parsed = Manifest::parse(&json).unwrap();
        assert_eq!(parsed.settings.shard, ShardSpec::new(1, 3).unwrap());
        assert_eq!(parsed.points_enumerated, 2);
        assert_eq!(parsed.render_json(), json);
    }

    #[test]
    fn point_record_parse_rejects_malformed_lines() {
        let line = sample_manifest().points[1].render();
        assert!(PointRecord::parse(&line).is_some());
        assert!(PointRecord::parse(&line[..line.len() / 2]).is_none());
        assert!(PointRecord::parse("{}").is_none());
        // Trailing comma (mid-array form) is tolerated.
        assert!(PointRecord::parse(&format!("{line},")).is_some());
    }
}
