//! Campaign manifest: a machine-readable summary of what a campaign ran.
//!
//! Every [`super::Campaign`] rewrites `<store_dir>/<name>.manifest.json`
//! after each run call with cumulative totals (chunks simulated vs served
//! from the store, packets realized vs the fixed budget) plus one record
//! per operating point with its achieved confidence interval. The bench
//! binaries print their summary from this file, the CI resume-smoke job
//! asserts on its store-hit rate, and future multi-host sharding work is
//! expected to partition points by walking this manifest.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use super::controller::CampaignSettings;
use super::store::{json_f64_field, json_str_field, json_u64_field};
use super::PointOutcome;

/// One point entry of the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Human-readable point label (storage + SNR).
    pub label: String,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Realized packet count.
    pub packets: usize,
    /// The point's maximum budget.
    pub max_packets: usize,
    /// Final BLER estimate.
    pub bler: f64,
    /// 95 % Wilson interval on the BLER.
    pub ci: (f64, f64),
    /// Achieved relative half-width (the `--precision` metric).
    pub rel_half_width: f64,
    /// Whether the stopping rule was met before the budget cap.
    pub converged: bool,
    /// Chunks executed for this point.
    pub chunks: usize,
    /// Of those, chunks served from the result store.
    pub chunks_from_store: usize,
}

impl PointRecord {
    /// Builds a record from a finished point outcome.
    pub fn from_outcome(o: &PointOutcome) -> Self {
        Self {
            label: o.label.clone(),
            snr_db: o.snr_db,
            packets: o.packets(),
            max_packets: o.max_packets,
            bler: o.check.bler,
            ci: o.check.ci,
            rel_half_width: o.check.rel_half_width,
            converged: o.converged,
            chunks: o.chunks,
            chunks_from_store: o.chunks_from_store,
        }
    }
}

/// Cumulative manifest of one campaign (possibly several run calls).
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (also the store/manifest file stem).
    pub name: String,
    /// Controller settings of the campaign.
    pub settings: CampaignSettings,
    /// Every point run so far.
    pub points: Vec<PointRecord>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new(name: impl Into<String>, settings: CampaignSettings) -> Self {
        Self {
            name: name.into(),
            settings,
            points: Vec::new(),
        }
    }

    /// Aggregated totals over all points.
    pub fn totals(&self) -> ManifestTotals {
        let mut t = ManifestTotals {
            points_total: self.points.len() as u64,
            ..ManifestTotals::default()
        };
        for p in &self.points {
            t.points_converged += u64::from(p.converged);
            t.total_chunks += p.chunks as u64;
            t.store_chunks += p.chunks_from_store as u64;
            t.realized_packets += p.packets as u64;
            t.budget_packets += p.max_packets as u64;
        }
        t
    }

    /// Renders the manifest as pretty-printed JSON (hand-formatted; the
    /// offline serde shim has no serializer).
    pub fn render_json(&self) -> String {
        let t = self.totals();
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", self.name));
        out.push_str(&format!(
            "  \"settings\": {{\"precision\": {}, \"bler_floor\": {}, \"initial_chunk\": {}}},\n",
            self.settings.precision, self.settings.bler_floor, self.settings.initial_chunk
        ));
        out.push_str(&format!("  \"points_total\": {},\n", t.points_total));
        out.push_str(&format!(
            "  \"points_converged\": {},\n",
            t.points_converged
        ));
        out.push_str(&format!("  \"total_chunks\": {},\n", t.total_chunks));
        out.push_str(&format!("  \"store_chunks\": {},\n", t.store_chunks));
        out.push_str(&format!(
            "  \"realized_packets\": {},\n",
            t.realized_packets
        ));
        out.push_str(&format!("  \"budget_packets\": {},\n", t.budget_packets));
        out.push_str(&format!(
            "  \"saved_vs_fixed\": {:.4},\n",
            t.saved_vs_fixed()
        ));
        out.push_str(&format!(
            "  \"store_hit_rate\": {:.4},\n",
            t.store_hit_rate()
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"snr_db\": {}, \"packets\": {}, \"max\": {}, \"bler\": {:.6}, \"ci_lo\": {:.6}, \"ci_hi\": {:.6}, \"rel_hw\": {:.4}, \"converged\": {}, \"chunks\": {}, \"chunks_store\": {}}}{}\n",
                p.label.replace('"', "'"),
                p.snr_db,
                p.packets,
                p.max_packets,
                p.bler,
                p.ci.0,
                p.ci.1,
                p.rel_half_width,
                p.converged,
                p.chunks,
                p.chunks_from_store,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the manifest to `path` (atomically enough for a summary:
    /// write then rename is overkill here — a torn manifest only affects
    /// human-facing reporting, never simulation results).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.render_json().as_bytes())
    }
}

/// Totals block of a manifest (also what
/// [`read_summary`] recovers from disk).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ManifestTotals {
    /// Points run.
    pub points_total: u64,
    /// Points whose stopping rule fired before the budget cap.
    pub points_converged: u64,
    /// Chunk executions (simulated + from store).
    pub total_chunks: u64,
    /// Chunks served from the result store.
    pub store_chunks: u64,
    /// Packets realized by the adaptive controller.
    pub realized_packets: u64,
    /// Packets a fixed budget would have spent (`Σ max_packets`).
    pub budget_packets: u64,
}

impl ManifestTotals {
    /// Fraction of the fixed budget the controller did not need.
    pub fn saved_vs_fixed(&self) -> f64 {
        if self.budget_packets == 0 {
            return 0.0;
        }
        1.0 - self.realized_packets as f64 / self.budget_packets as f64
    }

    /// Fraction of chunk executions served from the store.
    pub fn store_hit_rate(&self) -> f64 {
        if self.total_chunks == 0 {
            return 0.0;
        }
        self.store_chunks as f64 / self.total_chunks as f64
    }
}

/// Summary parsed back from a manifest file.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Campaign name.
    pub name: String,
    /// Aggregated totals.
    pub totals: ManifestTotals,
}

/// Reads the totals block of a manifest file; `None` when the file is
/// missing or malformed.
pub fn read_summary(path: &Path) -> Option<ManifestSummary> {
    let json = fs::read_to_string(path).ok()?;
    // The totals field names occur exactly once, before the points
    // array, so the flat field scanners from the store module apply.
    Some(ManifestSummary {
        name: json_str_field(&json, "campaign")?,
        totals: ManifestTotals {
            points_total: json_u64_field(&json, "points_total")?,
            points_converged: json_u64_field(&json, "points_converged")?,
            total_chunks: json_u64_field(&json, "total_chunks")?,
            store_chunks: json_u64_field(&json, "store_chunks")?,
            realized_packets: json_u64_field(&json, "realized_packets")?,
            budget_packets: json_u64_field(&json, "budget_packets")?,
        },
    })
    .filter(|_| json_f64_field(&json, "saved_vs_fixed").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        let mut m = Manifest::new("test", CampaignSettings::default());
        m.points.push(PointRecord {
            label: "quantized @ 18dB".into(),
            snr_db: 18.0,
            packets: 32,
            max_packets: 60,
            bler: 0.0,
            ci: (0.0, 0.107),
            rel_half_width: 0.36,
            converged: true,
            chunks: 1,
            chunks_from_store: 1,
        });
        m.points.push(PointRecord {
            label: "6T, Nf=10.00% @ 9dB".into(),
            snr_db: 9.0,
            packets: 60,
            max_packets: 60,
            bler: 0.4,
            ci: (0.29, 0.53),
            rel_half_width: 0.3,
            converged: false,
            chunks: 2,
            chunks_from_store: 0,
        });
        m
    }

    #[test]
    fn totals_aggregate() {
        let t = sample_manifest().totals();
        assert_eq!(t.points_total, 2);
        assert_eq!(t.points_converged, 1);
        assert_eq!(t.total_chunks, 3);
        assert_eq!(t.store_chunks, 1);
        assert_eq!(t.realized_packets, 92);
        assert_eq!(t.budget_packets, 120);
        assert!((t.saved_vs_fixed() - (1.0 - 92.0 / 120.0)).abs() < 1e-12);
        assert!((t.store_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_via_summary() {
        let m = sample_manifest();
        let path = std::env::temp_dir().join(format!(
            "campaign-manifest-test-{}.json",
            std::process::id()
        ));
        m.write(&path).unwrap();
        let summary = read_summary(&path).expect("parses back");
        assert_eq!(summary.name, "test");
        assert_eq!(summary.totals, m.totals());
        let _ = fs::remove_file(&path);
        assert!(read_summary(&path).is_none(), "missing file is None");
    }

    #[test]
    fn empty_manifest_has_zero_rates() {
        let t = Manifest::new("empty", CampaignSettings::default()).totals();
        assert_eq!(t.saved_vs_fixed(), 0.0);
        assert_eq!(t.store_hit_rate(), 0.0);
    }
}
