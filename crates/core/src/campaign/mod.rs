//! Adaptive-budget Monte-Carlo campaigns with a persistent result store.
//!
//! A *campaign* is the orchestration layer between the figure experiments
//! and [`crate::engine::SimulationEngine`]. Where the engine answers
//! "simulate exactly `n` packets of these points", a campaign answers the
//! question the paper's figures actually ask — "estimate these points
//! well enough" — and remembers everything it has simulated:
//!
//! * the **adaptive budget controller** ([`controller`]) runs each point
//!   in deterministic, growing chunks and stops early once a Wilson-score
//!   confidence interval on the point's BLER is tight enough, escalating
//!   hard (waterfall) points up to their maximum budget;
//! * the **persistent result store** ([`store`]) keeps every simulated
//!   chunk keyed by a stable hash of the full point configuration
//!   ([`hash`]) — behind a [`store::StoreBackend`] trait with a JSONL
//!   interchange format and an indexed binary segment format
//!   (`--store-backend`) — so re-running a figure skips converged
//!   points and interrupted campaigns resume where they stopped;
//! * the **manifest** ([`manifest`]) summarizes realized budgets,
//!   achieved confidence intervals and store-hit rates for the bench
//!   binaries and CI assertions;
//! * the **sharding coordinator** ([`shard`]) splits a campaign across
//!   hosts by stable point hash (`--shard i/n`): each host runs the
//!   points it owns into suffixed store/manifest files, and
//!   [`shard::merge`] folds any complete shard set back into files
//!   byte-identical (manifest) / record-identical (store) to a
//!   single-host run. [`shard::gc`] and [`shard::verify`] keep
//!   long-lived stores healthy;
//! * the **dispatcher** ([`dispatch`]) automates a sharded run: it
//!   launches the `--shard i/n` legs behind a pluggable [`Launcher`]
//!   (child processes locally; SSH/queue backends plug into the same
//!   trait), heartbeat-monitors their artifacts, steals work from dead
//!   or stalled legs by resuming their stores in a rescue leg, and runs
//!   merge + verify automatically.
//!
//! # Determinism contract
//!
//! Chunking never changes results: packet `p` of a point draws the same
//! RNG stream regardless of which chunk (or thread, or process) simulates
//! it, so an adaptive campaign that realizes `n` packets produces
//! [`HarqStats`] bit-identical to a one-shot
//! [`SimulationEngine::run_point`] over `n` packets — for any thread
//! count, with or without store hits. Stopping decisions depend only on
//! merged statistics, hence are equally reproducible.
//!
//! # Example
//!
//! ```no_run
//! use resilience_core::campaign::{Campaign, CampaignPoint, CampaignSettings};
//! use resilience_core::config::SystemConfig;
//! use resilience_core::engine::SimulationEngine;
//! use resilience_core::montecarlo::StorageConfig;
//! use resilience_core::simulator::LinkSimulator;
//!
//! let cfg = SystemConfig::fast_test();
//! let sim = LinkSimulator::new(cfg);
//! let campaign = Campaign::new("demo", CampaignSettings::default(), SimulationEngine::auto());
//! let report = campaign.run(
//!     &sim,
//!     &[CampaignPoint {
//!         label: "clean @ 18 dB".into(),
//!         storage: StorageConfig::Quantized,
//!         snr_db: 18.0,
//!         max_packets: 240,
//!         seed: 42,
//!         fault_seed: None,
//!     }],
//! );
//! println!("{}", report.table());
//! ```

pub mod controller;
pub mod dispatch;
pub mod hash;
pub mod manifest;
pub mod shard;
pub mod store;

use std::cell::{Cell, RefCell};
use std::path::{Path, PathBuf};
use std::time::Instant;

use hspa_phy::harq::{HarqStats, LlrBuffer};
use hspa_phy::turbo::AccuracyTier;

use crate::engine::{ChunkSpec, CustomChunk, GridResult, SimulationEngine};
use crate::montecarlo::StorageConfig;
use crate::report::render_table;
use crate::simulator::LinkSimulator;
use crate::telemetry::{
    self, Counter, EventLog, Field, Gauge, Histogram, LiveSnapshot, PointProgress,
};

use dsp::rng::{derive_seed, STREAM_FAULT_MAP};

pub use controller::{CampaignSettings, PrecisionCheck};
pub use dispatch::{
    dispatch, BackoffPolicy, CommandLauncher, DispatchConfig, DispatchReport, Launcher, Leg,
    LocalLauncher,
};
pub use manifest::{Manifest, ManifestSummary, ManifestTotals};
pub use shard::ShardSpec;
pub use store::{BackendKind, QueryFilter, ResultStore, StoreBackend};

/// The default on-disk location of campaign stores and manifests.
pub const DEFAULT_STORE_DIR: &str = "target/campaign";

/// One operating point of a campaign over the standard storage backends.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPoint {
    /// Human-readable label for manifests and tables.
    // identity: excluded(presentation only; renaming a point must keep resuming its stored chunks)
    pub label: String,
    /// LLR-storage backend under test.
    pub storage: StorageConfig,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Maximum packet budget (the fixed-budget equivalent).
    // identity: excluded(budget cap; chunks are keyed per packet index, so raising the cap extends rather than invalidates)
    pub max_packets: usize,
    /// Seed of this point's stream subtree.
    pub seed: u64,
    /// Explicit die seed (grids share one die per row); `None` derives
    /// the point's own.
    pub fault_seed: Option<u64>,
}

/// A campaign point whose LLR buffer comes from a caller factory. The
/// `fingerprint` must describe the factory's output for this point — it
/// replaces the storage field in the store key, so it has to cover every
/// knob the factory closes over.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomCampaignPoint {
    /// Human-readable label for manifests and tables.
    // identity: excluded(presentation only; renaming a point must keep resuming its stored chunks)
    pub label: String,
    /// Canonical description of the custom buffer configuration.
    // identity: hashed(passed to custom_fingerprint as the descriptor string replacing the storage field)
    pub fingerprint: String,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Maximum packet budget.
    // identity: excluded(budget cap; chunks are keyed per packet index, so raising the cap extends rather than invalidates)
    pub max_packets: usize,
    /// Seed of this point's stream subtree.
    pub seed: u64,
}

/// Final state of one campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Label copied from the input point.
    pub label: String,
    /// Stable store key of the point ([`hash::point_key`]).
    pub key: u64,
    /// Whether this process's shard owns the point. Under `--shard i/n`
    /// the outcomes of foreign points are placeholders (zero packets)
    /// that keep result shapes intact; only owned points enter the
    /// manifest and the store.
    pub owned: bool,
    /// Operating SNR (dB).
    pub snr_db: f64,
    /// Merged statistics over every realized chunk.
    pub stats: HarqStats,
    /// The point's maximum budget.
    pub max_packets: usize,
    /// Achieved confidence-interval quality.
    pub check: PrecisionCheck,
    /// Whether the stopping rule fired (false = budget cap).
    pub converged: bool,
    /// Chunks executed.
    pub chunks: usize,
    /// Of those, chunks served from the store.
    pub chunks_from_store: usize,
    /// Packets served from the store — the packet-weighted view of
    /// `chunks_from_store`, which CI's resume assertions need (chunk
    /// counts weight a 16-packet warmup chunk the same as a 4096-packet
    /// tail chunk).
    pub packets_from_store: usize,
    /// Decoder accuracy tier the point ran at (from the simulator's
    /// [`crate::config::SystemConfig`]); recorded into the manifest for
    /// `campaign-admin query --tier`.
    pub tier: AccuracyTier,
}

impl PointOutcome {
    /// Realized packet count.
    pub fn packets(&self) -> usize {
        self.stats.packets as usize
    }
}

/// Result of one campaign run call.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Outcomes in input-point order.
    pub outcomes: Vec<PointOutcome>,
}

impl CampaignReport {
    /// The merged statistics, in input-point order.
    pub fn stats(&self) -> Vec<HarqStats> {
        self.outcomes.iter().map(|o| o.stats.clone()).collect()
    }

    /// Packets realized across all points.
    pub fn packets_realized(&self) -> u64 {
        self.outcomes.iter().map(|o| o.stats.packets).sum()
    }

    /// Packets a fixed budget would have spent.
    pub fn budget_packets(&self) -> u64 {
        self.outcomes.iter().map(|o| o.max_packets as u64).sum()
    }

    /// Chunk executions served from the store.
    pub fn chunks_from_store(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.chunks_from_store as u64)
            .sum()
    }

    /// Chunk executions in total.
    pub fn chunks_total(&self) -> u64 {
        self.outcomes.iter().map(|o| o.chunks as u64).sum()
    }

    /// Packets served from the store across all points.
    pub fn packets_from_store(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.packets_from_store as u64)
            .sum()
    }

    /// Per-point achieved-CI table (label, packets, BLER with its 95 %
    /// interval, relative half-width, stop reason).
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.label.clone(),
                    format!("{}/{}", o.packets(), o.max_packets),
                    format!(
                        "{:.4} [{:.4}, {:.4}]",
                        o.check.bler, o.check.ci.0, o.check.ci.1
                    ),
                    format!("{:.2}", o.check.rel_half_width),
                    if !o.owned {
                        "other-shard"
                    } else if o.converged {
                        "converged"
                    } else {
                        "budget-cap"
                    }
                    .into(),
                    format!("{}/{}", o.chunks_from_store, o.chunks),
                ]
            })
            .collect();
        render_table(
            &[
                "point".into(),
                "packets".into(),
                "BLER [95% CI]".into(),
                "rel hw".into(),
                "stop".into(),
                "store".into(),
            ],
            &rows,
        )
    }
}

/// Internal descriptor shared by the standard and custom run paths.
struct PointDesc {
    label: String,
    snr_db: f64,
    key: u64,
    max_packets: usize,
}

/// An adaptive, store-backed campaign over one simulator configuration.
///
/// A single instance accumulates one manifest across all its run calls
/// (experiments with several sweeps reuse one campaign), rewriting
/// `<store_dir>/<name>.manifest.json` after each call.
#[derive(Debug)]
pub struct Campaign {
    name: String,
    settings: CampaignSettings,
    engine: SimulationEngine,
    store_dir: PathBuf,
    manifest: RefCell<Manifest>,
    /// `--no-resume` truncates the store only on the first open.
    truncated: Cell<bool>,
    /// Per-instance override of the process-global telemetry exposition
    /// flag; `None` follows [`telemetry::enabled`]. Deliberately NOT in
    /// [`CampaignSettings`] — settings render into the manifest, and
    /// telemetry must never alter manifest bytes.
    telemetry: Cell<Option<bool>>,
    /// Live-snapshot sequence number, monotonic across run calls so the
    /// dispatcher's heartbeat probe never sees it reset.
    snapshot_seq: Cell<u64>,
    /// JSONL event log, created lazily on the first run call with
    /// exposition enabled (so disabled campaigns touch no files).
    events: RefCell<Option<EventLog>>,
}

impl Campaign {
    /// Creates a campaign storing under [`DEFAULT_STORE_DIR`].
    pub fn new(
        name: impl Into<String>,
        settings: CampaignSettings,
        engine: SimulationEngine,
    ) -> Self {
        let name = name.into();
        Self {
            manifest: RefCell::new(Manifest::new(name.clone(), settings)),
            name,
            settings,
            engine,
            store_dir: PathBuf::from(DEFAULT_STORE_DIR),
            truncated: Cell::new(false),
            telemetry: Cell::new(None),
            snapshot_seq: Cell::new(0),
            events: RefCell::new(None),
        }
    }

    /// Overrides the store directory (tests use a temp dir).
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = dir.into();
        self
    }

    /// Overrides telemetry *exposition* for this instance (live
    /// snapshot, event log and Prometheus files under the store
    /// directory). Metric recording is always on and results are
    /// byte-identical either way; this flag only controls file output.
    pub fn with_telemetry(self, on: bool) -> Self {
        self.telemetry.set(Some(on));
        self
    }

    /// Whether this instance writes telemetry exposition files.
    fn telemetry_enabled(&self) -> bool {
        self.telemetry.get().unwrap_or_else(telemetry::enabled)
    }

    /// The campaign name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The controller settings.
    pub fn settings(&self) -> &CampaignSettings {
        &self.settings
    }

    /// Path of the result store (shard-suffixed under `--shard i/n` so
    /// parallel shard runs never collide; the extension names the
    /// `--store-backend`).
    pub fn store_path(&self) -> PathBuf {
        self.store_dir.join(shard::store_file(
            &self.name,
            self.settings.shard,
            self.settings.backend,
        ))
    }

    /// Path of the manifest file (shard-suffixed under `--shard i/n`).
    pub fn manifest_path(&self) -> PathBuf {
        self.store_dir
            .join(shard::manifest_file(&self.name, self.settings.shard))
    }

    /// Path of the live telemetry snapshot (shard-suffixed).
    pub fn telemetry_path(&self) -> PathBuf {
        self.store_dir
            .join(shard::telemetry_file(&self.name, self.settings.shard))
    }

    /// Path of the telemetry event log (shard-suffixed).
    pub fn events_path(&self) -> PathBuf {
        self.store_dir
            .join(shard::events_file(&self.name, self.settings.shard))
    }

    /// Path of the Prometheus-style text snapshot (shard-suffixed).
    pub fn prom_path(&self) -> PathBuf {
        self.store_dir
            .join(shard::prom_file(&self.name, self.settings.shard))
    }

    /// Default manifest path of a named campaign under the default store
    /// directory — where the bench binaries look for their summaries.
    pub fn default_manifest_path(name: &str) -> PathBuf {
        Path::new(DEFAULT_STORE_DIR).join(shard::manifest_file(name, ShardSpec::single()))
    }

    /// [`Campaign::default_manifest_path`] for explicit settings —
    /// resolves the shard-suffixed file of a `--shard i/n` run.
    pub fn manifest_path_for(name: &str, settings: &CampaignSettings) -> PathBuf {
        Path::new(DEFAULT_STORE_DIR).join(shard::manifest_file(name, settings.shard))
    }

    fn open_store(&self) -> ResultStore {
        // `--no-resume` wipes once per campaign instance, not once per
        // run call — later calls must still see this instance's records.
        let resume = self.settings.resume || self.truncated.get();
        self.truncated.set(true);
        // An unopenable store is fatal, not a miss: quietly running
        // without it would re-simulate every chunk and double-append
        // once the file becomes accessible again.
        ResultStore::open(self.store_path(), resume).unwrap_or_else(|e| {
            // lint: allow(no-panic, deliberate fatal: running without the store would re-simulate and double-append on recovery)
            panic!(
                "campaign {}: cannot open result store {}: {e}",
                self.name,
                self.store_path().display()
            )
        })
    }

    /// Runs standard-storage points adaptively; outcomes keep input
    /// order.
    pub fn run(&self, sim: &LinkSimulator, points: &[CampaignPoint]) -> CampaignReport {
        let cfg = *sim.config();
        let descs: Vec<PointDesc> = points
            .iter()
            .map(|p| PointDesc {
                label: p.label.clone(),
                snr_db: p.snr_db,
                key: hash::point_key(&hash::point_fingerprint(
                    &cfg,
                    &p.storage,
                    p.snr_db,
                    p.seed,
                    p.fault_seed,
                )),
                max_packets: p.max_packets,
            })
            .collect();
        self.run_adaptive(sim, &descs, |batch| {
            let chunks: Vec<ChunkSpec> = batch
                .iter()
                .map(|&(i, first_packet, n_packets)| ChunkSpec {
                    storage: points[i].storage.clone(),
                    snr_db: points[i].snr_db,
                    first_packet,
                    n_packets,
                    seed: points[i].seed,
                    fault_seed: points[i].fault_seed,
                })
                .collect();
            self.engine.run_chunks(sim, &chunks)
        })
    }

    /// Runs custom-buffer points adaptively. The factory receives the
    /// index of the point **in `points`** plus the point's fault-stream
    /// seed, exactly like
    /// [`SimulationEngine::run_batch_with_buffers`].
    pub fn run_with_buffers<F>(
        &self,
        sim: &LinkSimulator,
        points: &[CustomCampaignPoint],
        make_buffer: F,
    ) -> CampaignReport
    where
        F: Fn(usize, u64) -> Box<dyn LlrBuffer + Send> + Sync,
    {
        let cfg = *sim.config();
        let descs: Vec<PointDesc> = points
            .iter()
            .map(|p| PointDesc {
                label: p.label.clone(),
                snr_db: p.snr_db,
                key: hash::point_key(&hash::custom_fingerprint(
                    &cfg,
                    &p.fingerprint,
                    p.snr_db,
                    p.seed,
                )),
                max_packets: p.max_packets,
            })
            .collect();
        self.run_adaptive(sim, &descs, |batch| {
            let chunks: Vec<CustomChunk> = batch
                .iter()
                .map(|&(i, first_packet, n_packets)| CustomChunk {
                    snr_db: points[i].snr_db,
                    first_packet,
                    n_packets,
                    seed: points[i].seed,
                })
                .collect();
            // Remap chunk indices back onto the caller's point indices.
            let owners: Vec<usize> = batch.iter().map(|&(i, _, _)| i).collect();
            self.engine
                .run_chunks_with_buffers(sim, &chunks, |chunk_idx, fault_seed| {
                    make_buffer(owners[chunk_idx], fault_seed)
                })
        })
    }

    /// Campaign equivalent of [`SimulationEngine::run_grid`]: identical
    /// seed-tree semantics (row `r` draws its subtree from
    /// `derive_seed(master_seed, r)` and shares **one die** across its
    /// SNR sweep), with per-point adaptive budgets and store resume.
    pub fn run_grid(
        &self,
        sim: &LinkSimulator,
        storages: &[StorageConfig],
        snrs_db: &[f64],
        max_packets: usize,
        master_seed: u64,
    ) -> GridResult {
        let mut points = Vec::with_capacity(storages.len() * snrs_db.len());
        for (r, storage) in storages.iter().enumerate() {
            let row_seed = derive_seed(master_seed, r as u64);
            let die_seed = derive_seed(row_seed, STREAM_FAULT_MAP);
            for (c, &snr_db) in snrs_db.iter().enumerate() {
                points.push(CampaignPoint {
                    label: format!("{} @ {snr_db} dB", storage.label()),
                    storage: storage.clone(),
                    snr_db,
                    max_packets,
                    seed: derive_seed(row_seed, 0x100 + c as u64),
                    fault_seed: Some(die_seed),
                });
            }
        }
        let flat = self.run(sim, &points).stats();
        let mut rows = Vec::with_capacity(storages.len());
        let mut it = flat.into_iter();
        for _ in 0..storages.len() {
            rows.push(it.by_ref().take(snrs_db.len()).collect());
        }
        GridResult {
            snr_db: snrs_db.to_vec(),
            stats: rows,
        }
    }

    /// Campaign equivalent of [`SimulationEngine::run_sweep`]: point `i`
    /// draws its own die from `derive_seed(seed, i)`.
    pub fn run_sweep(
        &self,
        sim: &LinkSimulator,
        storage: &StorageConfig,
        snrs_db: &[f64],
        max_packets: usize,
        seed: u64,
    ) -> Vec<HarqStats> {
        let points: Vec<CampaignPoint> = snrs_db
            .iter()
            .enumerate()
            .map(|(i, &snr_db)| CampaignPoint {
                label: format!("{} @ {snr_db} dB", storage.label()),
                storage: storage.clone(),
                snr_db,
                max_packets,
                seed: derive_seed(seed, i as u64),
                fault_seed: None,
            })
            .collect();
        self.run(sim, &points).stats()
    }

    /// The cumulative manifest over this instance's run calls.
    pub fn manifest(&self) -> Manifest {
        self.manifest.borrow().clone()
    }

    /// Builds and atomically writes the live snapshot, plus the
    /// Prometheus text render of the global registry. Failures are
    /// warnings: exposition must never take a campaign down.
    #[allow(clippy::too_many_arguments)]
    fn write_exposition(
        &self,
        done: bool,
        run_start: Instant,
        descs: &[PointDesc],
        owned: &[bool],
        stats: &[HarqStats],
        converged: &[bool],
        packets_hit: &[usize],
        store: &ResultStore,
    ) {
        // heartbeat-artifact-goes-stale: skip the snapshot + Prometheus
        // writes so the artifacts' mtimes freeze while the leg keeps
        // simulating — exactly the failure the stall monitor watches for.
        if crate::failpoint::armed()
            && crate::failpoint::should_fire(
                crate::failpoint::Site::HeartbeatStale,
                &self.settings.shard.to_string(),
            )
        {
            return;
        }
        let elapsed = run_start.elapsed();
        let mut points = Vec::new();
        let mut packets_realized = 0u64;
        let mut packets_from_store = 0u64;
        let mut points_converged = 0u64;
        for (i, desc) in descs.iter().enumerate() {
            if !owned[i] {
                continue;
            }
            let check = PrecisionCheck::of(&stats[i], &self.settings);
            packets_realized += stats[i].packets;
            packets_from_store += packets_hit[i] as u64;
            points_converged += u64::from(converged[i]);
            points.push(PointProgress {
                key: desc.key,
                label: desc.label.clone(),
                packets: stats[i].packets,
                max_packets: desc.max_packets as u64,
                bler: check.bler,
                half_width: check.rel_half_width,
                converged: converged[i],
            });
        }
        let packets_simulated = packets_realized - packets_from_store;
        let secs = elapsed.as_secs_f64();
        let seq = self.snapshot_seq.get() + 1;
        self.snapshot_seq.set(seq);
        let snap = LiveSnapshot {
            seq,
            elapsed_ms: elapsed.as_millis() as u64,
            done,
            points_total: points.len() as u64,
            points_converged,
            packets_realized,
            packets_from_store,
            packets_simulated,
            packets_per_sec: if secs > 0.0 {
                packets_simulated as f64 / secs
            } else {
                0.0
            },
            store_chunk_hits: store.hits,
            store_chunk_misses: store.misses,
            points,
        };
        if let Err(e) = snap.write_atomic(&self.telemetry_path()) {
            eprintln!(
                "campaign {}: telemetry snapshot write failed: {e}",
                self.name
            );
        }
        if let Err(e) = std::fs::write(self.prom_path(), telemetry::snapshot().render_prometheus())
        {
            eprintln!(
                "campaign {}: prometheus snapshot write failed: {e}",
                self.name
            );
        }
    }

    /// The adaptive loop shared by both run paths. `simulate` receives
    /// `(point_index, first_packet, n_packets)` triples for the chunks
    /// the store could not serve and returns their statistics in order.
    ///
    /// Under `--shard i/n` only the points this shard owns
    /// ([`ShardSpec::owns`] on the stable key) are scheduled; foreign
    /// points finish immediately with placeholder outcomes. Every point
    /// still receives a **global index** (cumulative across run calls),
    /// so shard manifests agree on one enumeration order and
    /// [`shard::merge`] can reassemble the single-host manifest.
    fn run_adaptive<F>(
        &self,
        sim: &LinkSimulator,
        descs: &[PointDesc],
        simulate: F,
    ) -> CampaignReport
    where
        F: Fn(&[(usize, usize, usize)]) -> Vec<HarqStats>,
    {
        let cfg = *sim.config();
        let mut store = self.open_store();
        let mut stats: Vec<HarqStats> = descs
            .iter()
            .map(|_| HarqStats::new(cfg.max_transmissions, cfg.payload_bits))
            .collect();
        let owned: Vec<bool> = descs
            .iter()
            .map(|d| self.settings.shard.owns(d.key))
            .collect();
        let mut converged = vec![false; descs.len()];
        let mut chunks_run = vec![0usize; descs.len()];
        let mut chunks_hit = vec![0usize; descs.len()];
        let mut packets_hit = vec![0usize; descs.len()];

        // determinism: wallclock(telemetry only; elapsed time feeds event-log timestamps, never results)
        let run_start = Instant::now();
        let expo = self.telemetry_enabled();
        telemetry::gauge_add(
            Gauge::PointsTotal,
            owned.iter().filter(|&&o| o).count() as i64,
        );
        if expo {
            let mut events = self.events.borrow_mut();
            if events.is_none() {
                match EventLog::create(&self.events_path()) {
                    Ok(log) => *events = Some(log),
                    Err(e) => {
                        eprintln!("campaign {}: event log create failed: {e}", self.name)
                    }
                }
            }
            if let Some(log) = events.as_ref() {
                log.emit(
                    "run_started",
                    &[
                        ("campaign", Field::Str(&self.name)),
                        ("points", Field::U64(descs.len() as u64)),
                        (
                            "owned",
                            Field::U64(owned.iter().filter(|&&o| o).count() as u64),
                        ),
                        ("shard", Field::Str(&self.settings.shard.to_string())),
                    ],
                );
            }
        }

        loop {
            // Points still owed a chunk. The schedule is driven by each
            // point's realized packet count (`stats[i].packets`), a pure
            // function of the merged statistics — identical whether the
            // packets were simulated or replayed from the store.
            let mut due: Vec<(usize, usize, usize)> = Vec::new();
            for (i, desc) in descs.iter().enumerate() {
                if !owned[i] || converged[i] {
                    continue;
                }
                if let Some((first, len)) =
                    self.settings
                        .next_chunk(stats[i].packets as usize, desc.max_packets, &stats[i])
                {
                    due.push((i, first, len));
                }
            }
            if due.is_empty() {
                break;
            }
            telemetry::counter_add(Counter::ChunksScheduled, due.len() as u64);
            for &(_, _, len) in &due {
                telemetry::hist_record(Histogram::ChunkPackets, len as u64);
            }

            // Serve what the store already knows; simulate the rest as
            // one sharded engine batch.
            let mut misses: Vec<(usize, usize, usize)> = Vec::new();
            for &(i, first, len) in &due {
                let id = store::ChunkId {
                    point: descs[i].key,
                    first_packet: first,
                    n_packets: len,
                };
                chunks_run[i] += 1;
                if let Some(hit) = store.fetch(id) {
                    chunks_hit[i] += 1;
                    packets_hit[i] += len;
                    stats[i].merge(&hit);
                } else {
                    misses.push((i, first, len));
                }
            }
            if !misses.is_empty() {
                let fresh = simulate(&misses);
                assert_eq!(fresh.len(), misses.len(), "one stats block per chunk");
                for (&(i, first, len), chunk_stats) in misses.iter().zip(&fresh) {
                    let id = store::ChunkId {
                        point: descs[i].key,
                        first_packet: first,
                        n_packets: len,
                    };
                    // A failed write only loses resumability, never
                    // correctness — warn and continue.
                    if let Err(e) = store.put(id, chunk_stats) {
                        eprintln!("campaign {}: store append failed: {e}", self.name);
                    }
                    stats[i].merge(chunk_stats);
                }
            }

            // Chaos hooks fire between chunk rounds, after the store
            // appends above — everything already simulated is durable, so
            // a rescue leg resumes instead of re-simulating.
            if crate::failpoint::armed() {
                let ctx = self.settings.shard.to_string();
                if crate::failpoint::should_fire(crate::failpoint::Site::LegCrash, &ctx) {
                    eprintln!("campaign {}: failpoint leg-crash", self.name);
                    std::process::exit(41);
                }
                if crate::failpoint::should_fire(crate::failpoint::Site::LegHang, &ctx) {
                    eprintln!(
                        "campaign {}: failpoint leg-hang (awaiting stall kill)",
                        self.name
                    );
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
            }

            // Stopping decisions depend only on merged statistics, so
            // they are identical whether chunks were simulated or read
            // back — the resume path cannot change results.
            for &(i, _, _) in &due {
                if !converged[i] && self.settings.converged(&stats[i]) {
                    converged[i] = true;
                    telemetry::counter_add(Counter::PointsConverged, 1);
                    telemetry::gauge_add(Gauge::PointsConvergedNow, 1);
                }
            }

            if expo {
                // Wilson-CI trajectory: one event per point touched this
                // round, so the event log replays how each interval
                // tightened toward the stopping rule.
                if let Some(log) = self.events.borrow().as_ref() {
                    for &(i, first, len) in &due {
                        let check = PrecisionCheck::of(&stats[i], &self.settings);
                        log.emit(
                            "chunk_done",
                            &[
                                ("key", Field::Str(&format!("{:016x}", descs[i].key))),
                                ("label", Field::Str(&descs[i].label)),
                                ("first_packet", Field::U64(first as u64)),
                                ("n_packets", Field::U64(len as u64)),
                                ("packets", Field::U64(stats[i].packets)),
                                ("bler", Field::F64(check.bler)),
                                ("ci_lo", Field::F64(check.ci.0)),
                                ("ci_hi", Field::F64(check.ci.1)),
                                ("rel_half_width", Field::F64(check.rel_half_width)),
                                ("converged", Field::Bool(converged[i])),
                            ],
                        );
                    }
                }
                self.write_exposition(
                    false,
                    run_start,
                    descs,
                    &owned,
                    &stats,
                    &converged,
                    &packets_hit,
                    &store,
                );
            }
        }

        if expo {
            self.write_exposition(
                true,
                run_start,
                descs,
                &owned,
                &stats,
                &converged,
                &packets_hit,
                &store,
            );
            if let Some(log) = self.events.borrow().as_ref() {
                log.emit(
                    "run_finished",
                    &[
                        ("campaign", Field::Str(&self.name)),
                        (
                            "converged",
                            Field::U64(converged.iter().filter(|&&c| c).count() as u64),
                        ),
                        (
                            "packets_realized",
                            Field::U64(stats.iter().map(|s| s.packets).sum()),
                        ),
                    ],
                );
            }
        }

        let outcomes: Vec<PointOutcome> = descs
            .iter()
            .enumerate()
            .map(|(i, desc)| PointOutcome {
                label: desc.label.clone(),
                key: desc.key,
                owned: owned[i],
                snr_db: desc.snr_db,
                check: PrecisionCheck::of(&stats[i], &self.settings),
                stats: stats[i].clone(),
                max_packets: desc.max_packets,
                converged: converged[i],
                chunks: chunks_run[i],
                chunks_from_store: chunks_hit[i],
                packets_from_store: packets_hit[i],
                tier: cfg.accuracy_tier,
            })
            .collect();

        {
            let mut manifest = self.manifest.borrow_mut();
            let base = manifest.points_enumerated;
            for (i, o) in outcomes.iter().enumerate() {
                if o.owned {
                    manifest
                        .points
                        .push(manifest::PointRecord::from_outcome(o, base + i as u64));
                }
            }
            manifest.points_enumerated = base + outcomes.len() as u64;
            if let Err(e) = manifest.write(&self.manifest_path()) {
                eprintln!("campaign {}: manifest write failed: {e}", self.name);
            }
        }

        CampaignReport { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("campaign-mod-test-{}-{tag}", std::process::id()))
    }

    fn demo_points(cfg: &SystemConfig, max_packets: usize) -> Vec<CampaignPoint> {
        vec![
            CampaignPoint {
                label: "clean high SNR".into(),
                storage: StorageConfig::Quantized,
                snr_db: 25.0,
                max_packets,
                seed: 11,
                fault_seed: None,
            },
            CampaignPoint {
                label: "faulty low SNR".into(),
                storage: StorageConfig::unprotected(0.10, cfg.llr_bits),
                snr_db: 4.0,
                max_packets,
                seed: 12,
                fault_seed: None,
            },
        ]
    }

    #[test]
    fn campaign_realizes_within_budget_and_persists() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let dir = temp_dir("budget");
        let _ = std::fs::remove_dir_all(&dir);
        let settings = CampaignSettings {
            initial_chunk: 8,
            ..Default::default()
        };
        let campaign =
            Campaign::new("t1", settings, SimulationEngine::serial()).with_store_dir(&dir);
        let report = campaign.run(&sim, &demo_points(&cfg, 16));
        for o in &report.outcomes {
            assert!(o.packets() >= 8 && o.packets() <= 16, "{}", o.packets());
            assert_eq!(o.chunks_from_store, 0, "first run has no hits");
        }
        assert!(campaign.store_path().exists());
        assert!(campaign.manifest_path().exists());

        // A second campaign over the same points is served from disk and
        // produces bit-identical outcomes.
        let campaign2 =
            Campaign::new("t1", settings, SimulationEngine::serial()).with_store_dir(&dir);
        let report2 = campaign2.run(&sim, &demo_points(&cfg, 16));
        assert_eq!(report.stats(), report2.stats());
        assert_eq!(report2.chunks_from_store(), report2.chunks_total());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_resume_truncates_once_per_instance() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let dir = temp_dir("noresume");
        let _ = std::fs::remove_dir_all(&dir);
        let settings = CampaignSettings {
            initial_chunk: 4,
            resume: false,
            ..Default::default()
        };
        let points = demo_points(&cfg, 4);
        let c1 = Campaign::new("t2", settings, SimulationEngine::serial()).with_store_dir(&dir);
        c1.run(&sim, &points[..1]);
        // Second call on the SAME instance must keep the first call's
        // records (truncate-once semantics)...
        let r = c1.run(&sim, &points[..1]);
        assert_eq!(r.chunks_from_store(), r.chunks_total());
        // ...while a fresh --no-resume instance wipes them again.
        let c2 = Campaign::new("t2", settings, SimulationEngine::serial()).with_store_dir(&dir);
        let r2 = c2.run(&sim, &points[..1]);
        assert_eq!(r2.chunks_from_store(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_table_lists_every_point() {
        let cfg = SystemConfig::fast_test();
        let sim = LinkSimulator::new(cfg);
        let dir = temp_dir("table");
        let _ = std::fs::remove_dir_all(&dir);
        let settings = CampaignSettings {
            initial_chunk: 4,
            ..Default::default()
        };
        let campaign =
            Campaign::new("t3", settings, SimulationEngine::serial()).with_store_dir(&dir);
        let table = campaign.run(&sim, &demo_points(&cfg, 4)).table();
        assert!(table.contains("clean high SNR"));
        assert!(table.contains("faulty low SNR"));
        assert!(table.contains("BLER"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
