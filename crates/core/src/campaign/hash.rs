//! Stable configuration hashing for the campaign result store.
//!
//! Store records must survive process restarts and be shareable between
//! binaries, so keys cannot come from `std::collections::hash_map`'s
//! randomized hasher. Instead every operating point is rendered to a
//! canonical fingerprint string (system config + storage + SNR + seed
//! tree position) and hashed with FNV-1a 64 — stable across runs,
//! platforms and Rust versions.

use crate::config::SystemConfig;
use crate::montecarlo::StorageConfig;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Schema version of the fingerprint layout. Bump on any change to the
/// canonical string — or to simulation behavior itself (decoder,
/// channel, buffer semantics) — so stale stores miss instead of
/// replaying results computed by older physics.
///
/// v2: `SystemConfig` grew `accuracy_tier` (its `Debug` repr, and so the
/// canonical string, changed); stores keyed by v1 predate tiered
/// decoding and must miss. The batch width is deliberately *not* part of
/// the fingerprint — batched and unbatched runs are bit-identical.
pub const FINGERPRINT_VERSION: u32 = 2;

/// Canonical fingerprint of one engine-backed operating point.
///
/// Covers everything that changes the point's statistics: the full link
/// configuration, the storage backend, the SNR (exact bits), the seed of
/// the point's stream subtree and the (possibly overridden) die seed.
pub fn point_fingerprint(
    cfg: &SystemConfig,
    storage: &StorageConfig,
    snr_db: f64,
    seed: u64,
    fault_seed: Option<u64>,
) -> String {
    let fault = match fault_seed {
        Some(s) => format!("{s:016x}"),
        None => "derived".to_string(),
    };
    format!(
        "v{FINGERPRINT_VERSION}|{cfg:?}|{storage:?}|snr={:016x}|seed={seed:016x}|fault={fault}",
        snr_db.to_bits()
    )
}

/// Canonical fingerprint of a point whose buffer comes from a caller
/// factory. `custom` must describe the factory's output (it replaces the
/// storage field of the fingerprint) and the caller is responsible for
/// including every knob the factory closes over.
pub fn custom_fingerprint(cfg: &SystemConfig, custom: &str, snr_db: f64, seed: u64) -> String {
    format!(
        "v{FINGERPRINT_VERSION}|{cfg:?}|custom:{custom}|snr={:016x}|seed={seed:016x}|fault=derived",
        snr_db.to_bits()
    )
}

/// The 64-bit store key of a point fingerprint.
pub fn point_key(fingerprint: &str) -> u64 {
    fnv1a64(fingerprint.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprints_separate_everything() {
        let cfg = SystemConfig::fast_test();
        let mut cfg2 = cfg;
        cfg2.decoder_iterations += 1;
        let tiered = cfg.with_tier(hspa_phy::turbo::AccuracyTier::Fast32);
        assert_ne!(
            point_fingerprint(&cfg, &StorageConfig::Perfect, 10.0, 42, None),
            point_fingerprint(&tiered, &StorageConfig::Perfect, 10.0, 42, None),
            "accuracy tier must key the store"
        );
        let s = StorageConfig::Quantized;
        let s2 = StorageConfig::unprotected(0.1, cfg.llr_bits);
        let base = point_fingerprint(&cfg, &s, 10.0, 42, None);
        for other in [
            point_fingerprint(&cfg2, &s, 10.0, 42, None),
            point_fingerprint(&cfg, &s2, 10.0, 42, None),
            point_fingerprint(&cfg, &s, 10.5, 42, None),
            point_fingerprint(&cfg, &s, 10.0, 43, None),
            point_fingerprint(&cfg, &s, 10.0, 42, Some(7)),
        ] {
            assert_ne!(base, other);
            assert_ne!(point_key(&base), point_key(&other));
        }
        // Same inputs → same key, every time.
        assert_eq!(base, point_fingerprint(&cfg, &s, 10.0, 42, None));
    }

    #[test]
    fn custom_fingerprint_tracks_descriptor() {
        let cfg = SystemConfig::fast_test();
        let a = custom_fingerprint(&cfg, "transient p=1e-4", 10.0, 1);
        let b = custom_fingerprint(&cfg, "transient p=1e-3", 10.0, 1);
        assert_ne!(a, b);
    }
}
