//! Adaptive packet-budget control: deterministic chunk schedules and a
//! Wilson-score stopping rule on BLER.
//!
//! Fixed per-point budgets spend most of their packets on easy operating
//! points (high SNR, BLER ≈ 0) while under-resolving the waterfall
//! region. The controller instead runs every point in growing chunks and
//! stops as soon as a 95 % Wilson confidence interval on the point's
//! block-error rate is tight enough:
//!
//! * **resolved-low**: the whole interval sits below
//!   [`CampaignSettings::bler_floor`] — the point is "easy"; more packets
//!   would only sharpen a value the figures render as ≈ 0;
//! * **relative precision**: the interval half-width is within
//!   [`CampaignSettings::precision`] of the BLER estimate;
//! * **budget cap**: the point reaches its maximum packet budget (hard
//!   waterfall points escalate here).
//!
//! The schedule is a pure function of `(initial_chunk, max_packets)` and
//! the stopping decision a pure function of the merged statistics, so an
//! adaptive run is bit-reproducible and store-resumable: neither thread
//! count nor which chunks came from disk can change when a point stops.

use dsp::stats::wilson_interval;
use hspa_phy::harq::HarqStats;

use super::shard::ShardSpec;
use super::store::BackendKind;

/// z-score of the controller's confidence level (95 %).
pub const WILSON_Z: f64 = 1.96;

/// Knobs of the adaptive budget controller (engine-independent, `Copy`
/// so [`crate::experiments::ExperimentBudget`] can embed it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSettings {
    /// Target relative half-width of the BLER confidence interval.
    // identity: excluded(stopping-rule knob; decides when to stop sampling, never what any chunk contains)
    pub precision: f64,
    /// BLER below which a point counts as resolved: once the interval's
    /// upper bound drops under this floor, no more packets are spent.
    // identity: excluded(stopping-rule knob; chunk contents are keyed per chunk, not per floor)
    pub bler_floor: f64,
    /// Packets of the first chunk (and the minimum evidence before any
    /// stopping decision).
    // identity: excluded(schedule granularity; chunk streams are seeded per packet index, so regrouping is identity-neutral)
    pub initial_chunk: usize,
    /// Reuse stored chunks from a previous run (`--resume`, the
    /// default); `false` truncates the store first (`--no-resume`).
    // identity: excluded(storage lifecycle flag; resumed and fresh runs produce byte-identical chunks)
    pub resume: bool,
    /// Absolute 95 % Wilson half-width target (`--target-ci`). When
    /// positive it replaces the relative stopping rule: a point stops as
    /// soon as its interval half-width drops to this value, and chunk
    /// sizing jumps straight to the Wilson-estimated sample count
    /// instead of blind doubling. `0.0` (the default) disables the mode.
    // identity: excluded(stopping-rule knob; alternative stop criterion over the same chunk stream)
    pub target_ci: f64,
    /// The shard this process owns (`--shard i/n`). The default `0/1`
    /// runs every point; any other value runs only the points whose
    /// stable key hashes into the shard and writes suffixed
    /// store/manifest files for [`super::shard::merge`].
    // identity: excluded(work partitioning; shard ownership selects which points run, not their results)
    pub shard: ShardSpec,
    /// Result-store backend (`--store-backend`): JSONL (the
    /// interchange/debug default) or the indexed segment format. Like
    /// `resume`, this is a storage knob, not part of the campaign's
    /// rendered identity — manifests from both backends are
    /// byte-identical.
    // identity: excluded(storage knob; both backends render byte-identical manifests)
    pub backend: BackendKind,
}

impl Default for CampaignSettings {
    fn default() -> Self {
        Self {
            precision: 0.25,
            bler_floor: 0.15,
            initial_chunk: 32,
            resume: true,
            target_ci: 0.0,
            shard: ShardSpec::single(),
            backend: BackendKind::default(),
        }
    }
}

impl CampaignSettings {
    /// Settings that never stop early: every point realizes its full
    /// budget, which makes an adaptive run bit-identical to a fixed one
    /// (used by equivalence tests).
    pub fn exhaustive() -> Self {
        Self {
            precision: 0.0,
            bler_floor: 0.0,
            ..Self::default()
        }
    }

    /// The packet range of chunk `index` of a point with the given
    /// maximum budget, or `None` past the end of the schedule.
    ///
    /// Chunks double the cumulative packet count (`initial`, then totals
    /// `2·initial`, `4·initial`, …) and clamp to `max_packets`, so even a
    /// fully escalated point runs only O(log) rounds.
    pub fn chunk(&self, index: usize, max_packets: usize) -> Option<(usize, usize)> {
        assert!(self.initial_chunk > 0, "initial chunk must be positive");
        let mut start = 0usize;
        let mut total = self.initial_chunk.min(max_packets);
        for _ in 0..index {
            if total >= max_packets {
                return None;
            }
            start = total;
            total = (total * 2).min(max_packets);
        }
        (total > start).then_some((start, total - start))
    }

    /// The next chunk of a point that has already realized `realized`
    /// packets of a `max_packets` budget, or `None` once the budget is
    /// exhausted.
    ///
    /// This is the schedule the campaign loop actually runs. It is a
    /// pure function of `(realized, max_packets, merged stats)`, so a
    /// resumed run replays exactly the same chunk ranges as the run that
    /// populated the store. In the default (relative-precision) mode it
    /// reproduces [`CampaignSettings::chunk`]'s doubling schedule; in
    /// `--target-ci` mode the chunk jumps toward the Wilson-estimated
    /// sample count for the requested absolute half-width.
    pub fn next_chunk(
        &self,
        realized: usize,
        max_packets: usize,
        stats: &HarqStats,
    ) -> Option<(usize, usize)> {
        assert!(self.initial_chunk > 0, "initial chunk must be positive");
        if realized >= max_packets {
            return None;
        }
        let total = if realized == 0 {
            self.initial_chunk.min(max_packets)
        } else if self.target_ci > 0.0 {
            self.target_sized_total(realized, stats).min(max_packets)
        } else {
            (realized * 2).min(max_packets)
        };
        (total > realized).then_some((realized, total - realized))
    }

    /// Wilson-based cumulative sample count for `--target-ci`: the
    /// estimated packets needed to shrink the absolute half-width to
    /// [`CampaignSettings::target_ci`], never less than 1.5× the
    /// realized count so a noisy early estimate cannot stall the
    /// schedule (the Wilson stopping check remains the authority).
    fn target_sized_total(&self, realized: usize, stats: &HarqStats) -> usize {
        let w = self.target_ci;
        let z2 = WILSON_Z * WILSON_Z;
        // Saturating: stats loaded from disk are range-validated, but a
        // caller-constructed block with delivered > packets must degrade
        // to p = 0, not wrap to a ~u64::MAX failure count.
        let p = stats.packets.saturating_sub(stats.delivered) as f64 / stats.packets.max(1) as f64;
        // Normal-approximation size for variance p(1-p)...
        let n_var = z2 * p * (1.0 - p) / (w * w);
        // ...and the exact Wilson width at p ∈ {0, 1}, where the
        // variance term vanishes but the interval is still
        // z²/(2(n+z²)) wide.
        let n_edge = z2 * (0.5 / w - 1.0);
        let n_req = n_var.max(n_edge).max(0.0).ceil() as usize;
        n_req.max(realized + (realized / 2).max(1))
    }

    /// Whether the merged statistics of a point satisfy the stopping
    /// rule ([`module docs`](self) for the clauses; `--target-ci`
    /// replaces them with an absolute half-width criterion).
    pub fn converged(&self, stats: &HarqStats) -> bool {
        if stats.packets == 0 {
            return false;
        }
        let check = PrecisionCheck::of(stats, self);
        if self.target_ci > 0.0 {
            check.half_width <= self.target_ci
        } else {
            check.resolved_low || check.rel_half_width <= self.precision
        }
    }
}

/// The achieved confidence-interval quality of one point — computed once
/// and reused by the stopping rule, the manifest and the reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCheck {
    /// BLER point estimate (failed packets / packets).
    pub bler: f64,
    /// 95 % Wilson interval on the BLER.
    pub ci: (f64, f64),
    /// Absolute interval half-width (the `--target-ci` metric).
    pub half_width: f64,
    /// Interval half-width relative to `max(bler, bler_floor)`.
    pub rel_half_width: f64,
    /// Whole interval below the floor (the "easy point" clause).
    pub resolved_low: bool,
}

impl PrecisionCheck {
    /// Evaluates the interval quality of merged point statistics. With
    /// no packets yet the interval is vacuous (`(0, 1)`, infinite
    /// relative half-width).
    pub fn of(stats: &HarqStats, settings: &CampaignSettings) -> Self {
        if stats.packets == 0 {
            return Self {
                bler: 0.0,
                ci: (0.0, 1.0),
                half_width: 0.5,
                rel_half_width: f64::INFINITY,
                resolved_low: false,
            };
        }
        // Saturating for the same reason as in `target_sized_total`:
        // an inverted stats block must yield BLER 0, not a garbage
        // estimate from a wrapped failure count.
        let failures = stats.packets.saturating_sub(stats.delivered);
        let ci = wilson_interval(failures, stats.packets, WILSON_Z);
        let bler = failures as f64 / stats.packets as f64;
        let half = (ci.1 - ci.0) / 2.0;
        Self {
            bler,
            ci,
            half_width: half,
            rel_half_width: half / bler.max(settings.bler_floor).max(f64::MIN_POSITIVE),
            resolved_low: ci.1 <= settings.bler_floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(packets: u64, delivered: u64) -> HarqStats {
        let mut s = HarqStats::new(4, 100);
        s.packets = packets;
        s.delivered = delivered;
        s.transmissions = packets;
        s
    }

    #[test]
    fn schedule_doubles_and_clamps() {
        let s = CampaignSettings {
            initial_chunk: 32,
            ..Default::default()
        };
        assert_eq!(s.chunk(0, 60), Some((0, 32)));
        assert_eq!(s.chunk(1, 60), Some((32, 28)));
        assert_eq!(s.chunk(2, 60), None);
        assert_eq!(s.chunk(0, 240), Some((0, 32)));
        assert_eq!(s.chunk(1, 240), Some((32, 32)));
        assert_eq!(s.chunk(2, 240), Some((64, 64)));
        assert_eq!(s.chunk(3, 240), Some((128, 112)));
        assert_eq!(s.chunk(4, 240), None);
        // Tiny budget: one clamped chunk.
        assert_eq!(s.chunk(0, 6), Some((0, 6)));
        assert_eq!(s.chunk(1, 6), None);
    }

    #[test]
    fn schedule_partitions_the_budget() {
        let s = CampaignSettings {
            initial_chunk: 7,
            ..Default::default()
        };
        for max in [1usize, 7, 8, 13, 100] {
            let mut expected_start = 0;
            let mut idx = 0;
            while let Some((start, len)) = s.chunk(idx, max) {
                assert_eq!(start, expected_start, "max={max} idx={idx}");
                assert!(len > 0);
                expected_start += len;
                idx += 1;
            }
            assert_eq!(expected_start, max, "chunks must cover 0..max");
        }
    }

    #[test]
    fn easy_points_resolve_low() {
        let s = CampaignSettings::default();
        // 32/32 delivered: Wilson upper bound ≈ 0.107 < 0.15 → stop.
        assert!(s.converged(&stats_with(32, 32)));
        // 16/16 delivered: upper bound ≈ 0.194 → keep going.
        assert!(!s.converged(&stats_with(16, 16)));
    }

    #[test]
    fn hard_points_need_relative_precision() {
        let s = CampaignSettings::default();
        // BLER 0.5 at n=32: half-width ≈ 0.16 rel 0.33 → not converged.
        assert!(!s.converged(&stats_with(32, 16)));
        // BLER 0.5 at n=256: half-width ≈ 0.061 rel 0.12 → converged.
        assert!(s.converged(&stats_with(256, 128)));
    }

    #[test]
    fn exhaustive_settings_never_stop() {
        let s = CampaignSettings::exhaustive();
        assert!(!s.converged(&stats_with(32, 32)));
        assert!(!s.converged(&stats_with(100_000, 50_000)));
    }

    #[test]
    fn precision_check_matches_wilson() {
        let s = CampaignSettings::default();
        let stats = stats_with(100, 90);
        let check = PrecisionCheck::of(&stats, &s);
        assert!((check.bler - 0.10).abs() < 1e-12);
        let (lo, hi) = wilson_interval(10, 100, WILSON_Z);
        assert_eq!(check.ci, (lo, hi));
        assert!(check.ci.0 < 0.10 && 0.10 < check.ci.1);
        assert!(!check.resolved_low);
    }

    #[test]
    fn no_evidence_is_never_converged() {
        assert!(!CampaignSettings::default().converged(&HarqStats::new(4, 100)));
    }

    #[test]
    fn inverted_stats_saturate_instead_of_underflowing() {
        // delivered > packets is rejected at store-load time, but a
        // caller can still hand such a block in; the failure count must
        // saturate to 0, not wrap to ~2^64.
        let s = CampaignSettings::default();
        let bad = stats_with(8, 9);
        let check = PrecisionCheck::of(&bad, &s);
        assert_eq!(check.bler, 0.0);
        assert!(check.ci.0 >= 0.0 && check.ci.1 <= 1.0, "{:?}", check.ci);
        // --target-ci sizing path saturates too.
        let t = CampaignSettings {
            target_ci: 0.05,
            ..s
        };
        let (_, len) = t.next_chunk(8, 10_000, &bad).expect("still schedules");
        assert!(len <= 2_000, "sane chunk from saturated p=0, got {len}");
    }

    #[test]
    fn next_chunk_matches_the_indexed_schedule() {
        // In default mode the stats-driven schedule must replay the
        // doubling schedule of `chunk(index, max)` range for range, so
        // stores written by either are interchangeable.
        let s = CampaignSettings {
            initial_chunk: 7,
            ..Default::default()
        };
        for max in [1usize, 6, 7, 8, 13, 100, 240] {
            let mut realized = 0;
            let mut idx = 0;
            while let Some((start, len)) = s.chunk(idx, max) {
                let stats = stats_with(realized as u64, realized as u64);
                assert_eq!(
                    s.next_chunk(realized, max, &stats),
                    Some((start, len)),
                    "max={max} idx={idx}"
                );
                realized += len;
                idx += 1;
            }
            let stats = stats_with(realized as u64, realized as u64);
            assert_eq!(s.next_chunk(realized, max, &stats), None);
        }
    }

    #[test]
    fn target_ci_stops_on_absolute_half_width() {
        let s = CampaignSettings {
            target_ci: 0.05,
            ..Default::default()
        };
        // BLER 0.5 at n=256: Wilson half ≈ 0.061 > 0.05 → keep going.
        assert!(!s.converged(&stats_with(256, 128)));
        // n=420: half ≈ 0.0477 → converged.
        assert!(s.converged(&stats_with(420, 210)));
        // All-delivered points converge once the one-sided interval is
        // tight: n=32 has half ≈ 0.054, n=64 ≈ 0.028.
        assert!(!s.converged(&stats_with(32, 32)));
        assert!(s.converged(&stats_with(64, 64)));
    }

    #[test]
    fn target_ci_sizes_chunks_from_the_estimate() {
        let s = CampaignSettings {
            initial_chunk: 32,
            target_ci: 0.05,
            ..Default::default()
        };
        // First chunk is always the evidence chunk.
        assert_eq!(s.next_chunk(0, 10_000, &stats_with(0, 0)), Some((0, 32)));
        // BLER 0.5 estimate → jump near z²·0.25/w² ≈ 385 total instead
        // of doubling blindly.
        let (start, len) = s.next_chunk(32, 10_000, &stats_with(32, 16)).unwrap();
        assert_eq!(start, 32);
        assert!(
            (300..=420).contains(&(start + len)),
            "Wilson-sized total, got {}",
            start + len
        );
        // An easy point (BLER 0) still grows enough to tighten the
        // p=0 interval below the target.
        let (_, len0) = s.next_chunk(32, 10_000, &stats_with(32, 32)).unwrap();
        assert!(len0 >= 16, "must keep ≥1.5x growth, got {len0}");
        // The budget cap still binds.
        assert_eq!(s.next_chunk(32, 40, &stats_with(32, 16)), Some((32, 8)));
    }
}
