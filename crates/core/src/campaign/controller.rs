//! Adaptive packet-budget control: deterministic chunk schedules and a
//! Wilson-score stopping rule on BLER.
//!
//! Fixed per-point budgets spend most of their packets on easy operating
//! points (high SNR, BLER ≈ 0) while under-resolving the waterfall
//! region. The controller instead runs every point in growing chunks and
//! stops as soon as a 95 % Wilson confidence interval on the point's
//! block-error rate is tight enough:
//!
//! * **resolved-low**: the whole interval sits below
//!   [`CampaignSettings::bler_floor`] — the point is "easy"; more packets
//!   would only sharpen a value the figures render as ≈ 0;
//! * **relative precision**: the interval half-width is within
//!   [`CampaignSettings::precision`] of the BLER estimate;
//! * **budget cap**: the point reaches its maximum packet budget (hard
//!   waterfall points escalate here).
//!
//! The schedule is a pure function of `(initial_chunk, max_packets)` and
//! the stopping decision a pure function of the merged statistics, so an
//! adaptive run is bit-reproducible and store-resumable: neither thread
//! count nor which chunks came from disk can change when a point stops.

use dsp::stats::wilson_interval;
use hspa_phy::harq::HarqStats;

/// z-score of the controller's confidence level (95 %).
pub const WILSON_Z: f64 = 1.96;

/// Knobs of the adaptive budget controller (engine-independent, `Copy`
/// so [`crate::experiments::ExperimentBudget`] can embed it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSettings {
    /// Target relative half-width of the BLER confidence interval.
    pub precision: f64,
    /// BLER below which a point counts as resolved: once the interval's
    /// upper bound drops under this floor, no more packets are spent.
    pub bler_floor: f64,
    /// Packets of the first chunk (and the minimum evidence before any
    /// stopping decision).
    pub initial_chunk: usize,
    /// Reuse stored chunks from a previous run (`--resume`, the
    /// default); `false` truncates the store first (`--no-resume`).
    pub resume: bool,
}

impl Default for CampaignSettings {
    fn default() -> Self {
        Self {
            precision: 0.25,
            bler_floor: 0.15,
            initial_chunk: 32,
            resume: true,
        }
    }
}

impl CampaignSettings {
    /// Settings that never stop early: every point realizes its full
    /// budget, which makes an adaptive run bit-identical to a fixed one
    /// (used by equivalence tests).
    pub fn exhaustive() -> Self {
        Self {
            precision: 0.0,
            bler_floor: 0.0,
            ..Self::default()
        }
    }

    /// The packet range of chunk `index` of a point with the given
    /// maximum budget, or `None` past the end of the schedule.
    ///
    /// Chunks double the cumulative packet count (`initial`, then totals
    /// `2·initial`, `4·initial`, …) and clamp to `max_packets`, so even a
    /// fully escalated point runs only O(log) rounds.
    pub fn chunk(&self, index: usize, max_packets: usize) -> Option<(usize, usize)> {
        assert!(self.initial_chunk > 0, "initial chunk must be positive");
        let mut start = 0usize;
        let mut total = self.initial_chunk.min(max_packets);
        for _ in 0..index {
            if total >= max_packets {
                return None;
            }
            start = total;
            total = (total * 2).min(max_packets);
        }
        (total > start).then_some((start, total - start))
    }

    /// Whether the merged statistics of a point satisfy the stopping
    /// rule ([`module docs`](self) for the three clauses).
    pub fn converged(&self, stats: &HarqStats) -> bool {
        if stats.packets == 0 {
            return false;
        }
        let check = PrecisionCheck::of(stats, self);
        check.resolved_low || check.rel_half_width <= self.precision
    }
}

/// The achieved confidence-interval quality of one point — computed once
/// and reused by the stopping rule, the manifest and the reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionCheck {
    /// BLER point estimate (failed packets / packets).
    pub bler: f64,
    /// 95 % Wilson interval on the BLER.
    pub ci: (f64, f64),
    /// Interval half-width relative to `max(bler, bler_floor)`.
    pub rel_half_width: f64,
    /// Whole interval below the floor (the "easy point" clause).
    pub resolved_low: bool,
}

impl PrecisionCheck {
    /// Evaluates the interval quality of merged point statistics. With
    /// no packets yet the interval is vacuous (`(0, 1)`, infinite
    /// relative half-width).
    pub fn of(stats: &HarqStats, settings: &CampaignSettings) -> Self {
        if stats.packets == 0 {
            return Self {
                bler: 0.0,
                ci: (0.0, 1.0),
                rel_half_width: f64::INFINITY,
                resolved_low: false,
            };
        }
        let failures = stats.packets - stats.delivered;
        let ci = wilson_interval(failures, stats.packets, WILSON_Z);
        let bler = failures as f64 / stats.packets as f64;
        let half = (ci.1 - ci.0) / 2.0;
        Self {
            bler,
            ci,
            rel_half_width: half / bler.max(settings.bler_floor).max(f64::MIN_POSITIVE),
            resolved_low: ci.1 <= settings.bler_floor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(packets: u64, delivered: u64) -> HarqStats {
        let mut s = HarqStats::new(4, 100);
        s.packets = packets;
        s.delivered = delivered;
        s.transmissions = packets;
        s
    }

    #[test]
    fn schedule_doubles_and_clamps() {
        let s = CampaignSettings {
            initial_chunk: 32,
            ..Default::default()
        };
        assert_eq!(s.chunk(0, 60), Some((0, 32)));
        assert_eq!(s.chunk(1, 60), Some((32, 28)));
        assert_eq!(s.chunk(2, 60), None);
        assert_eq!(s.chunk(0, 240), Some((0, 32)));
        assert_eq!(s.chunk(1, 240), Some((32, 32)));
        assert_eq!(s.chunk(2, 240), Some((64, 64)));
        assert_eq!(s.chunk(3, 240), Some((128, 112)));
        assert_eq!(s.chunk(4, 240), None);
        // Tiny budget: one clamped chunk.
        assert_eq!(s.chunk(0, 6), Some((0, 6)));
        assert_eq!(s.chunk(1, 6), None);
    }

    #[test]
    fn schedule_partitions_the_budget() {
        let s = CampaignSettings {
            initial_chunk: 7,
            ..Default::default()
        };
        for max in [1usize, 7, 8, 13, 100] {
            let mut expected_start = 0;
            let mut idx = 0;
            while let Some((start, len)) = s.chunk(idx, max) {
                assert_eq!(start, expected_start, "max={max} idx={idx}");
                assert!(len > 0);
                expected_start += len;
                idx += 1;
            }
            assert_eq!(expected_start, max, "chunks must cover 0..max");
        }
    }

    #[test]
    fn easy_points_resolve_low() {
        let s = CampaignSettings::default();
        // 32/32 delivered: Wilson upper bound ≈ 0.107 < 0.15 → stop.
        assert!(s.converged(&stats_with(32, 32)));
        // 16/16 delivered: upper bound ≈ 0.194 → keep going.
        assert!(!s.converged(&stats_with(16, 16)));
    }

    #[test]
    fn hard_points_need_relative_precision() {
        let s = CampaignSettings::default();
        // BLER 0.5 at n=32: half-width ≈ 0.16 rel 0.33 → not converged.
        assert!(!s.converged(&stats_with(32, 16)));
        // BLER 0.5 at n=256: half-width ≈ 0.061 rel 0.12 → converged.
        assert!(s.converged(&stats_with(256, 128)));
    }

    #[test]
    fn exhaustive_settings_never_stop() {
        let s = CampaignSettings::exhaustive();
        assert!(!s.converged(&stats_with(32, 32)));
        assert!(!s.converged(&stats_with(100_000, 50_000)));
    }

    #[test]
    fn precision_check_matches_wilson() {
        let s = CampaignSettings::default();
        let stats = stats_with(100, 90);
        let check = PrecisionCheck::of(&stats, &s);
        assert!((check.bler - 0.10).abs() < 1e-12);
        let (lo, hi) = wilson_interval(10, 100, WILSON_Z);
        assert_eq!(check.ci, (lo, hi));
        assert!(check.ci.0 < 0.10 && 0.10 < check.ci.1);
        assert!(!check.resolved_low);
    }

    #[test]
    fn no_evidence_is_never_converged() {
        assert!(!CampaignSettings::default().converged(&HarqStats::new(4, 100)));
    }
}
