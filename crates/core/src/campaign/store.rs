//! Persistent, append-only result store for campaign chunks.
//!
//! One JSONL file per campaign (default `target/campaign/<name>.jsonl`):
//! each line is the [`HarqStats`] of one simulated chunk, keyed by the
//! FNV hash of the point's canonical fingerprint (see [`super::hash`])
//! plus the chunk's packet range. Re-running a campaign loads the file
//! once and skips every chunk already on disk, so interrupted campaigns
//! resume and repeated figure regenerations are nearly free.
//!
//! The offline `serde` shim has no serializer, so records are written and
//! parsed by hand; the format is flat, one record per line, and versioned
//! through the fingerprint schema (a key mismatch is just a store miss,
//! never corruption).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use hspa_phy::harq::HarqStats;

/// Identity of one stored chunk: point key + packet range. Ordered by
/// `(point, first_packet, n_packets)` — the canonical store order the
/// merge/GC tooling writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// FNV-1a 64 of the point fingerprint.
    pub point: u64,
    /// First absolute packet index of the chunk.
    pub first_packet: usize,
    /// Packets in the chunk.
    pub n_packets: usize,
}

/// Append-only JSONL store of per-chunk [`HarqStats`].
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    records: HashMap<ChunkId, HarqStats>,
    /// Chunks served from disk since opening.
    pub hits: u64,
    /// Chunks that had to be simulated since opening.
    pub misses: u64,
}

impl ResultStore {
    /// Opens (or creates) the store file, loading every valid record.
    /// With `resume == false` an existing file is truncated first — the
    /// `--no-resume` path.
    ///
    /// A store that exists but cannot be read is an **error**, never an
    /// empty store: silently treating it as missing would re-simulate
    /// every chunk and double-append the results once the file becomes
    /// writable again, so only [`std::io::ErrorKind::NotFound`] counts
    /// as "no store yet" — permission problems, unreadable paths and
    /// read failures all surface to the caller.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // `Path::exists` swallows stat errors (it answers `false` for a
        // permission-denied path); query the metadata directly so those
        // errors are distinguishable from a genuinely absent store.
        let exists = match fs::metadata(&path) {
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        if !resume && exists {
            fs::remove_file(&path)?;
        }
        if !(resume && exists) {
            // Materialize an empty store eagerly: a campaign whose every
            // chunk is a store hit (or whose shard owns no points) still
            // leaves a well-formed `.jsonl` behind, so shard artifact
            // collection and `campaign-admin merge` never chase a file
            // that only the first miss would have created.
            File::create(&path)?;
        }
        let mut records = HashMap::new();
        if resume && exists {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                // Tolerate torn tails from interrupted runs: a line that
                // does not parse is skipped, not fatal. (I/O errors are
                // fatal — see above.)
                if let Some((id, stats)) = parse_record(&line) {
                    records.insert(id, stats);
                }
            }
        }
        Ok(Self {
            path,
            records,
            hits: 0,
            misses: 0,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a chunk, counting the outcome toward the hit/miss tally.
    pub fn fetch(&mut self, id: ChunkId) -> Option<HarqStats> {
        match self.records.get(&id) {
            Some(stats) => {
                self.hits += 1;
                Some(stats.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a freshly simulated chunk and appends it to the file.
    pub fn put(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", encode_record(id, stats))?;
        self.records.insert(id, stats.clone());
        Ok(())
    }

    /// Fraction of lookups served from disk since opening (0 when no
    /// lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads every parseable record of a store file **in file order,
/// keeping duplicates** (unlike [`ResultStore::open`], which keeps the
/// last write per [`ChunkId`]). Returns the records plus the count of
/// malformed lines skipped — the merge/GC admin tooling reports both.
pub fn load_all(path: &Path) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)> {
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(&line) {
            Some(rec) => records.push(rec),
            None => malformed += 1,
        }
    }
    Ok((records, malformed))
}

/// Writes a store file containing exactly `records`, in the given
/// order, replacing any previous content (the merge/GC rewrite path —
/// the campaign itself only ever appends). The replacement is atomic
/// (write-to-temp + rename): a GC killed mid-rewrite must leave the old
/// store intact, never a truncated one.
pub fn write_records(path: &Path, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    for (id, stats) in records {
        out.push_str(&encode_record(*id, stats));
        out.push('\n');
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, out)?;
    fs::rename(&tmp, path)
}

/// Renders one chunk record as a single JSON line.
fn encode_record(id: ChunkId, stats: &HarqStats) -> String {
    let failures: Vec<String> = stats.failures_at.iter().map(|f| f.to_string()).collect();
    format!(
        "{{\"point\":\"{:016x}\",\"first\":{},\"len\":{},\"packets\":{},\"delivered\":{},\"transmissions\":{},\"info_bits\":{},\"failures_at\":[{}]}}",
        id.point,
        id.first_packet,
        id.n_packets,
        stats.packets,
        stats.delivered,
        stats.transmissions,
        stats.info_bits,
        failures.join(",")
    )
}

/// Parses a record line; `None` on any malformed input.
fn parse_record(line: &str) -> Option<(ChunkId, HarqStats)> {
    let point = u64::from_str_radix(&json_str_field(line, "point")?, 16).ok()?;
    let id = ChunkId {
        point,
        first_packet: json_u64_field(line, "first")? as usize,
        n_packets: json_u64_field(line, "len")? as usize,
    };
    let stats = HarqStats {
        packets: json_u64_field(line, "packets")?,
        delivered: json_u64_field(line, "delivered")?,
        transmissions: json_u64_field(line, "transmissions")?,
        info_bits: json_u64_field(line, "info_bits")?,
        failures_at: json_u64_array_field(line, "failures_at")?,
    };
    if stats.packets != id.n_packets as u64 || stats.delivered > stats.packets {
        return None;
    }
    Some((id, stats))
}

/// The raw text following `"name":` up to the next `,`/`}`/`]`.
///
/// Only suitable for the flat records this module writes itself — no
/// nesting, no escaped strings.
fn json_raw_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a numeric field of a flat JSON object.
pub(crate) fn json_u64_field(json: &str, name: &str) -> Option<u64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a float field of a flat JSON object.
pub(crate) fn json_f64_field(json: &str, name: &str) -> Option<f64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a quoted string field of a flat JSON object (no escapes).
pub(crate) fn json_str_field(json: &str, name: &str) -> Option<String> {
    let raw = json_raw_field(json, name)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

/// Parses a boolean field of a flat JSON object.
pub(crate) fn json_bool_field(json: &str, name: &str) -> Option<bool> {
    match json_raw_field(json, name)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses a `[u64, …]` array field of a flat JSON object.
pub(crate) fn json_u64_array_field(json: &str, name: &str) -> Option<Vec<u64>> {
    let tag = format!("\"{name}\":[");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> HarqStats {
        HarqStats {
            packets: 8,
            delivered: 6,
            transmissions: 14,
            info_bits: 120,
            failures_at: vec![3, 2, 2, 2],
        }
    }

    fn temp_store_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "campaign-store-test-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn record_roundtrip() {
        let id = ChunkId {
            point: 0xdead_beef_0123_4567,
            first_packet: 32,
            n_packets: 8,
        };
        let stats = sample_stats();
        let line = encode_record(id, &stats);
        let (rid, rstats) = parse_record(&line).expect("parses");
        assert_eq!(rid, id);
        assert_eq!(rstats, stats);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(parse_record("").is_none());
        assert!(parse_record("{\"point\":\"zz\"}").is_none());
        // Truncated tail (interrupted write).
        let id = ChunkId {
            point: 1,
            first_packet: 0,
            n_packets: 8,
        };
        let full = encode_record(id, &sample_stats());
        assert!(parse_record(&full[..full.len() / 2]).is_none());
        // Packet-count mismatch is rejected.
        let mut wrong = sample_stats();
        wrong.packets = 9;
        assert!(parse_record(&encode_record(id, &wrong)).is_none());
    }

    #[test]
    fn store_persists_and_resumes() {
        let path = temp_store_path("persist");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 42,
            first_packet: 0,
            n_packets: 8,
        };
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert!(store.fetch(id).is_none());
            store.put(id, &sample_stats()).unwrap();
        }
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.fetch(id).unwrap(), sample_stats());
            assert_eq!(store.hits, 1);
            assert!((store.hit_rate() - 1.0).abs() < 1e-12);
        }
        // --no-resume truncates.
        let store = ResultStore::open(&path, false).unwrap();
        assert!(store.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn json_field_helpers() {
        let j = "{\"a\":3,\"b\":\"0f\",\"c\":[1, 2,3],\"d\":2.5,\"e\":true}";
        assert_eq!(json_u64_field(j, "a"), Some(3));
        assert_eq!(json_str_field(j, "b").as_deref(), Some("0f"));
        assert_eq!(json_u64_array_field(j, "c"), Some(vec![1, 2, 3]));
        assert_eq!(json_f64_field(j, "d"), Some(2.5));
        assert_eq!(json_bool_field(j, "e"), Some(true));
        assert_eq!(json_u64_field(j, "missing"), None);
        assert_eq!(json_bool_field(j, "a"), None);
    }

    #[test]
    fn unreadable_store_is_an_error_not_a_miss() {
        // A store path that exists but cannot be read as a JSONL file
        // (here: a directory) must surface an io::Error — treating it
        // as an empty store would re-simulate and then double-append
        // every chunk.
        let dir = std::env::temp_dir().join(format!(
            "campaign-store-test-{}-unreadable",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(ResultStore::open(&dir, true).is_err());
        assert!(load_all(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_keeps_duplicates_and_counts_malformed() {
        let path = temp_store_path("load-all");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 7,
            first_packet: 0,
            n_packets: 8,
        };
        let mut store = ResultStore::open(&path, true).unwrap();
        store.put(id, &sample_stats()).unwrap();
        store.put(id, &sample_stats()).unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{torn"))
            .unwrap();
        let (records, malformed) = load_all(&path).unwrap();
        assert_eq!(records.len(), 2, "duplicates preserved");
        assert_eq!(malformed, 1);

        // write_records round-trips the exact record list.
        write_records(&path, &records[..1]).unwrap();
        let (rewritten, malformed) = load_all(&path).unwrap();
        assert_eq!(rewritten, records[..1]);
        assert_eq!(malformed, 0);
        let _ = fs::remove_file(&path);
    }
}
