//! Persistent, append-only result store for campaign chunks.
//!
//! One JSONL file per campaign (default `target/campaign/<name>.jsonl`):
//! each line is the [`HarqStats`] of one simulated chunk, keyed by the
//! FNV hash of the point's canonical fingerprint (see [`super::hash`])
//! plus the chunk's packet range. Re-running a campaign loads the file
//! once and skips every chunk already on disk, so interrupted campaigns
//! resume and repeated figure regenerations are nearly free.
//!
//! The offline `serde` shim has no serializer, so records are written and
//! parsed by hand; the format is flat, one record per line, and versioned
//! through the fingerprint schema (a key mismatch is just a store miss,
//! never corruption).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use hspa_phy::harq::HarqStats;

use crate::telemetry::{self, Counter};

/// Identity of one stored chunk: point key + packet range. Ordered by
/// `(point, first_packet, n_packets)` — the canonical store order the
/// merge/GC tooling writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// FNV-1a 64 of the point fingerprint.
    pub point: u64,
    /// First absolute packet index of the chunk.
    pub first_packet: usize,
    /// Packets in the chunk.
    pub n_packets: usize,
}

/// Append-only JSONL store of per-chunk [`HarqStats`].
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    records: HashMap<ChunkId, HarqStats>,
    /// Chunks served from disk since opening.
    pub hits: u64,
    /// Chunks that had to be simulated since opening.
    pub misses: u64,
}

impl ResultStore {
    /// Opens (or creates) the store file, loading every valid record.
    /// With `resume == false` an existing file is truncated first — the
    /// `--no-resume` path.
    ///
    /// A store that exists but cannot be read is an **error**, never an
    /// empty store: silently treating it as missing would re-simulate
    /// every chunk and double-append the results once the file becomes
    /// writable again, so only [`std::io::ErrorKind::NotFound`] counts
    /// as "no store yet" — permission problems, unreadable paths and
    /// read failures all surface to the caller.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // `Path::exists` swallows stat errors (it answers `false` for a
        // permission-denied path); query the metadata directly so those
        // errors are distinguishable from a genuinely absent store.
        let exists = match fs::metadata(&path) {
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        if !resume && exists {
            fs::remove_file(&path)?;
        }
        if !(resume && exists) {
            // Materialize an empty store eagerly: a campaign whose every
            // chunk is a store hit (or whose shard owns no points) still
            // leaves a well-formed `.jsonl` behind, so shard artifact
            // collection and `campaign-admin merge` never chase a file
            // that only the first miss would have created.
            File::create(&path)?;
        }
        let mut records = HashMap::new();
        if resume && exists {
            let reader = BufReader::new(File::open(&path)?);
            for (line_no, line) in reader.lines().enumerate() {
                let line = line?;
                // Torn tails of interrupted runs are skipped, not fatal;
                // records that parse but violate the stats invariants
                // are corruption and must not feed merged statistics.
                match classify_record(&line) {
                    Ok((id, stats)) => {
                        records.insert(id, stats);
                    }
                    Err(LineIssue::Torn) => {}
                    Err(LineIssue::Corrupt(why)) => {
                        return Err(corrupt_error(&path, line_no, &why));
                    }
                }
            }
            // A killed writer can leave the final line without its
            // newline. Terminate it now, or the first fresh append of
            // this (rescue) run would concatenate onto the torn tail
            // and turn a valid new record into a second torn line.
            terminate_torn_tail(&path)?;
        }
        Ok(Self {
            path,
            records,
            hits: 0,
            misses: 0,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a chunk, counting the outcome toward the hit/miss tally
    /// (and the global telemetry hit/miss counters).
    pub fn fetch(&mut self, id: ChunkId) -> Option<HarqStats> {
        match self.records.get(&id) {
            Some(stats) => {
                self.hits += 1;
                telemetry::counter_add(Counter::StoreChunkHits, 1);
                telemetry::counter_add(Counter::StorePacketsServed, id.n_packets as u64);
                Some(stats.clone())
            }
            None => {
                self.misses += 1;
                telemetry::counter_add(Counter::StoreChunkMisses, 1);
                None
            }
        }
    }

    /// Records a freshly simulated chunk and appends it to the file.
    pub fn put(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", encode_record(id, stats))?;
        self.records.insert(id, stats.clone());
        telemetry::counter_add(Counter::StoreChunksWritten, 1);
        Ok(())
    }

    /// Fraction of lookups served from disk since opening (0 when no
    /// lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads every parseable record of a store file **in file order,
/// keeping duplicates** (unlike [`ResultStore::open`], which keeps the
/// last write per [`ChunkId`]). Returns the records plus the count of
/// malformed lines skipped — the merge/GC admin tooling reports both.
///
/// This is the **strict** loader: a record that parses but violates the
/// stats invariants (`delivered > packets`, or a stats block covering a
/// different packet count than the chunk range claims) is corruption —
/// folding it into merged statistics would underflow the failure count
/// and produce a garbage BLER — so it is an error pointing the operator
/// at `campaign-admin gc`, never a silent skip. Torn (unparseable)
/// tails of killed runs remain tolerated and counted.
pub fn load_all(path: &Path) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)> {
    let reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match classify_record(&line) {
            Ok(rec) => records.push(rec),
            Err(LineIssue::Torn) => malformed += 1,
            Err(LineIssue::Corrupt(why)) => return Err(corrupt_error(path, line_no, &why)),
        }
    }
    Ok((records, malformed))
}

/// What [`load_all_lenient`] read: the surviving records plus tallies
/// of everything it had to drop.
#[derive(Debug, Default)]
pub struct LenientLoad {
    /// Valid records in file order, duplicates kept.
    pub records: Vec<(ChunkId, HarqStats)>,
    /// Unparseable (torn) lines skipped.
    pub torn_lines: usize,
    /// Parseable records dropped for violating the range invariants.
    pub corrupt_records: usize,
}

/// The **lenient** loader behind `campaign-admin gc`: corrupt records
/// (the ones [`load_all`] refuses) are dropped and counted instead of
/// fatal — gc is the tool the strict loaders tell the operator to run,
/// so it must be able to read past the damage it is asked to remove.
pub fn load_all_lenient(path: &Path) -> std::io::Result<LenientLoad> {
    let reader = BufReader::new(File::open(path)?);
    let mut load = LenientLoad::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match classify_record(&line) {
            Ok(rec) => load.records.push(rec),
            Err(LineIssue::Torn) => load.torn_lines += 1,
            Err(LineIssue::Corrupt(_)) => load.corrupt_records += 1,
        }
    }
    Ok(load)
}

/// Writes a store file containing exactly `records`, in the given
/// order, replacing any previous content (the merge/GC rewrite path —
/// the campaign itself only ever appends). The replacement is atomic
/// (write-to-temp + rename): a GC killed mid-rewrite must leave the old
/// store intact, never a truncated one.
pub fn write_records(path: &Path, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    for (id, stats) in records {
        out.push_str(&encode_record(*id, stats));
        out.push('\n');
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, out)?;
    fs::rename(&tmp, path)
}

/// Renders one chunk record as a single JSON line.
fn encode_record(id: ChunkId, stats: &HarqStats) -> String {
    let failures: Vec<String> = stats.failures_at.iter().map(|f| f.to_string()).collect();
    format!(
        "{{\"point\":\"{:016x}\",\"first\":{},\"len\":{},\"packets\":{},\"delivered\":{},\"transmissions\":{},\"info_bits\":{},\"failures_at\":[{}]}}",
        id.point,
        id.first_packet,
        id.n_packets,
        stats.packets,
        stats.delivered,
        stats.transmissions,
        stats.info_bits,
        failures.join(",")
    )
}

/// Appends a newline to `path` if its last byte is not one (the tail a
/// `SIGKILL` mid-`writeln` leaves), so subsequent appends start on a
/// fresh line. The torn line itself stays in place — it is skipped on
/// every load and `campaign-admin gc` drops it.
fn terminate_torn_tail(path: &Path) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = OpenOptions::new().read(true).append(true).open(path)?;
    if file.seek(SeekFrom::End(0))? == 0 {
        return Ok(());
    }
    file.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    file.read_exact(&mut last)?;
    if last != [b'\n'] {
        file.write_all(b"\n")?;
    }
    Ok(())
}

/// Why a store line was rejected: torn lines (truncated writes — a
/// field is missing or unparseable) are routine and tolerated; corrupt
/// records parse fully but violate the stats invariants, so using them
/// would poison merged statistics.
enum LineIssue {
    Torn,
    Corrupt(String),
}

/// The error a strict loader raises for a corrupt record — it names the
/// recovery tool because the strict loaders themselves refuse to read
/// past the damage.
fn corrupt_error(path: &Path, line_no: usize, why: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "{}:{}: corrupt store record ({why}); run `campaign-admin gc` to drop \
             corrupt records, or delete the line by hand",
            path.display(),
            line_no + 1,
        ),
    )
}

/// Parses the raw fields of a record line; `None` when a field is
/// missing or unparseable (torn tail). Invariants between the fields
/// are **not** checked here — that is [`classify_record`]'s job, so the
/// strict loaders can distinguish a routine torn line from corruption.
fn parse_record(line: &str) -> Option<(ChunkId, HarqStats)> {
    let point = u64::from_str_radix(&json_str_field(line, "point")?, 16).ok()?;
    let id = ChunkId {
        point,
        first_packet: json_u64_field(line, "first")? as usize,
        n_packets: json_u64_field(line, "len")? as usize,
    };
    let stats = HarqStats {
        packets: json_u64_field(line, "packets")?,
        delivered: json_u64_field(line, "delivered")?,
        transmissions: json_u64_field(line, "transmissions")?,
        info_bits: json_u64_field(line, "info_bits")?,
        failures_at: json_u64_array_field(line, "failures_at")?,
    };
    Some((id, stats))
}

/// Parses and range-validates one store line.
fn classify_record(line: &str) -> Result<(ChunkId, HarqStats), LineIssue> {
    let (id, stats) = parse_record(line).ok_or(LineIssue::Torn)?;
    if stats.packets != id.n_packets as u64 {
        return Err(LineIssue::Corrupt(format!(
            "stats cover {} packets but the chunk range claims {}",
            stats.packets, id.n_packets
        )));
    }
    if stats.delivered > stats.packets {
        return Err(LineIssue::Corrupt(format!(
            "delivered {} > packets {} would underflow the failure count",
            stats.delivered, stats.packets
        )));
    }
    Ok((id, stats))
}

/// The raw text following `"name":` up to the next `,`/`}`/`]`.
///
/// Only suitable for the flat records this module writes itself — no
/// nesting, no escaped strings.
fn json_raw_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a numeric field of a flat JSON object.
pub(crate) fn json_u64_field(json: &str, name: &str) -> Option<u64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a float field of a flat JSON object.
pub(crate) fn json_f64_field(json: &str, name: &str) -> Option<f64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a quoted string field of a flat JSON object (no escapes).
pub(crate) fn json_str_field(json: &str, name: &str) -> Option<String> {
    let raw = json_raw_field(json, name)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

/// Parses a boolean field of a flat JSON object.
pub(crate) fn json_bool_field(json: &str, name: &str) -> Option<bool> {
    match json_raw_field(json, name)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses a `[u64, …]` array field of a flat JSON object.
pub(crate) fn json_u64_array_field(json: &str, name: &str) -> Option<Vec<u64>> {
    let tag = format!("\"{name}\":[");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> HarqStats {
        HarqStats {
            packets: 8,
            delivered: 6,
            transmissions: 14,
            info_bits: 120,
            failures_at: vec![3, 2, 2, 2],
        }
    }

    fn temp_store_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "campaign-store-test-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn record_roundtrip() {
        let id = ChunkId {
            point: 0xdead_beef_0123_4567,
            first_packet: 32,
            n_packets: 8,
        };
        let stats = sample_stats();
        let line = encode_record(id, &stats);
        let (rid, rstats) = parse_record(&line).expect("parses");
        assert_eq!(rid, id);
        assert_eq!(rstats, stats);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(parse_record("").is_none());
        assert!(parse_record("{\"point\":\"zz\"}").is_none());
        // Truncated tail (interrupted write).
        let id = ChunkId {
            point: 1,
            first_packet: 0,
            n_packets: 8,
        };
        let full = encode_record(id, &sample_stats());
        assert!(parse_record(&full[..full.len() / 2]).is_none());
        assert!(matches!(
            classify_record(&full[..full.len() / 2]),
            Err(LineIssue::Torn)
        ));
    }

    #[test]
    fn invariant_violations_classify_as_corrupt_not_torn() {
        let id = ChunkId {
            point: 1,
            first_packet: 0,
            n_packets: 8,
        };
        // Packet-count mismatch against the chunk range.
        let mut wrong_len = sample_stats();
        wrong_len.packets = 9;
        assert!(matches!(
            classify_record(&encode_record(id, &wrong_len)),
            Err(LineIssue::Corrupt(_))
        ));
        // delivered > packets would underflow `packets - delivered`.
        let mut inverted = sample_stats();
        inverted.delivered = inverted.packets + 1;
        let Err(LineIssue::Corrupt(why)) = classify_record(&encode_record(id, &inverted)) else {
            panic!("delivered > packets must classify as corrupt");
        };
        assert!(why.contains("underflow"), "{why}");
    }

    #[test]
    fn corrupt_records_are_a_load_error_pointing_at_gc() {
        let path = temp_store_path("corrupt");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 3,
            first_packet: 0,
            n_packets: 8,
        };
        let mut bad = sample_stats();
        bad.delivered = bad.packets + 4;
        let good = encode_record(
            ChunkId {
                point: 4,
                first_packet: 0,
                n_packets: 8,
            },
            &sample_stats(),
        );
        fs::write(&path, format!("{good}\n{}\n", encode_record(id, &bad))).unwrap();

        // Both strict loaders refuse, naming the recovery tool and the
        // offending line.
        let err = load_all(&path).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");
        assert!(err.to_string().contains(":2:"), "{err}");
        let err = ResultStore::open(&path, true).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");

        // The lenient loader (gc's entry) drops and counts it.
        let load = load_all_lenient(&path).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!((load.torn_lines, load.corrupt_records), (0, 1));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn store_persists_and_resumes() {
        let path = temp_store_path("persist");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 42,
            first_packet: 0,
            n_packets: 8,
        };
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert!(store.fetch(id).is_none());
            store.put(id, &sample_stats()).unwrap();
        }
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.fetch(id).unwrap(), sample_stats());
            assert_eq!(store.hits, 1);
            assert!((store.hit_rate() - 1.0).abs() < 1e-12);
        }
        // --no-resume truncates.
        let store = ResultStore::open(&path, false).unwrap();
        assert!(store.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resumed_store_never_appends_onto_a_torn_tail() {
        // A SIGKILL mid-writeln leaves a final line without its
        // newline; a rescue leg resuming that store must not weld its
        // first fresh record onto the torn prefix.
        let path = temp_store_path("torn-tail");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 9,
            first_packet: 0,
            n_packets: 8,
        };
        let torn = &encode_record(id, &sample_stats())[..30];
        fs::write(&path, torn).unwrap(); // no trailing newline
        let fresh = ChunkId {
            point: 10,
            first_packet: 0,
            n_packets: 8,
        };
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert!(store.is_empty(), "torn line is not a record");
            store.put(fresh, &sample_stats()).unwrap();
        }
        let (records, malformed) = load_all(&path).unwrap();
        assert_eq!(malformed, 1, "torn prefix stays torn");
        assert_eq!(records, vec![(fresh, sample_stats())]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn json_field_helpers() {
        let j = "{\"a\":3,\"b\":\"0f\",\"c\":[1, 2,3],\"d\":2.5,\"e\":true}";
        assert_eq!(json_u64_field(j, "a"), Some(3));
        assert_eq!(json_str_field(j, "b").as_deref(), Some("0f"));
        assert_eq!(json_u64_array_field(j, "c"), Some(vec![1, 2, 3]));
        assert_eq!(json_f64_field(j, "d"), Some(2.5));
        assert_eq!(json_bool_field(j, "e"), Some(true));
        assert_eq!(json_u64_field(j, "missing"), None);
        assert_eq!(json_bool_field(j, "a"), None);
    }

    #[test]
    fn unreadable_store_is_an_error_not_a_miss() {
        // A store path that exists but cannot be read as a JSONL file
        // (here: a directory) must surface an io::Error — treating it
        // as an empty store would re-simulate and then double-append
        // every chunk.
        let dir = std::env::temp_dir().join(format!(
            "campaign-store-test-{}-unreadable",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(ResultStore::open(&dir, true).is_err());
        assert!(load_all(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_keeps_duplicates_and_counts_malformed() {
        let path = temp_store_path("load-all");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 7,
            first_packet: 0,
            n_packets: 8,
        };
        let mut store = ResultStore::open(&path, true).unwrap();
        store.put(id, &sample_stats()).unwrap();
        store.put(id, &sample_stats()).unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{torn"))
            .unwrap();
        let (records, malformed) = load_all(&path).unwrap();
        assert_eq!(records.len(), 2, "duplicates preserved");
        assert_eq!(malformed, 1);

        // write_records round-trips the exact record list.
        write_records(&path, &records[..1]).unwrap();
        let (rewritten, malformed) = load_all(&path).unwrap();
        assert_eq!(rewritten, records[..1]);
        assert_eq!(malformed, 0);
        let _ = fs::remove_file(&path);
    }
}
