//! Multi-host sharding coordinator for campaigns.
//!
//! A campaign's operating points are already content-hashed
//! ([`super::hash::point_key`]) and its chunks are self-describing store
//! records, so distributing a grid across hosts needs no broker: every
//! host runs the *same* binary over the *same* full point list with
//! `--shard i/n`, and a point belongs to the shard its stable key hashes
//! into ([`ShardSpec::owns`]). Each shard writes suffixed store/manifest
//! files (`<name>.shard-i-of-n.{jsonl|seg,manifest.json}`) that never
//! collide, and [`merge`] folds any complete shard set back into the
//! files a single-host run would have produced — **byte-identical
//! manifest included**, which is what CI asserts on every push. The
//! store backend behind each leg is detected from which store file
//! exists, so the admin entry points work unchanged over JSONL and
//! indexed-segment campaigns.
//!
//! Determinism is inherited, not re-proven: a packet's RNG stream
//! depends only on its absolute position in the seed tree (see
//! [`crate::engine`]), so which host simulates a point cannot change its
//! statistics, and the controller's stopping decisions are pure
//! functions of those statistics. The coordinator's only job is
//! bookkeeping — partition, gather, dedup, re-order.
//!
//! The admin entry points ([`merge`], [`gc`], [`verify`], [`stats`]) are
//! plain functions over a `(name, directory)` pair; the `campaign-admin`
//! binary in the `bench` crate is a thin argv wrapper around them.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use hspa_phy::harq::HarqStats;

use super::manifest::{Manifest, ManifestTotals, PointRecord};
use super::store::{self, BackendKind, ChunkId, QueryFilter};

/// The shard a process owns, out of `count` total — parsed from
/// `--shard index/count`. The default `0/1` means "unsharded".
///
/// A spec may additionally carry a **slice**: when the dispatcher
/// re-shards a dead leg's remaining work, shard `i/n` is split into `m`
/// sub-shards written `i/n:j/m`. A slice leg enumerates the same global
/// grid as its parent but owns only every `m`-th of the parent's keys
/// ([`ShardSpec::owns`]), so the slices of a shard partition it exactly
/// and the merged manifest stays byte-identical to a single-host run.
/// Slices never nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardSpec {
    /// Zero-based shard index (`< count`).
    pub index: u32,
    /// Total shard count (`>= 1`).
    pub count: u32,
    /// Sub-shard assignment `(slice_index, slice_count)` within the
    /// shard, or `None` for a whole shard.
    pub slice: Option<(u32, u32)>,
}

impl ShardSpec {
    /// The unsharded (single-host) spec, `0/1`.
    pub fn single() -> Self {
        Self {
            index: 0,
            count: 1,
            slice: None,
        }
    }

    /// Builds a spec, validating `count >= 1` and `index < count`.
    ///
    /// Fallible on purpose: the dispatcher constructs specs in a loop
    /// from flag values, and a bad combination there must surface as an
    /// error message, not a panic with a backtrace. The `FromStr` impl
    /// (the `--shard i/n` parser) routes its range check through here so
    /// both entries reject with the same message.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 || index >= count {
            return Err(format!(
                "expected shard INDEX/COUNT with INDEX < COUNT, got '{index}/{count}'"
            ));
        }
        Ok(Self {
            index,
            count,
            slice: None,
        })
    }

    /// Builds slice `j` of `m` of this shard — the re-sharding
    /// constructor. A slice of a slice is refused: one level exactly
    /// partitions a dead shard, and nesting would let file suffixes
    /// grow without bound across repeated failures.
    pub fn slice_of(self, slice_index: u32, slice_count: u32) -> Result<Self, String> {
        if self.slice.is_some() {
            return Err(format!(
                "shard {self} is already a slice — slices never nest"
            ));
        }
        if slice_count == 0 || slice_index >= slice_count {
            return Err(format!(
                "expected slice INDEX/COUNT with INDEX < COUNT, got '{slice_index}/{slice_count}'"
            ));
        }
        Ok(Self {
            slice: Some((slice_index, slice_count)),
            ..self
        })
    }

    /// The whole shard this spec belongs to (itself when not a slice).
    pub fn parent(&self) -> Self {
        Self {
            slice: None,
            ..*self
        }
    }

    /// Whether this spec actually splits the point set.
    pub fn is_sharded(&self) -> bool {
        self.count > 1 || self.slice.is_some()
    }

    /// Whether this shard owns the point with the given stable key.
    /// Ownership is a pure function of `(key, count, slice)` — every
    /// host partitions identically without coordination. The slices of
    /// a shard split the parent's key sequence round-robin, so for any
    /// `m` they partition exactly the keys the parent owns.
    pub fn owns(&self, key: u64) -> bool {
        if key % u64::from(self.count.max(1)) != u64::from(self.index) {
            return false;
        }
        match self.slice {
            Some((j, m)) => {
                (key / u64::from(self.count.max(1))) % u64::from(m.max(1)) == u64::from(j)
            }
            None => true,
        }
    }

    /// The file-stem suffix of this shard's store/manifest (empty when
    /// unsharded, so single-host paths are unchanged). A slice always
    /// carries the full suffix — even of a `0/1` parent — so slice
    /// artifacts never collide with whole-shard ones.
    pub fn suffix(&self) -> String {
        match self.slice {
            Some((j, m)) => format!(".shard-{}-of-{}.slice-{j}-of-{m}", self.index, self.count),
            None if self.count > 1 => format!(".shard-{}-of-{}", self.index, self.count),
            None => String::new(),
        }
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::single()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)?;
        if let Some((j, m)) = self.slice {
            write!(f, ":{j}/{m}")?;
        }
        Ok(())
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err =
            || format!("expected --shard INDEX/COUNT[:SLICE/SLICES] with INDEX < COUNT, got '{s}'");
        let (shard, slice) = match s.split_once(':') {
            Some((shard, slice)) => (shard, Some(slice)),
            None => (s, None),
        };
        let (i, n) = shard.split_once('/').ok_or_else(err)?;
        let index: u32 = i.trim().parse().map_err(|_| err())?;
        let count: u32 = n.trim().parse().map_err(|_| err())?;
        let spec = Self::new(index, count).map_err(|_| err())?;
        match slice {
            None => Ok(spec),
            Some(slice) => {
                let (j, m) = slice.split_once('/').ok_or_else(err)?;
                let j: u32 = j.trim().parse().map_err(|_| err())?;
                let m: u32 = m.trim().parse().map_err(|_| err())?;
                spec.slice_of(j, m).map_err(|_| err())
            }
        }
    }
}

/// Store file name of a campaign under a shard spec and backend (the
/// extension names the backend: `.jsonl` or `.seg`).
pub fn store_file(name: &str, shard: ShardSpec, backend: BackendKind) -> String {
    format!("{name}{}.{}", shard.suffix(), backend.extension())
}

/// Resolves which backend's store file backs `(name, shard)` in `dir`
/// by probing the candidate file names — the admin tooling's entry, so
/// `merge`/`gc`/`verify`/`stats` work unchanged over campaigns run with
/// either `--store-backend`. Exactly one candidate may exist: both at
/// once is ambiguous (a backend switch without cleanup) and neither is
/// a missing store.
pub fn detect_store_file(
    name: &str,
    dir: &Path,
    shard: ShardSpec,
) -> io::Result<(PathBuf, BackendKind)> {
    let jsonl = dir.join(store_file(name, shard, BackendKind::Jsonl));
    let seg = dir.join(store_file(name, shard, BackendKind::Indexed));
    match (jsonl.exists(), seg.exists()) {
        (true, false) => Ok((jsonl, BackendKind::Jsonl)),
        (false, true) => Ok((seg, BackendKind::Indexed)),
        (true, true) => Err(invalid(format!(
            "both {} and {} exist — campaign '{name}' was run with more than one \
             --store-backend; `campaign-admin export` the live one and delete the other",
            jsonl.display(),
            seg.display(),
        ))),
        (false, false) => Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no result store for campaign '{name}' (shard {shard}) in {}: neither {} nor {}",
                dir.display(),
                jsonl.display(),
                seg.display(),
            ),
        )),
    }
}

/// Manifest file name of a campaign under a shard spec.
pub fn manifest_file(name: &str, shard: ShardSpec) -> String {
    format!("{name}{}.manifest.json", shard.suffix())
}

/// Live telemetry snapshot file name of a campaign under a shard spec
/// (see [`crate::telemetry::LiveSnapshot`]). Written atomically by the
/// running leg; read by the dispatcher's heartbeat probe and by
/// `campaign-admin top`.
pub fn telemetry_file(name: &str, shard: ShardSpec) -> String {
    format!("{name}{}.telemetry.json", shard.suffix())
}

/// Telemetry event-log (JSONL) file name of a campaign under a shard
/// spec.
pub fn events_file(name: &str, shard: ShardSpec) -> String {
    format!("{name}{}.telemetry.jsonl", shard.suffix())
}

/// Prometheus-style text snapshot file name of a campaign under a
/// shard spec.
pub fn prom_file(name: &str, shard: ShardSpec) -> String {
    format!("{name}{}.prom", shard.suffix())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The shard spec encoded in a manifest file name
/// (`<name>.shard-I-of-N.manifest.json`), or `None` for unsuffixed /
/// foreign file names.
fn filename_shard_spec(name: &str, path: &Path) -> Option<ShardSpec> {
    let stem = path.file_name()?.to_str()?.strip_suffix(".manifest.json")?;
    artifact_stem_spec(name, stem)
}

/// The shard spec encoded in **any** shard artifact file name of
/// `name` — store (`<name>.shard-I-of-N.jsonl` / `.seg`, plus the
/// segment backend's `.seg.idx` sidecar) or manifest
/// (`<name>.shard-I-of-N.manifest.json`). The dispatcher's pre-flight
/// scans with this: a killed leg typically leaves only its store (the
/// manifest is written at run end), and a stale-family store alone is
/// enough to sabotage a re-dispatch at a different leg count.
pub fn artifact_shard_spec(name: &str, file_name: &str) -> Option<ShardSpec> {
    let stem = file_name
        .strip_suffix(".manifest.json")
        .or_else(|| file_name.strip_suffix(".jsonl"))
        .or_else(|| file_name.strip_suffix(".seg.idx"))
        .or_else(|| file_name.strip_suffix(".seg"))?;
    artifact_stem_spec(name, stem)
}

/// Parses `<name>.shard-I-of-N[.slice-J-of-M]` (a file name with its
/// extension already stripped) into the shard spec.
fn artifact_stem_spec(name: &str, stem: &str) -> Option<ShardSpec> {
    let stem = stem.strip_prefix(&format!("{name}.shard-"))?;
    let (shard, slice) = match stem.split_once(".slice-") {
        Some((shard, slice)) => (shard, Some(slice)),
        None => (stem, None),
    };
    let (i, n) = shard.split_once("-of-")?;
    let spec = ShardSpec::new(i.parse().ok()?, n.parse().ok()?).ok()?;
    match slice {
        None => Some(spec),
        Some(slice) => {
            let (j, m) = slice.split_once("-of-")?;
            spec.slice_of(j.parse().ok()?, m.parse().ok()?).ok()
        }
    }
}

/// Outcome of a [`merge`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Shard manifests merged.
    pub shards: usize,
    /// Points in the merged manifest.
    pub points: usize,
    /// Chunk records in the merged store.
    pub chunks: usize,
    /// Duplicate chunk records dropped (same point key + packet range
    /// simulated by more than one shard or appended twice).
    pub duplicate_chunks: usize,
    /// Malformed store lines skipped (torn tails of killed runs).
    pub malformed_lines: usize,
    /// Chunk executions the shard legs served from their stores —
    /// recorded here because the merged manifest normalizes this
    /// provenance away (see [`merge_manifests`]).
    pub store_served_chunks: u64,
    /// Packet-weighted view of `store_served_chunks`: packets the shard
    /// legs served from their stores instead of re-simulating —
    /// normalized away from the merged manifest for the same reason.
    pub store_served_packets: u64,
    /// Path of the merged store.
    pub store_path: PathBuf,
    /// Path of the merged manifest.
    pub manifest_path: PathBuf,
    /// Global point indices absent from the merge (first 64). Empty
    /// except for a partial merge
    /// ([`merge_manifests_allowing_partial`]) of an abandoned dispatch.
    pub missing_points: Vec<u64>,
    /// Total count of missing points (the list above is capped).
    pub missing_points_total: u64,
}

/// Discovers the shard manifests of `name` in `dir`
/// (`<name>.shard-*-of-*.manifest.json`) with their filename specs,
/// sorted by shard index.
///
/// A directory holding manifests of **different `of-N` families** (e.g.
/// `.shard-0-of-2` next to `.shard-1-of-3`, left over from a re-sharded
/// run) is an error, not a merge candidate: the families partition the
/// point set differently, so any subset spanning both describes a
/// nonsense partition. The error tells the operator which families
/// collided so they can delete the stale one.
pub fn discover_shard_specs(name: &str, dir: &Path) -> io::Result<Vec<(ShardSpec, PathBuf)>> {
    let mut found: Vec<(ShardSpec, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some(stem) = file_name
            .to_str()
            .and_then(|f| f.strip_suffix(".manifest.json"))
        else {
            continue;
        };
        // Only a valid shard (or slice) spec counts as a shard file —
        // anything else is an unrelated file that happens to share the
        // `<name>.shard-` prefix.
        let Some(spec) = artifact_stem_spec(name, stem) else {
            continue;
        };
        found.push((spec, entry.path()));
    }
    let families: BTreeSet<u32> = found.iter().map(|(s, _)| s.count).collect();
    if families.len() > 1 {
        return Err(invalid(format!(
            "mixed shard families for campaign '{name}' in {}: found manifests of {} — \
             stale leftovers of a re-sharded run; delete every family but the live one \
             (or merge each family from its own directory)",
            dir.display(),
            families
                .iter()
                .map(|n| format!("of-{n}"))
                .collect::<Vec<_>>()
                .join(" and "),
        )));
    }
    found.sort_by_key(|(s, _)| *s);
    Ok(found)
}

/// The shard manifest paths of `name` in `dir`, sorted by shard index —
/// [`discover_shard_specs`] without the filename specs.
pub fn discover_shards(name: &str, dir: &Path) -> io::Result<Vec<PathBuf>> {
    Ok(discover_shard_specs(name, dir)?
        .into_iter()
        .map(|(_, p)| p)
        .collect())
}

/// Merges a complete set of shard runs back into the single-host files.
///
/// Reads the given shard manifests (plus their sibling `.jsonl` stores),
/// validates that they form one consistent, complete partition — same
/// campaign, same settings, same enumeration count, disjoint indices
/// covering every point — then writes `<out_dir>/<name>.manifest.json`
/// and `<out_dir>/<name>.jsonl`. The merged manifest is byte-identical
/// to the one an unsharded run at the same settings would write; the
/// merged store holds the same chunk set (deduplicated, in canonical
/// `(key, range)` order — a single-host store lists the identical
/// records in execution order instead).
pub fn merge_manifests(
    name: &str,
    manifests: &[PathBuf],
    out_dir: &Path,
) -> io::Result<MergeReport> {
    merge_manifests_allowing_partial(name, manifests, out_dir, false)
}

/// [`merge_manifests`] with an escape hatch for abandoned dispatches:
/// with `allow_partial`, a shard set that misses points (because some
/// shard exhausted its attempt cap) still merges — the merged manifest
/// simply lists fewer points than it enumerates, and the report names
/// the missing global indices. Duplicate or out-of-range points are
/// **always** errors; only missing ones are forgiven. A partial merge
/// still passes [`verify`] (which checks the points that are listed),
/// so a degraded campaign's surviving results remain trustworthy.
pub fn merge_manifests_allowing_partial(
    name: &str,
    manifests: &[PathBuf],
    out_dir: &Path,
    allow_partial: bool,
) -> io::Result<MergeReport> {
    if manifests.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no shard manifests for campaign '{name}'"),
        ));
    }
    let mut parsed: Vec<(PathBuf, Manifest)> = Vec::new();
    for path in manifests {
        let m = Manifest::read(path)?;
        // A renamed artifact (file says shard I-of-N, content says J/M)
        // would make the sibling-store lookup below read the wrong
        // `.jsonl`; refuse it before any statistics are touched.
        if let Some(file_spec) = filename_shard_spec(&m.name, path) {
            if file_spec != m.settings.shard {
                return Err(invalid(format!(
                    "{}: file is named shard {file_spec} but its manifest records \
                     shard {} — artifact was renamed or mixed up",
                    path.display(),
                    m.settings.shard
                )));
            }
        }
        parsed.push((path.clone(), m));
    }

    // Cross-shard consistency: one campaign, one settings block, one
    // index space.
    let count = parsed[0].1.settings.shard.count;
    let enumerated = parsed[0].1.points_enumerated;
    let reference = normalized_settings(&parsed[0].1);
    let mut seen_shards = BTreeSet::new();
    for (path, m) in &parsed {
        let at = path.display();
        if m.name != name {
            return Err(invalid(format!(
                "{at}: campaign '{}', expected '{name}'",
                m.name
            )));
        }
        // A `0/1` manifest is the degenerate one-shard partition: merge
        // accepts it and simply canonicalizes the files.
        if m.settings.shard.count != count {
            return Err(invalid(format!(
                "{at}: shard count {} != {count}",
                m.settings.shard.count
            )));
        }
        if !seen_shards.insert(m.settings.shard) {
            return Err(invalid(format!(
                "{at}: duplicate shard {}",
                m.settings.shard
            )));
        }
        if normalized_settings(m) != reference {
            return Err(invalid(format!(
                "{at}: controller settings differ between shards"
            )));
        }
        if m.points_enumerated != enumerated {
            return Err(invalid(format!(
                "{at}: enumerated {} points, expected {enumerated}",
                m.points_enumerated
            )));
        }
    }

    // Reassemble the global point order and prove completeness. The
    // expected index sequence is compared lazily — `points_enumerated`
    // comes from an untrusted file, so it must not size an allocation.
    let mut points: Vec<_> = parsed.iter().flat_map(|(_, m)| m.points.clone()).collect();
    points.sort_by_key(|p| p.index);
    // Normalize chunk provenance: how many chunks a leg served from its
    // own store is a per-run operational detail, and a rescue leg that
    // resumed a straggler's store (work stealing) would otherwise leave
    // resume counts a fresh single-host run cannot have. Zeroing them
    // keeps the merged manifest byte-identical to a single-host run no
    // matter the resume/steal history that produced the shards.
    let mut store_served_chunks = 0u64;
    let mut store_served_packets = 0u64;
    for p in &mut points {
        store_served_chunks += p.chunks_from_store as u64;
        store_served_packets += p.packets_from_store as u64;
        p.chunks_from_store = 0;
        p.packets_from_store = 0;
    }
    let mut missing_points: Vec<u64> = Vec::new();
    let mut missing_points_total = 0u64;
    if !points.iter().map(|p| p.index).eq(0..enumerated) {
        let have: BTreeSet<u64> = points.iter().map(|p| p.index).collect();
        // Duplicate indices (the same point recorded by two shards — a
        // broken partition, e.g. a slice set merged next to its parent)
        // and out-of-range indices are corruption regardless of
        // `allow_partial`; only *missing* points are forgivable.
        if points.len() != have.len() {
            return Err(invalid(format!(
                "shard set is not a disjoint partition: {} point records but only {} \
                 distinct indices — some point was recorded by more than one shard",
                points.len(),
                have.len(),
            )));
        }
        if let Some(&beyond) = have.range(enumerated..).next() {
            return Err(invalid(format!(
                "point index {beyond} is out of range: only {enumerated} points enumerated"
            )));
        }
        missing_points = (0..enumerated)
            .filter(|i| !have.contains(i))
            .take(64)
            .collect();
        missing_points_total = enumerated - have.len() as u64;
        if !allow_partial {
            let shown: Vec<u64> = missing_points.iter().copied().take(16).collect();
            return Err(invalid(format!(
                "shard set is not a complete partition: {} of {enumerated} points, \
                 missing indices {shown:?}{}",
                points.len(),
                if (shown.len() as u64) < missing_points_total {
                    ", …"
                } else {
                    ""
                },
            )));
        }
    }

    // Gather the stores, dropping exact-duplicate chunk records. Each
    // leg's backend is detected from which store file sits next to its
    // manifest (legs of one dispatch share a backend, but merge does
    // not insist on it); the merged store is written in the backend of
    // the first shard.
    let mut records: Vec<(ChunkId, HarqStats)> = Vec::new();
    let mut malformed_lines = 0;
    let mut merged_backend = BackendKind::default();
    for (i, (path, m)) in parsed.iter().enumerate() {
        let shard_dir = path.parent().unwrap_or(Path::new("."));
        let (store_path, kind) = detect_store_file(name, shard_dir, m.settings.shard)?;
        if i == 0 {
            merged_backend = kind;
        }
        let (recs, malformed) = store::load_all(&store_path)?;
        malformed_lines += malformed;
        records.extend(recs);
    }
    records.sort_by_key(|(id, _)| (id.point, id.first_packet, id.n_packets));
    let before = records.len();
    // determinism: unordered-ok(insert-only dedup filter over the already-sorted record list)
    let mut seen: HashSet<ChunkId> = HashSet::with_capacity(before);
    records.retain(|(id, _)| seen.insert(*id));
    let duplicate_chunks = before - records.len();

    let merged = Manifest {
        name: name.to_string(),
        settings: super::CampaignSettings {
            shard: ShardSpec::single(),
            ..parsed[0].1.settings
        },
        points_enumerated: enumerated,
        points,
    };
    fs::create_dir_all(out_dir)?;
    let store_path = out_dir.join(store_file(name, ShardSpec::single(), merged_backend));
    let manifest_path = out_dir.join(manifest_file(name, ShardSpec::single()));
    store::write_records(&store_path, &records)?;
    merged.write(&manifest_path)?;
    crate::telemetry::counter_add(crate::telemetry::Counter::MergesCompleted, 1);
    Ok(MergeReport {
        shards: parsed.len(),
        points: merged.points.len(),
        chunks: records.len(),
        duplicate_chunks,
        malformed_lines,
        store_served_chunks,
        store_served_packets,
        store_path,
        manifest_path,
        missing_points,
        missing_points_total,
    })
}

/// [`merge_manifests`] over every shard manifest of `name` found in
/// `in_dir` — the `campaign-admin merge` entry.
pub fn merge(name: &str, in_dir: &Path, out_dir: &Path) -> io::Result<MergeReport> {
    let manifests = discover_shards(name, in_dir)?;
    if manifests.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no '{name}.shard-*-of-*.manifest.json' shard manifests in {}",
                in_dir.display()
            ),
        ));
    }
    merge_manifests(name, &manifests, out_dir)
}

/// Splits a dead shard's result store into `slices` slice stores — the
/// storage half of elastic re-sharding.
///
/// Every record of the parent's store moves to the slice that owns its
/// point key (same backend, suffixed file names), so each relaunched
/// slice leg resumes the dead leg's surviving work instead of
/// re-simulating it. The parent's store, sidecar, manifest and live
/// telemetry snapshot are then removed: the records now live in the
/// slice stores, and a leftover parent store would hand a later
/// `--steal` re-dispatch two overlapping sources of truth. A parent
/// that died before creating a store partitions trivially (the slices
/// start fresh). Loading is lenient — the parent died mid-write, so a
/// torn tail must not block its own rescue.
pub fn partition_store_into_slices(
    name: &str,
    dir: &Path,
    parent: ShardSpec,
    slices: u32,
) -> io::Result<Vec<ShardSpec>> {
    let specs: Vec<ShardSpec> = (0..slices)
        .map(|j| parent.slice_of(j, slices))
        .collect::<Result<_, _>>()
        .map_err(invalid)?;
    let (store_path, backend) = match detect_store_file(name, dir, parent) {
        Ok(found) => found,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(specs),
        Err(e) => return Err(e),
    };
    let load = store::load_all_lenient(&store_path)?;
    for spec in &specs {
        let records: Vec<(ChunkId, HarqStats)> = load
            .records
            .iter()
            .filter(|(id, _)| spec.owns(id.point))
            .cloned()
            .collect();
        store::write_records(&dir.join(store_file(name, *spec, backend)), &records)?;
    }
    fs::remove_file(&store_path)?;
    if backend == BackendKind::Indexed {
        let _ = fs::remove_file(store_path.with_extension("seg.idx"));
    }
    for stale in [
        manifest_file(name, parent),
        telemetry_file(name, parent),
        prom_file(name, parent),
    ] {
        let _ = fs::remove_file(dir.join(stale));
    }
    Ok(specs)
}

/// The settings identity shards must agree on (everything except the
/// shard assignment itself; `resume` is not rendered into manifests).
fn normalized_settings(m: &Manifest) -> super::CampaignSettings {
    super::CampaignSettings {
        shard: ShardSpec::single(),
        resume: true,
        backend: BackendKind::default(),
        ..m.settings
    }
}

/// Outcome of a [`verify`] call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VerifyReport {
    /// Points listed in the manifest.
    pub points: usize,
    /// Of those, points whose realized packet range is fully covered by
    /// store chunks.
    pub covered_points: usize,
    /// Store records whose point key no manifest entry references.
    pub orphan_chunks: usize,
    /// Exact-duplicate store records.
    pub duplicate_chunks: usize,
    /// Store records that no consistent chunk cover uses (left over
    /// from a different schedule, or beyond the manifest's realized
    /// packet count).
    pub stale_chunks: usize,
    /// Unparseable store lines.
    pub malformed_lines: usize,
    /// Human-readable consistency violations; empty means the store can
    /// reproduce every manifest point.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// Whether the store is consistent with the manifest (orphan, stale
    /// and malformed records are GC fodder, not inconsistencies).
    pub fn ok(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Checks that the result store of `(name, shard)` in `dir` can back its
/// manifest: every manifest point with realized packets must be covered
/// by store chunks that tile `0..packets` without gaps or overlaps.
pub fn verify(name: &str, dir: &Path, shard: ShardSpec) -> io::Result<VerifyReport> {
    verify_with(name, dir, shard, false)
}

/// [`verify`] with an optional **strict** pass that additionally checks
/// per-point store-provenance consistency — the invariants a rescued or
/// re-sharded merge must preserve: a point cannot have served more
/// chunks (or packets) from the store than it ran in total, and chunk
/// and packet provenance must agree on whether *any* resume happened
/// (every stored chunk carries at least one packet). Merged manifests
/// normalize provenance to zero, which trivially satisfies all three.
pub fn verify_with(
    name: &str,
    dir: &Path,
    shard: ShardSpec,
    strict: bool,
) -> io::Result<VerifyReport> {
    let manifest = Manifest::read(&dir.join(manifest_file(name, shard)))?;
    let (store_path, _) = detect_store_file(name, dir, shard)?;
    let (records, malformed_lines) = store::load_all(&store_path)?;
    let mut report = VerifyReport {
        points: manifest.points.len(),
        malformed_lines,
        ..Default::default()
    };

    // determinism: unordered-ok(keyed gets plus an order-insensitive sum over the stale-chunk tally)
    let mut by_key: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
    // determinism: unordered-ok(dedup membership plus an order-insensitive orphan count)
    let mut seen: HashSet<ChunkId> = HashSet::new();
    for (id, _) in &records {
        if !seen.insert(*id) {
            report.duplicate_chunks += 1;
            continue;
        }
        by_key
            .entry(id.point)
            .or_default()
            .push((id.first_packet, id.n_packets));
    }

    // Orphans are counted over the deduplicated record set (a repeated
    // orphan line is one orphan + one duplicate), so verify's tallies
    // agree with what gc would drop for the same store.
    // determinism: unordered-ok(membership test only)
    let live_keys: HashSet<u64> = manifest.points.iter().map(|p| p.key).collect();
    report.orphan_chunks = seen
        .iter()
        .filter(|id| !live_keys.contains(&id.point))
        .count();

    // `used` counts, per key, how many distinct chunks some point cover
    // consumed — the rest of that key's chunks are stale.
    // determinism: unordered-ok(keyed access only; per-key sets are ordered BTreeSets)
    let mut used: HashMap<u64, BTreeSet<(usize, usize)>> = HashMap::new();
    for point in &manifest.points {
        if point.packets == 0 {
            report.covered_points += 1;
            continue;
        }
        let chunks = by_key.get(&point.key).cloned().unwrap_or_default();
        match find_cover(&chunks, point.packets) {
            Some(cover) => {
                report.covered_points += 1;
                used.entry(point.key).or_default().extend(cover);
            }
            None => report.problems.push(format!(
                "point {} '{}' (key {:016x}): no chunk cover of 0..{} in the store \
                 ({} chunks present for this key)",
                point.index,
                point.label,
                point.key,
                point.packets,
                chunks.len(),
            )),
        }
    }
    for (key, chunks) in &by_key {
        if !live_keys.contains(key) {
            continue; // orphans already counted
        }
        let used_here = used.get(key).map_or(0, BTreeSet::len);
        report.stale_chunks += chunks.len() - used_here;
    }
    if strict {
        for p in &manifest.points {
            let at = format!("point {} '{}' (key {:016x})", p.index, p.label, p.key);
            if p.chunks_from_store > p.chunks {
                report.problems.push(format!(
                    "{at}: {} chunks served from store but only {} chunks ran",
                    p.chunks_from_store, p.chunks
                ));
            }
            if p.packets_from_store > p.packets {
                report.problems.push(format!(
                    "{at}: {} packets served from store but only {} packets realized",
                    p.packets_from_store, p.packets
                ));
            }
            if (p.chunks_from_store == 0) != (p.packets_from_store == 0) {
                report.problems.push(format!(
                    "{at}: store provenance disagrees — {} chunks but {} packets \
                     served from store (every stored chunk carries packets)",
                    p.chunks_from_store, p.packets_from_store
                ));
            }
        }
    }
    Ok(report)
}

/// Outcome of a [`gc`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct GcReport {
    /// Records kept (the canonical covering set, sorted by key/range).
    pub kept: usize,
    /// Records dropped because no manifest point references their key.
    pub dropped_orphans: usize,
    /// Exact-duplicate records dropped.
    pub dropped_duplicates: usize,
    /// Records of live keys that no chunk cover uses (abandoned
    /// schedules, packets beyond the manifest's realized count).
    pub dropped_stale: usize,
    /// Malformed (torn) lines dropped.
    pub dropped_malformed: usize,
    /// Corrupt records dropped (parseable lines whose stats violate the
    /// range invariants, e.g. `delivered > packets` — the ones the
    /// strict loaders refuse to read past).
    pub dropped_corrupt: usize,
}

/// Rewrites the store of `(name, shard)` in `dir` down to the canonical
/// covering set its manifest needs: orphaned keys, duplicate records,
/// stale chunks and torn lines are dropped; the surviving records are
/// written back sorted by `(key, range)`. The manifest is the source of
/// truth — chunks a *future deeper* run could have reused are removed
/// too, which is exactly the trade a GC is asked to make.
pub fn gc(name: &str, dir: &Path, shard: ShardSpec) -> io::Result<GcReport> {
    let manifest = Manifest::read(&dir.join(manifest_file(name, shard)))?;
    let (store_path, _) = detect_store_file(name, dir, shard)?;
    // Lenient load: gc is the tool the strict loaders point at when they
    // hit a corrupt record, so it must read past (and drop) the damage.
    let load = store::load_all_lenient(&store_path)?;
    let (records, dropped_malformed, dropped_corrupt) =
        (load.records, load.torn_lines, load.corrupt_records);

    let mut by_id: BTreeMap<ChunkId, HarqStats> = BTreeMap::new();
    let mut dropped_duplicates = 0;
    for (id, stats) in records {
        if by_id.insert(id, stats).is_some() {
            dropped_duplicates += 1;
        }
    }

    // Realized packets per live key (a key can recur across run calls;
    // the deepest realization wins).
    // determinism: unordered-ok(iteration only fills an ordered keep-set; kept records are emitted in BTree order)
    let mut realized: HashMap<u64, usize> = HashMap::new();
    for p in &manifest.points {
        let r = realized.entry(p.key).or_insert(0);
        *r = (*r).max(p.packets);
    }

    let mut keep: BTreeSet<ChunkId> = BTreeSet::new();
    let mut dropped_orphans = 0;
    for id in by_id.keys() {
        if !realized.contains_key(&id.point) {
            dropped_orphans += 1;
        }
    }
    for (&key, &packets) in &realized {
        let chunks: Vec<(usize, usize)> = by_id
            .range(
                ChunkId {
                    point: key,
                    first_packet: 0,
                    n_packets: 0,
                }..=ChunkId {
                    point: key,
                    first_packet: usize::MAX,
                    n_packets: usize::MAX,
                },
            )
            .map(|(id, _)| (id.first_packet, id.n_packets))
            .collect();
        // Keep the covering set when one exists; otherwise keep every
        // chunk of the key — gc must never worsen an already-incomplete
        // store (that is `verify`'s problem to report).
        let keep_ranges = find_cover(&chunks, packets).unwrap_or(chunks);
        keep.extend(keep_ranges.into_iter().map(|(first, len)| ChunkId {
            point: key,
            first_packet: first,
            n_packets: len,
        }));
    }

    let kept_records: Vec<(ChunkId, HarqStats)> = by_id
        .iter()
        .filter(|(id, _)| keep.contains(id))
        .map(|(id, stats)| (*id, stats.clone()))
        .collect();
    let dropped_stale = by_id.len() - kept_records.len() - dropped_orphans;
    store::write_records(&store_path, &kept_records)?;
    Ok(GcReport {
        kept: kept_records.len(),
        dropped_orphans,
        dropped_duplicates,
        dropped_stale,
        dropped_malformed,
        dropped_corrupt,
    })
}

/// Store-side figures of a summary: chunk records, distinct point
/// keys, stored packets, and (when the whole file is being summarized)
/// its size on disk.
struct StoreSummary {
    records: usize,
    keys: usize,
    packets: u64,
    bytes: Option<u64>,
}

impl StoreSummary {
    /// Summarizes one record set (`bytes` stays unset — callers that
    /// summarize a whole store file fill it from `fs::metadata`).
    fn of(records: &[(ChunkId, HarqStats)]) -> Self {
        // determinism: unordered-ok(cardinality only)
        let keys: HashSet<u64> = records.iter().map(|(id, _)| id.point).collect();
        Self {
            records: records.len(),
            keys: keys.len(),
            packets: records.iter().map(|(_, s)| s.packets).sum(),
            bytes: None,
        }
    }
}

/// The campaign header + manifest/budget/store/reuse summary block
/// shared by `campaign-admin stats` and `campaign-admin query` — one
/// renderer, so the two surfaces cannot drift apart.
fn render_summary(
    name: &str,
    shard: ShardSpec,
    qualifier: &str,
    points_enumerated: u64,
    t: &ManifestTotals,
    store: &StoreSummary,
    malformed: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {name}{}{qualifier}\n",
        if shard.is_sharded() {
            format!(" (shard {shard})")
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "  manifest: {} points recorded of {} enumerated, {} converged\n",
        t.points_total, points_enumerated, t.points_converged
    ));
    out.push_str(&format!(
        "  budgets:  {} packets realized of {} fixed ({:.1}% saved)\n",
        t.realized_packets,
        t.budget_packets,
        t.saved_vs_fixed() * 100.0
    ));
    match store.bytes {
        Some(bytes) => out.push_str(&format!(
            "  store:    {} chunk records over {} point keys, {} packets, {bytes} bytes\n",
            store.records, store.keys, store.packets,
        )),
        None => out.push_str(&format!(
            "  store:    {} chunk records over {} point keys, {} packets\n",
            store.records, store.keys, store.packets,
        )),
    }
    // Hit provenance comes from the same `ManifestTotals` aggregation
    // that `render_json` and `campaign-admin top` use, so the surfaces
    // cannot disagree.
    out.push_str(&format!(
        "  reuse:    {} chunks / {} packets served from store ({:.1}% of realized)\n",
        t.store_chunks,
        t.store_packets,
        t.store_packet_rate() * 100.0
    ));
    if malformed > 0 {
        out.push_str(&format!("  warning:  {malformed} malformed store lines\n"));
    }
    out
}

/// Renders a human-readable summary of a campaign's store + manifest —
/// the `campaign-admin stats` output.
pub fn stats(name: &str, dir: &Path, shard: ShardSpec) -> io::Result<String> {
    let manifest = Manifest::read(&dir.join(manifest_file(name, shard)))?;
    let (store_path, _) = detect_store_file(name, dir, shard)?;
    let (records, malformed) = store::load_all(&store_path)?;
    let mut store = StoreSummary::of(&records);
    store.bytes = Some(fs::metadata(&store_path)?.len());
    Ok(render_summary(
        name,
        shard,
        "",
        manifest.points_enumerated,
        &manifest.totals(),
        &store,
        malformed,
    ))
}

/// Renders the `campaign-admin query` output: the [`stats`] summary
/// block restricted to the manifest points matching `filter`, followed
/// by one line per matching point. Store figures count only records
/// whose point key a matching point references.
pub fn query(name: &str, dir: &Path, shard: ShardSpec, filter: &QueryFilter) -> io::Result<String> {
    let manifest = Manifest::read(&dir.join(manifest_file(name, shard)))?;
    let (store_path, _) = detect_store_file(name, dir, shard)?;
    let (records, malformed) = store::load_all(&store_path)?;
    let selected: Vec<&PointRecord> = filter.select(&manifest.points);
    // determinism: unordered-ok(membership test only; output order comes from the record list)
    let live: HashSet<u64> = selected.iter().map(|p| p.key).collect();
    let matching: Vec<(ChunkId, HarqStats)> = records
        .into_iter()
        .filter(|(id, _)| live.contains(&id.point))
        .collect();
    let qualifier = format!(
        " query: {} of {} points match",
        selected.len(),
        manifest.points.len()
    );
    let mut out = render_summary(
        name,
        shard,
        &qualifier,
        manifest.points_enumerated,
        &ManifestTotals::over(selected.iter().copied()),
        &StoreSummary::of(&matching),
        malformed,
    );
    for p in &selected {
        out.push_str(&format!(
            "  point {:>4} {} key {:016x}  snr {:+.2} dB  bler {:.3e} ci [{:.3e}, {:.3e}]  \
             packets {}/{}  tier {}  {}\n",
            p.index,
            p.label,
            p.key,
            p.snr_db,
            p.bler,
            p.ci.0,
            p.ci.1,
            p.packets,
            p.max_packets,
            p.tier,
            if p.converged {
                "converged"
            } else {
                "not converged"
            },
        ));
    }
    Ok(out)
}

/// Finds a subset of `chunks` (each a `(first_packet, n_packets)`
/// range) that tiles `0..target` exactly — no gaps, no overlaps.
/// Greedy longest-first with backtracking: deterministic, and robust to
/// stores holding chunks from several schedules (e.g. a `--target-ci`
/// run resumed over a doubling-schedule store).
fn find_cover(chunks: &[(usize, usize)], target: usize) -> Option<Vec<(usize, usize)>> {
    let mut by_start: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(first, len) in chunks {
        if len > 0 && first < target {
            by_start.entry(first).or_default().push(len);
        }
    }
    for lens in by_start.values_mut() {
        lens.sort_unstable_by(|a, b| b.cmp(a));
        lens.dedup();
    }
    let mut cover = Vec::new();
    fn rec(
        by_start: &BTreeMap<usize, Vec<usize>>,
        pos: usize,
        target: usize,
        cover: &mut Vec<(usize, usize)>,
    ) -> bool {
        if pos == target {
            return true;
        }
        let Some(lens) = by_start.get(&pos) else {
            return false;
        };
        for &len in lens {
            if pos + len <= target {
                cover.push((pos, len));
                if rec(by_start, pos + len, target, cover) {
                    return true;
                }
                cover.pop();
            }
        }
        false
    }
    rec(&by_start, 0, target, &mut cover).then_some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_validation() {
        assert_eq!("0/1".parse::<ShardSpec>().unwrap(), ShardSpec::single());
        assert_eq!(
            "2/4".parse::<ShardSpec>().unwrap(),
            ShardSpec::new(2, 4).unwrap()
        );
        for bad in ["", "3", "1/0", "4/4", "5/4", "a/2", "1/b", "-1/2"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad}");
        }
        assert_eq!(ShardSpec::new(1, 3).unwrap().to_string(), "1/3");
    }

    #[test]
    fn constructor_errors_instead_of_panicking() {
        // The dispatcher builds specs programmatically, so out-of-range
        // combinations must be an Err (with the parse wording), never an
        // assert.
        for (i, n) in [(0, 0), (1, 0), (2, 2), (5, 4), (u32::MAX, 1)] {
            let err = ShardSpec::new(i, n).unwrap_err();
            assert!(err.contains("INDEX < COUNT"), "{i}/{n}: {err}");
        }
        assert_eq!(ShardSpec::new(0, 1).unwrap(), ShardSpec::single());
    }

    #[test]
    fn sharding_partitions_every_key_exactly_once() {
        for count in 1..=5u32 {
            for key in (0u64..200).chain([u64::MAX, u64::MAX - 7]) {
                let owners: Vec<u32> = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(key))
                    .collect();
                assert_eq!(owners.len(), 1, "key {key} count {count}: {owners:?}");
            }
        }
    }

    #[test]
    fn file_names_only_suffix_when_sharded() {
        assert_eq!(
            store_file("fig6", ShardSpec::single(), BackendKind::Jsonl),
            "fig6.jsonl"
        );
        assert_eq!(
            store_file("fig6", ShardSpec::new(0, 2).unwrap(), BackendKind::Jsonl),
            "fig6.shard-0-of-2.jsonl"
        );
        assert_eq!(
            store_file("fig6", ShardSpec::new(0, 2).unwrap(), BackendKind::Indexed),
            "fig6.shard-0-of-2.seg"
        );
        assert_eq!(
            manifest_file("fig6", ShardSpec::new(1, 2).unwrap()),
            "fig6.shard-1-of-2.manifest.json"
        );
    }

    #[test]
    fn artifact_names_resolve_to_their_shard_spec() {
        let spec = ShardSpec::new(0, 2).unwrap();
        for file in [
            "fig6.shard-0-of-2.jsonl",
            "fig6.shard-0-of-2.seg",
            "fig6.shard-0-of-2.seg.idx",
            "fig6.shard-0-of-2.manifest.json",
        ] {
            assert_eq!(artifact_shard_spec("fig6", file), Some(spec), "{file}");
        }
        // Unsuffixed (single-host) artifacts carry no shard spec.
        assert_eq!(artifact_shard_spec("fig6", "fig6.jsonl"), None);
        assert_eq!(artifact_shard_spec("fig6", "other.shard-0-of-2.seg"), None);
    }

    #[test]
    fn store_detection_requires_exactly_one_backend_file() {
        let dir = std::env::temp_dir().join(format!("shard-detect-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spec = ShardSpec::single();

        let err = detect_store_file("c", &dir, spec).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound, "{err}");

        fs::write(dir.join(store_file("c", spec, BackendKind::Jsonl)), "").unwrap();
        let (path, kind) = detect_store_file("c", &dir, spec).unwrap();
        assert_eq!(kind, BackendKind::Jsonl);
        assert!(path.ends_with("c.jsonl"));

        fs::write(dir.join(store_file("c", spec, BackendKind::Indexed)), "").unwrap();
        let err = detect_store_file("c", &dir, spec).unwrap_err();
        assert!(err.to_string().contains("more than one"), "{err}");

        fs::remove_file(dir.join(store_file("c", spec, BackendKind::Jsonl))).unwrap();
        let (_, kind) = detect_store_file("c", &dir, spec).unwrap();
        assert_eq!(kind, BackendKind::Indexed);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cover_finder_handles_mixed_schedules() {
        // Pure doubling schedule.
        assert_eq!(
            find_cover(&[(0, 8), (8, 8), (16, 16)], 32),
            Some(vec![(0, 8), (8, 8), (16, 16)])
        );
        // Two interleaved schedules; only one tiles 0..24 — greedy
        // longest-first must backtrack out of the (0,16) branch.
        assert_eq!(
            find_cover(&[(0, 16), (0, 8), (8, 16), (12, 12)], 24),
            Some(vec![(0, 8), (8, 16)])
        );
        // Gap → no cover.
        assert_eq!(find_cover(&[(0, 8), (16, 8)], 24), None);
        // Overlap alone cannot tile.
        assert_eq!(find_cover(&[(0, 8), (4, 8)], 12), None);
        // Empty target is trivially covered.
        assert_eq!(find_cover(&[], 0), Some(vec![]));
    }

    /// A minimal single-point shard manifest for file-level tests.
    fn tiny_manifest(name: &str, spec: ShardSpec) -> Manifest {
        let mut m = Manifest::new(name, super::super::CampaignSettings::default());
        m.settings.shard = spec;
        m.points_enumerated = 2;
        m.points.push(crate::campaign::manifest::PointRecord {
            index: 0,
            key: 2, // even → shard 0 of 2
            label: "p0".into(),
            snr_db: 1.0,
            packets: 4,
            max_packets: 4,
            bler: 0.0,
            ci: (0.0, 0.5),
            rel_half_width: 1.0,
            converged: true,
            chunks: 1,
            chunks_from_store: 0,
            packets_from_store: 0,
            tier: hspa_phy::turbo::AccuracyTier::Exact,
        });
        m
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_shard_sets() {
        let dir = std::env::temp_dir().join(format!("shard-merge-reject-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // One shard of a 2-shard set: discovery works, merge refuses.
        let m = tiny_manifest("c", ShardSpec::new(0, 2).unwrap());
        m.write(&dir.join(manifest_file("c", m.settings.shard)))
            .unwrap();
        fs::write(
            dir.join(store_file("c", m.settings.shard, BackendKind::Jsonl)),
            "",
        )
        .unwrap();
        let found = discover_shards("c", &dir).unwrap();
        assert_eq!(found.len(), 1);
        let err = merge("c", &dir, &dir.join("out")).unwrap_err();
        assert!(err.to_string().contains("missing indices"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_rejects_mixed_shard_families() {
        let dir = std::env::temp_dir().join(format!("shard-mixed-family-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // `.shard-0-of-2` next to `.shard-1-of-3`: leftovers of a
        // re-sharded run must not be merged as one partition.
        for spec in [ShardSpec::new(0, 2).unwrap(), ShardSpec::new(1, 3).unwrap()] {
            tiny_manifest("c", spec)
                .write(&dir.join(manifest_file("c", spec)))
                .unwrap();
            fs::write(dir.join(store_file("c", spec, BackendKind::Jsonl)), "").unwrap();
        }
        let err = discover_shards("c", &dir).unwrap_err();
        assert!(err.to_string().contains("mixed shard families"), "{err}");
        assert!(err.to_string().contains("of-2 and of-3"), "{err}");
        let err = merge("c", &dir, &dir.join("out")).unwrap_err();
        assert!(err.to_string().contains("mixed shard families"), "{err}");
        // A single-family dir (even incomplete) discovers fine.
        fs::remove_file(dir.join(manifest_file("c", ShardSpec::new(1, 3).unwrap()))).unwrap();
        assert_eq!(discover_shards("c", &dir).unwrap().len(), 1);
        // Another campaign's files in the same dir are not a family mix.
        tiny_manifest("d", ShardSpec::new(0, 3).unwrap())
            .write(&dir.join(manifest_file("d", ShardSpec::new(0, 3).unwrap())))
            .unwrap();
        assert_eq!(discover_shards("c", &dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_renamed_shard_artifacts() {
        let dir = std::env::temp_dir().join(format!("shard-renamed-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Content says 1/2, file name says 0/2 — the sibling-store
        // lookup would read the wrong `.jsonl`.
        let m = tiny_manifest("c", ShardSpec::new(1, 2).unwrap());
        let wrong_name = dir.join(manifest_file("c", ShardSpec::new(0, 2).unwrap()));
        m.write(&wrong_name).unwrap();
        let err = merge_manifests("c", &[wrong_name], &dir.join("out")).unwrap_err();
        assert!(err.to_string().contains("renamed"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_specs_parse_render_and_name_artifacts() {
        let spec = "1/2:0/3".parse::<ShardSpec>().unwrap();
        assert_eq!(spec, ShardSpec::new(1, 2).unwrap().slice_of(0, 3).unwrap());
        assert_eq!(spec.to_string(), "1/2:0/3");
        assert!(spec.is_sharded());
        assert_eq!(spec.parent(), ShardSpec::new(1, 2).unwrap());
        assert_eq!(spec.suffix(), ".shard-1-of-2.slice-0-of-3");
        // A slice of the unsharded spec still gets a full suffix, so
        // its artifacts cannot collide with the single-host files.
        let single_slice = ShardSpec::single().slice_of(1, 2).unwrap();
        assert_eq!(single_slice.suffix(), ".shard-0-of-1.slice-1-of-2");
        assert_eq!(single_slice.to_string(), "0/1:1/2");
        for bad in ["1/2:3/3", "1/2:0/0", "1/2:a/2", "1/2:", "1/2:1"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad}");
        }
        assert!(spec.slice_of(0, 2).is_err(), "slices never nest");
        // Round-trip through the artifact-name parsers.
        for file in [
            "fig6.shard-1-of-2.slice-0-of-3.jsonl",
            "fig6.shard-1-of-2.slice-0-of-3.seg",
            "fig6.shard-1-of-2.slice-0-of-3.seg.idx",
            "fig6.shard-1-of-2.slice-0-of-3.manifest.json",
        ] {
            assert_eq!(artifact_shard_spec("fig6", file), Some(spec), "{file}");
        }
        assert_eq!(
            artifact_shard_spec("fig6", "fig6.shard-1-of-2.slice-9-of-3.jsonl"),
            None,
            "out-of-range slice is not an artifact"
        );
    }

    #[test]
    fn slices_partition_their_parent_exactly() {
        for count in 1..=4u32 {
            for index in 0..count {
                let parent = ShardSpec::new(index, count).unwrap();
                for m in 1..=4u32 {
                    for key in (0u64..300).chain([u64::MAX, u64::MAX - 11]) {
                        let owners = (0..m)
                            .filter(|&j| parent.slice_of(j, m).unwrap().owns(key))
                            .count();
                        assert_eq!(
                            owners,
                            usize::from(parent.owns(key)),
                            "key {key} parent {parent} m {m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition_store_into_slices_moves_every_record_once() {
        let dir = std::env::temp_dir().join(format!("shard-partition-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let parent = ShardSpec::new(1, 2).unwrap();
        // Keys 1, 3, 5, 7 belong to shard 1/2; two chunks for one key.
        let stats = |packets: u64| hspa_phy::harq::HarqStats {
            packets,
            delivered: packets,
            transmissions: packets,
            info_bits: 10,
            failures_at: vec![0; packets as usize],
        };
        let records: Vec<(ChunkId, hspa_phy::harq::HarqStats)> = [1u64, 3, 5, 7]
            .iter()
            .flat_map(|&key| {
                [
                    (
                        ChunkId {
                            point: key,
                            first_packet: 0,
                            n_packets: 4,
                        },
                        stats(4),
                    ),
                    (
                        ChunkId {
                            point: key,
                            first_packet: 4,
                            n_packets: 4,
                        },
                        stats(4),
                    ),
                ]
            })
            .collect();
        let parent_store = dir.join(store_file("c", parent, BackendKind::Jsonl));
        store::write_records(&parent_store, &records).unwrap();

        let slices = partition_store_into_slices("c", &dir, parent, 2).unwrap();
        assert_eq!(slices.len(), 2);
        assert!(!parent_store.exists(), "parent store must be retired");
        let mut moved: Vec<(ChunkId, hspa_phy::harq::HarqStats)> = Vec::new();
        for (j, slice) in slices.iter().enumerate() {
            assert_eq!(*slice, parent.slice_of(j as u32, 2).unwrap());
            let (recs, malformed) =
                store::load_all(&dir.join(store_file("c", *slice, BackendKind::Jsonl))).unwrap();
            assert_eq!(malformed, 0);
            for (id, _) in &recs {
                assert!(slice.owns(id.point), "slice {slice} holds foreign key");
            }
            moved.extend(recs);
        }
        moved.sort_by_key(|(id, _)| *id);
        let mut expected = records.clone();
        expected.sort_by_key(|(id, _)| *id);
        assert_eq!(moved, expected, "every record moves to exactly one slice");

        // A parent that never created a store partitions trivially.
        let ghost = ShardSpec::new(0, 2).unwrap();
        let slices = partition_store_into_slices("c", &dir, ghost, 3).unwrap();
        assert_eq!(slices.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_manifests_merge_like_their_parent() {
        // Shard 0/2 completed whole; shard 1/2 died and was re-sharded
        // into two slices. The merged result must equal what the
        // two-parent merge would have produced.
        let dir = std::env::temp_dir().join(format!("shard-slice-merge-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        // Global enumeration: two points, keys 2 (shard 0) and 3
        // (shard 1). Shard 1's only point lands in slice (3/2)%2 = 1.
        let make = |spec: ShardSpec, index: u64, key: u64| {
            let mut m = tiny_manifest("c", spec);
            m.points[0].index = index;
            m.points[0].key = key;
            m.points[0].label = format!("p{key}");
            m
        };
        let s0 = ShardSpec::new(0, 2).unwrap();
        let slice0 = ShardSpec::new(1, 2).unwrap().slice_of(0, 2).unwrap();
        let slice1 = ShardSpec::new(1, 2).unwrap().slice_of(1, 2).unwrap();
        let mut paths = Vec::new();
        for (spec, points) in [
            (s0, vec![(0u64, 2u64)]),
            (slice0, vec![]),
            (slice1, vec![(1, 3)]),
        ] {
            let mut m = tiny_manifest("c", spec);
            m.points.clear();
            for (index, key) in points {
                let donor = make(spec, index, key);
                m.points.push(donor.points[0].clone());
            }
            let path = dir.join(manifest_file("c", spec));
            m.write(&path).unwrap();
            fs::write(dir.join(store_file("c", spec, BackendKind::Jsonl)), "").unwrap();
            paths.push(path);
        }
        let report = merge_manifests("c", &paths, &dir.join("out")).unwrap();
        assert_eq!(report.shards, 3);
        assert_eq!(report.points, 2);
        assert!(report.missing_points.is_empty());
        let merged = Manifest::read(&report.manifest_path).unwrap();
        assert_eq!(merged.settings.shard, ShardSpec::single());
        assert_eq!(merged.points.len(), 2);

        // An empty-slice manifest does not break discovery either.
        let discovered = discover_shard_specs("c", &dir).unwrap();
        assert_eq!(
            discovered.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![s0, slice0, slice1]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_merge_forgives_missing_points_only() {
        let dir = std::env::temp_dir().join(format!("shard-partial-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Only shard 0 of 2 finished; its manifest enumerates 2 points
        // but records just its own (index 0).
        let m = tiny_manifest("c", ShardSpec::new(0, 2).unwrap());
        let path = dir.join(manifest_file("c", m.settings.shard));
        m.write(&path).unwrap();
        // The surviving shard's store covers its one point (key 2,
        // packets 0..4), so the partial merge must still verify.
        store::write_records(
            &dir.join(store_file("c", m.settings.shard, BackendKind::Jsonl)),
            &[(
                ChunkId {
                    point: 2,
                    first_packet: 0,
                    n_packets: 4,
                },
                hspa_phy::harq::HarqStats {
                    packets: 4,
                    delivered: 4,
                    transmissions: 4,
                    info_bits: 10,
                    failures_at: vec![0; 4],
                },
            )],
        )
        .unwrap();

        let err = merge_manifests_allowing_partial(
            "c",
            std::slice::from_ref(&path),
            &dir.join("out"),
            false,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("not a complete partition"),
            "{err}"
        );

        let report = merge_manifests_allowing_partial(
            "c",
            std::slice::from_ref(&path),
            &dir.join("out"),
            true,
        )
        .unwrap();
        assert_eq!(report.points, 1);
        assert_eq!(report.missing_points, vec![1]);
        assert_eq!(report.missing_points_total, 1);
        // The partial manifest still verifies: listed points are backed.
        let v = verify_with("c", &dir.join("out"), ShardSpec::single(), true).unwrap();
        assert!(v.ok(), "{:?}", v.problems);

        // Duplicates stay fatal even in partial mode.
        let dup = dir.join("dup");
        fs::create_dir_all(&dup).unwrap();
        let m2 = tiny_manifest("c", ShardSpec::new(1, 2).unwrap());
        // Same global index 0 as shard 0's point — a broken partition.
        let path2 = dup.join(manifest_file("c", m2.settings.shard));
        m2.write(&path2).unwrap();
        fs::write(
            dup.join(store_file("c", m2.settings.shard, BackendKind::Jsonl)),
            "",
        )
        .unwrap();
        let err =
            merge_manifests_allowing_partial("c", &[path.clone(), path2], &dir.join("out2"), true)
                .unwrap_err();
        assert!(
            err.to_string().contains("not a disjoint partition"),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_verify_flags_inconsistent_provenance() {
        let dir = std::env::temp_dir().join(format!("shard-strict-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spec = ShardSpec::single();
        let mut m = tiny_manifest("c", spec);
        // 1 chunk ran but 2 claim store provenance; packets agree-ish.
        m.points[0].chunks = 1;
        m.points[0].chunks_from_store = 2;
        m.points[0].packets_from_store = 8;
        m.write(&dir.join(manifest_file("c", spec))).unwrap();
        // A store that covers the point so the base pass is clean.
        store::write_records(
            &dir.join(store_file("c", spec, BackendKind::Jsonl)),
            &[(
                ChunkId {
                    point: 2,
                    first_packet: 0,
                    n_packets: 4,
                },
                hspa_phy::harq::HarqStats {
                    packets: 4,
                    delivered: 4,
                    transmissions: 4,
                    info_bits: 10,
                    failures_at: vec![0; 4],
                },
            )],
        )
        .unwrap();
        assert!(verify("c", &dir, spec).unwrap().ok(), "base pass is clean");
        let strict = verify_with("c", &dir, spec, true).unwrap();
        assert!(!strict.ok());
        assert!(
            strict
                .problems
                .iter()
                .any(|p| p.contains("served from store")),
            "{:?}",
            strict.problems
        );
        // Consistent provenance passes strict.
        m.points[0].chunks_from_store = 1;
        m.points[0].packets_from_store = 4;
        m.write(&dir.join(manifest_file("c", spec))).unwrap();
        assert!(verify_with("c", &dir, spec, true).unwrap().ok());
        // chunks>0 with packets==0 disagrees.
        m.points[0].packets_from_store = 0;
        m.write(&dir.join(manifest_file("c", spec))).unwrap();
        let strict = verify_with("c", &dir, spec, true).unwrap();
        assert!(
            strict.problems.iter().any(|p| p.contains("disagrees")),
            "{:?}",
            strict.problems
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
