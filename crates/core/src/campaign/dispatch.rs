//! Campaign dispatcher: launches the `--shard i/n` legs of a campaign,
//! watches their liveness, steals work from stragglers, and folds the
//! artifacts back into the single-host files.
//!
//! PR 3's sharding made a multi-host campaign *possible*; running one
//! was still an operator loop — start each `--shard i/n` leg by hand,
//! gather the suffixed files, invoke `campaign-admin merge`, re-run
//! anything that died. [`dispatch`] closes that loop for a pool of legs
//! behind a pluggable [`Launcher`]:
//!
//! 1. **Launch.** One leg per shard spec, `0/n .. (n-1)/n`, through
//!    [`Launcher::launch`]. The in-tree [`LocalLauncher`] spawns this
//!    host's figure binary as child processes; an SSH or queue backend
//!    plugs in at the same trait boundary without touching the
//!    coordinator.
//! 2. **Monitor.** Legs are polled for exit and for *progress*: a leg's
//!    primary heartbeat is the monotonic `seq` of its live telemetry
//!    snapshot ([`crate::telemetry::LiveSnapshot`]), which advances once
//!    per scheduling round; when a leg predates telemetry (no snapshot
//!    file), the dispatcher falls back to the (size, mtime) signature of
//!    its shard store and manifest files. A leg that is alive but shows
//!    no progress within the stall timeout is a straggler — it is
//!    killed so its work can be stolen. The heartbeat is chunk-granular
//!    at its finest, so the timeout doubles for a shard after each
//!    stall-kill: a leg that was merely deep inside a long chunk gets
//!    room to finish on its rescue instead of looping to the attempt
//!    cap.
//! 3. **Steal.** When a leg dies (killed, crashed, or stall-killed)
//!    while steal is enabled, the dispatcher immediately relaunches its
//!    shard spec in the freed slot as a *rescue leg*. The rescue leg
//!    resumes the straggler's result store (`--resume` is the campaign
//!    default), so every chunk the straggler already simulated is
//!    served from disk — work is stolen, never redone — and the
//!    deterministic chunk schedule replays the identical ranges before
//!    simulating the remainder.
//! 4. **Merge + verify.** Once every shard has a clean leg, the
//!    existing [`shard::merge`] folds the artifacts into the unsuffixed
//!    store/manifest pair and [`shard::verify`] proves the merged store
//!    can back its manifest. Because the merge normalizes chunk
//!    provenance, the final manifest is **byte-identical** to a
//!    single-host run at the same settings — whether or not any leg was
//!    rescued along the way.
//!
//! Determinism makes the self-healing safe: a packet's RNG stream
//! depends only on its absolute position in the seed tree, and stopping
//! decisions are pure functions of merged statistics, so *which* leg
//! (original or rescue) simulated a chunk cannot change any result.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

use super::shard::{self, MergeReport, ShardSpec, VerifyReport};
use super::store::BackendKind;
use super::DEFAULT_STORE_DIR;
use crate::telemetry::{self, read_snapshot_seq, Counter, EventLog, Field, Gauge};

/// Largest accepted leg count. Every leg is launched concurrently up
/// front (there is no staggering), so an implausible count — a typo'd
/// `--legs` reaching [`dispatch`] — must error instead of fork-bombing
/// the host or the cluster backend.
pub const MAX_LEGS: u32 = 1024;

/// What a poll of a leg observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegStatus {
    /// Still running.
    Running,
    /// Exited; `success` is the process-level verdict (the dispatcher
    /// additionally requires a readable manifest before trusting it).
    Exited {
        /// Whether the leg reported success (exit code 0).
        success: bool,
    },
}

/// A launched leg the dispatcher can poll and kill.
pub trait Leg {
    /// Non-blocking status check.
    fn poll(&mut self) -> io::Result<LegStatus>;
    /// Terminates the leg (used on stall). Must be idempotent and
    /// reap any process-level resources.
    fn kill(&mut self) -> io::Result<()>;
}

/// Launches one leg of a campaign for a shard spec. The trait is the
/// seam where remote backends (SSH, batch queue) slot in: the
/// coordinator only ever sees [`Leg`] handles and the artifact files
/// the legs leave in the campaign directory.
pub trait Launcher {
    /// Starts the leg that runs shard `spec` of the campaign.
    fn launch(&self, spec: ShardSpec) -> io::Result<Box<dyn Leg>>;
}

/// [`Launcher`] backend that spawns a figure binary on this host, one
/// child process per leg, appending `--shard i/n` to the configured
/// argument list.
///
/// The figure binaries write their campaign artifacts under
/// `target/campaign/` **relative to their working directory**, so the
/// launcher pins each child's working directory: point
/// [`LocalLauncher::store_dir`] at the same place and the dispatcher,
/// the legs and the merge all agree on one campaign directory.
#[derive(Debug, Clone)]
pub struct LocalLauncher {
    bin: PathBuf,
    work_dir: PathBuf,
    args: Vec<String>,
    quiet: bool,
}

impl LocalLauncher {
    /// A launcher spawning `bin` with children rooted at `work_dir`.
    pub fn new(bin: impl Into<PathBuf>, work_dir: impl Into<PathBuf>) -> Self {
        Self {
            bin: bin.into(),
            work_dir: work_dir.into(),
            args: Vec::new(),
            quiet: false,
        }
    }

    /// Extra arguments passed to every leg before `--shard`
    /// (`--precision`, `--packets`, …).
    pub fn with_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        self.args = args.into_iter().collect();
        self
    }

    /// Silences leg stdout (tables from `n` legs interleave badly);
    /// stderr stays inherited so failures remain diagnosable.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// The campaign directory the legs will write into — what
    /// [`DispatchConfig::dir`] should be set to.
    pub fn store_dir(&self) -> PathBuf {
        self.work_dir.join(DEFAULT_STORE_DIR)
    }
}

impl Launcher for LocalLauncher {
    fn launch(&self, spec: ShardSpec) -> io::Result<Box<dyn Leg>> {
        fs::create_dir_all(&self.work_dir)?;
        // The child runs with its cwd at `work_dir`, which would
        // re-anchor a relative `--bin` path; resolve it against *this*
        // process's cwd first. Bare names (PATH lookup) have no parent
        // to resolve and pass through.
        let bin = if self.bin.components().count() > 1 {
            fs::canonicalize(&self.bin)?
        } else {
            self.bin.clone()
        };
        let child = Command::new(bin)
            .args(&self.args)
            .arg("--shard")
            .arg(spec.to_string())
            .current_dir(&self.work_dir)
            .stdout(if self.quiet {
                Stdio::null()
            } else {
                Stdio::inherit()
            })
            .stderr(Stdio::inherit())
            .spawn()?;
        Ok(Box::new(ProcessLeg { child }))
    }
}

/// [`Leg`] over a spawned child process.
struct ProcessLeg {
    child: Child,
}

impl Leg for ProcessLeg {
    fn poll(&mut self) -> io::Result<LegStatus> {
        Ok(match self.child.try_wait()? {
            None => LegStatus::Running,
            Some(status) => LegStatus::Exited {
                success: status.success(),
            },
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        // `kill` on an already-dead child is fine; always reap so the
        // straggler cannot linger as a zombie holding the store open.
        let _ = self.child.kill();
        self.child.wait().map(|_| ())
    }
}

/// Knobs of one [`dispatch`] run.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Campaign name (the store/manifest file stem, e.g. `fig6`).
    pub name: String,
    /// Shard count: legs `0/n .. (n-1)/n`. `1` degenerates to a
    /// supervised single-host run (no suffixed files; merge only
    /// canonicalizes).
    pub legs: u32,
    /// The campaign directory legs write into and the merged output
    /// lands in (for [`LocalLauncher`], its
    /// [`store_dir`](LocalLauncher::store_dir)).
    pub dir: PathBuf,
    /// Steal work from dead or stalled legs by relaunching their shard
    /// spec over the surviving store. With stealing off, any leg
    /// failure aborts the dispatch.
    pub steal: bool,
    /// Launch attempts per shard (first launch + rescues). The cap
    /// keeps a deterministically-crashing leg from looping forever.
    pub max_attempts: u32,
    /// Kill a leg whose artifacts have not changed for this long while
    /// it is still running (`None` disables stall detection — a leg
    /// then only fails by exiting non-zero).
    ///
    /// The heartbeat is chunk-granular (a leg only touches its files
    /// when a chunk completes) and late chunks of the doubling schedule
    /// can legitimately run long, so a healthy leg deep inside a big
    /// chunk looks stalled. To keep that from looping a shard to the
    /// attempt cap, the effective timeout **doubles for a shard after
    /// each stall-kill** — a genuinely hung leg is still reaped fast,
    /// while a slow-but-alive one eventually gets room to finish its
    /// chunk. Size the base value generously relative to expected
    /// chunk duration.
    pub stall_timeout: Option<Duration>,
    /// Poll cadence of the monitor loop.
    pub poll_interval: Duration,
    /// Write a dispatcher-side telemetry event log
    /// (`<name>.dispatch.telemetry.jsonl` in [`DispatchConfig::dir`])
    /// recording launches, stall-kills, rescues and merge provenance.
    /// Dispatcher metrics (counters/gauges) are recorded regardless;
    /// this flag only controls the file.
    pub telemetry: bool,
}

impl DispatchConfig {
    /// A config with the production defaults: steal on, 3 attempts per
    /// shard, 10-minute stall timeout, 50 ms polls.
    pub fn new(name: impl Into<String>, legs: u32, dir: impl Into<PathBuf>) -> Self {
        Self {
            name: name.into(),
            legs,
            dir: dir.into(),
            steal: true,
            max_attempts: 3,
            stall_timeout: Some(Duration::from_secs(600)),
            poll_interval: Duration::from_millis(50),
            telemetry: false,
        }
    }
}

/// File name of the dispatcher's own event log — distinct from the leg
/// event logs ([`shard::events_file`]) so a 1-leg campaign's unsuffixed
/// log is never clobbered by its supervisor.
pub fn dispatch_events_file(name: &str) -> String {
    format!("{name}.dispatch.telemetry.jsonl")
}

/// Outcome of a [`dispatch`] run.
#[derive(Debug)]
pub struct DispatchReport {
    /// Shard count dispatched.
    pub legs: u32,
    /// Legs launched in total (`legs` + rescues).
    pub launched: u32,
    /// Shard specs that needed a rescue leg, in rescue order (repeats
    /// mean repeated rescues of the same shard).
    pub rescued: Vec<ShardSpec>,
    /// Of those, shards whose leg was stall-killed by the heartbeat
    /// monitor (as opposed to dying on its own).
    pub stalled: Vec<ShardSpec>,
    /// The final merge.
    pub merge: MergeReport,
    /// Post-merge consistency proof.
    pub verify: VerifyReport,
}

impl DispatchReport {
    /// Human-readable summary (what `campaign-dispatch` prints).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "dispatched {} legs ({} launches, {} rescued, {} stall-killed): \
             {} points, {} chunks merged\n",
            self.legs,
            self.launched,
            self.rescued.len(),
            self.stalled.len(),
            self.merge.points,
            self.merge.chunks,
        );
        if self.merge.store_served_chunks > 0 {
            out.push_str(&format!(
                "  {} chunk executions ({} packets) were resumed from shard stores \
                 (stolen work, not re-simulated)\n",
                self.merge.store_served_chunks, self.merge.store_served_packets
            ));
        }
        out.push_str(&format!(
            "  store:    {}\n  manifest: {}\n",
            self.merge.store_path.display(),
            self.merge.manifest_path.display(),
        ));
        out
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The fallback liveness heartbeat of a leg: the (size, mtime)
/// signature of its store and manifest files. Any change counts as
/// progress — a fresh chunk append, a manifest rewrite, even a
/// truncation. The store is watched under **both** backend file names
/// (`.jsonl` and `.seg`) — the dispatcher does not know which
/// `--store-backend` the leg command line carries, and stat'ing a
/// missing file is cheap. Used when a leg predates telemetry (writes
/// no live snapshot); the primary heartbeat is the snapshot's `seq`.
type ArtifactSignature = [Option<(u64, SystemTime)>; 3];

fn artifact_signature(dir: &Path, name: &str, spec: ShardSpec) -> ArtifactSignature {
    let stat = |file: String| {
        let meta = fs::metadata(dir.join(file)).ok()?;
        Some((meta.len(), meta.modified().ok()?))
    };
    [
        stat(shard::store_file(name, spec, BackendKind::Jsonl)),
        stat(shard::store_file(name, spec, BackendKind::Indexed)),
        stat(shard::manifest_file(name, spec)),
    ]
}

/// Whether a finished leg left a usable shard manifest behind: the file
/// must parse and record the campaign + shard it was launched for. An
/// exit-0 leg without one (wrong binary, wrote elsewhere) is treated as
/// failed so it can be rescued — or reported — instead of feeding a
/// confusing merge error.
fn leg_manifest_ok(dir: &Path, name: &str, spec: ShardSpec) -> bool {
    let path = dir.join(shard::manifest_file(name, spec));
    match super::Manifest::read(&path) {
        Ok(m) => m.name == name && m.settings.shard == spec,
        Err(_) => false,
    }
}

/// One leg under supervision.
struct RunningLeg {
    spec: ShardSpec,
    leg: Box<dyn Leg>,
    signature: ArtifactSignature,
    /// Last observed live-snapshot `seq` of the leg (`None` until the
    /// leg writes one — telemetry-less legs stay `None` forever and are
    /// monitored by `signature` alone).
    last_seq: Option<u64>,
    last_progress: Instant,
}

/// Runs a full dispatched campaign: launch, monitor, steal, merge,
/// verify. See the [module docs](self) for the lifecycle. On success
/// the merged, canonicalized store/manifest pair of
/// [`DispatchConfig::name`] is in [`DispatchConfig::dir`], with the
/// manifest byte-identical to a single-host run at the same settings.
pub fn dispatch(cfg: &DispatchConfig, launcher: &dyn Launcher) -> io::Result<DispatchReport> {
    if cfg.legs == 0 || cfg.legs > MAX_LEGS {
        return Err(invalid(format!(
            "dispatch needs 1..={MAX_LEGS} legs, got {}",
            cfg.legs
        )));
    }
    let specs: Vec<ShardSpec> = (0..cfg.legs)
        .map(|i| ShardSpec::new(i, cfg.legs).map_err(invalid))
        .collect::<io::Result<_>>()?;
    fs::create_dir_all(&cfg.dir)?;
    // Pre-flight: leftovers of a differently-sharded run in the same
    // directory would poison the final merge (mixed `of-N` families);
    // refuse before burning any compute. The scan covers stores as
    // well as manifests — a killed leg leaves only its `.jsonl` (the
    // manifest is written at run end), and that alone marks a stale
    // family. Same-family files are fine — they are exactly what a
    // `--steal` re-dispatch resumes from.
    for entry in fs::read_dir(&cfg.dir)? {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some(spec) = file_name
            .to_str()
            .and_then(|f| shard::artifact_shard_spec(&cfg.name, f))
        else {
            continue;
        };
        if spec.count != cfg.legs {
            return Err(invalid(format!(
                "{}: leftover shard artifact of a {}-leg run; this dispatch uses \
                 {} legs — delete the stale family or dispatch with --legs {}",
                entry.path().display(),
                spec.count,
                cfg.legs,
                spec.count,
            )));
        }
    }

    // Dispatcher-side event log (opt-in). Creation failure degrades to
    // an unlogged dispatch — supervision must not die for observability.
    let events: Option<EventLog> = if cfg.telemetry {
        match EventLog::create(&cfg.dir.join(dispatch_events_file(&cfg.name))) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("dispatch {}: event log create failed: {e}", cfg.name);
                None
            }
        }
    } else {
        None
    };

    fn launch_leg(
        cfg: &DispatchConfig,
        launcher: &dyn Launcher,
        spec: ShardSpec,
        attempts: &mut BTreeMap<u32, u32>,
        running: &mut Vec<RunningLeg>,
        launched: &mut u32,
        events: Option<&EventLog>,
    ) -> io::Result<()> {
        *attempts.entry(spec.index).or_insert(0) += 1;
        *launched += 1;
        let leg = launcher.launch(spec)?;
        telemetry::counter_add(Counter::LegsLaunched, 1);
        telemetry::gauge_add(Gauge::LegsRunning, 1);
        if let Some(log) = events {
            log.emit(
                "leg_launched",
                &[
                    ("shard", Field::Str(&spec.to_string())),
                    (
                        "attempt",
                        Field::U64(u64::from(attempts.get(&spec.index).copied().unwrap_or(1))),
                    ),
                ],
            );
        }
        running.push(RunningLeg {
            spec,
            leg,
            signature: artifact_signature(&cfg.dir, &cfg.name, spec),
            last_seq: read_snapshot_seq(&cfg.dir.join(shard::telemetry_file(&cfg.name, spec))),
            last_progress: Instant::now(),
        });
        Ok(())
    }

    /// A leg left supervision (completed, failed, or was killed).
    fn leg_departed() {
        telemetry::gauge_add(Gauge::LegsRunning, -1);
    }

    let mut report_rescued: Vec<ShardSpec> = Vec::new();
    let mut report_stalled: Vec<ShardSpec> = Vec::new();
    let mut attempts: BTreeMap<u32, u32> = BTreeMap::new();
    // Stall-kills per shard: each one doubles that shard's effective
    // stall timeout (see `DispatchConfig::stall_timeout`).
    let mut stall_kills: BTreeMap<u32, u32> = BTreeMap::new();
    let mut launched = 0u32;
    let mut running: Vec<RunningLeg> = Vec::new();

    for &spec in &specs {
        if let Err(e) = launch_leg(
            cfg,
            launcher,
            spec,
            &mut attempts,
            &mut running,
            &mut launched,
            events.as_ref(),
        ) {
            kill_all(&mut running);
            return Err(e);
        }
    }

    // Monitor loop: poll every leg; a dead leg is either complete
    // (clean exit + usable manifest) or failed. Failed legs are
    // relaunched in place while attempts remain and stealing is on —
    // the freed slot immediately picks the straggler's work back up.
    while !running.is_empty() {
        let mut idx = 0;
        while idx < running.len() {
            let now = Instant::now();
            let r = &mut running[idx];
            let status = match r.leg.poll() {
                Ok(s) => s,
                Err(e) => {
                    kill_all(&mut running);
                    return Err(e);
                }
            };
            let failed = match status {
                LegStatus::Exited { success } => {
                    let complete = success && leg_manifest_ok(&cfg.dir, &cfg.name, r.spec);
                    if complete {
                        if let Some(log) = events.as_ref() {
                            log.emit("leg_done", &[("shard", Field::Str(&r.spec.to_string()))]);
                        }
                        leg_departed();
                        running.remove(idx);
                        continue;
                    }
                    Some(if success {
                        format!("leg {} exited 0 without a usable shard manifest", r.spec)
                    } else {
                        format!("leg {} exited with failure", r.spec)
                    })
                }
                LegStatus::Running => {
                    // Primary heartbeat: the live-snapshot seq, bumped
                    // once per scheduling round by a telemetry-aware
                    // leg. The artifact signature stays as a second
                    // signal (a store append lands mid-round, before
                    // the next snapshot) and as the only signal for
                    // legs that predate telemetry.
                    let seq =
                        read_snapshot_seq(&cfg.dir.join(shard::telemetry_file(&cfg.name, r.spec)));
                    if seq.is_some() && seq != r.last_seq {
                        r.last_seq = seq;
                        r.last_progress = now;
                    }
                    let sig = artifact_signature(&cfg.dir, &cfg.name, r.spec);
                    if sig != r.signature {
                        r.signature = sig;
                        r.last_progress = now;
                    }
                    let kills = stall_kills.get(&r.spec.index).copied().unwrap_or(0);
                    let limit = cfg
                        .stall_timeout
                        .map(|t| t.saturating_mul(1 << kills.min(10)));
                    match limit {
                        Some(limit) if now.duration_since(r.last_progress) > limit => {
                            let _ = r.leg.kill();
                            report_stalled.push(r.spec);
                            *stall_kills.entry(r.spec.index).or_insert(0) += 1;
                            telemetry::counter_add(Counter::StallKills, 1);
                            if let Some(log) = events.as_ref() {
                                log.emit(
                                    "stall_kill",
                                    &[
                                        ("shard", Field::Str(&r.spec.to_string())),
                                        ("timeout_ms", Field::U64(limit.as_millis() as u64)),
                                    ],
                                );
                            }
                            Some(format!(
                                "leg {} stalled (no artifact progress for {:.1}s) and was killed",
                                r.spec,
                                limit.as_secs_f64()
                            ))
                        }
                        _ => None,
                    }
                }
            };
            let Some(why) = failed else {
                idx += 1;
                continue;
            };
            let spec = r.spec;
            leg_departed();
            running.remove(idx);
            let tried = attempts.get(&spec.index).copied().unwrap_or(0);
            if cfg.steal && tried < cfg.max_attempts {
                // Steal: relaunch over the surviving store — resumed
                // chunks are served from disk, never re-simulated.
                report_rescued.push(spec);
                telemetry::counter_add(Counter::RescueAttempts, 1);
                if let Some(log) = events.as_ref() {
                    log.emit(
                        "rescue",
                        &[
                            ("shard", Field::Str(&spec.to_string())),
                            ("why", Field::Str(&why)),
                        ],
                    );
                }
                if let Err(e) = launch_leg(
                    cfg,
                    launcher,
                    spec,
                    &mut attempts,
                    &mut running,
                    &mut launched,
                    events.as_ref(),
                ) {
                    kill_all(&mut running);
                    return Err(e);
                }
            } else {
                // The shard is unrecoverable, so the dispatch as a
                // whole cannot succeed: abort *now* instead of letting
                // the sibling legs burn compute toward a merge that
                // will never happen. Their partial stores survive for
                // a later `--steal` re-dispatch to resume.
                kill_all(&mut running);
                return Err(io::Error::other(format!(
                    "campaign '{}' dispatch failed: {}",
                    cfg.name,
                    if cfg.steal {
                        format!("{why} ({tried} attempts — giving up)")
                    } else {
                        format!("{why} (stealing disabled — re-dispatch with --steal to recover)")
                    }
                )));
            }
        }
        if !running.is_empty() {
            std::thread::sleep(cfg.poll_interval);
        }
    }

    // Every shard has a clean leg: fold the artifacts back into the
    // single-host files and prove the merged store backs its manifest.
    let single = ShardSpec::single();
    let merge = if cfg.legs == 1 {
        // Degenerate partition: the lone leg already wrote unsuffixed
        // files; merging them in place canonicalizes store order and
        // normalizes provenance, exactly like the n-way path.
        let manifest = cfg.dir.join(shard::manifest_file(&cfg.name, single));
        shard::merge_manifests(&cfg.name, &[manifest], &cfg.dir)?
    } else {
        shard::merge(&cfg.name, &cfg.dir, &cfg.dir)?
    };
    if let Some(log) = events.as_ref() {
        // Merge provenance: where the merged chunk set actually came
        // from — how much was stolen/resumed rather than re-simulated.
        log.emit(
            "merge",
            &[
                ("shards", Field::U64(merge.shards as u64)),
                ("points", Field::U64(merge.points as u64)),
                ("chunks", Field::U64(merge.chunks as u64)),
                (
                    "duplicate_chunks",
                    Field::U64(merge.duplicate_chunks as u64),
                ),
                ("store_served_chunks", Field::U64(merge.store_served_chunks)),
                (
                    "store_served_packets",
                    Field::U64(merge.store_served_packets),
                ),
                ("rescued", Field::U64(report_rescued.len() as u64)),
                ("stalled", Field::U64(report_stalled.len() as u64)),
            ],
        );
    }
    let verify = shard::verify(&cfg.name, &cfg.dir, single)?;
    if !verify.ok() {
        return Err(invalid(format!(
            "merged campaign '{}' fails verification: {}",
            cfg.name,
            verify.problems.join("; ")
        )));
    }
    Ok(DispatchReport {
        legs: cfg.legs,
        launched,
        rescued: report_rescued,
        stalled: report_stalled,
        merge,
        verify,
    })
}

/// Best-effort cleanup on an error path: no leg may outlive a failed
/// dispatch and keep appending to the stores.
fn kill_all(running: &mut Vec<RunningLeg>) {
    telemetry::gauge_add(Gauge::LegsRunning, -(running.len() as i64));
    for r in running.iter_mut() {
        let _ = r.leg.kill();
    }
    running.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::manifest::{Manifest, PointRecord};
    use crate::campaign::store::{self, ChunkId};
    use crate::campaign::CampaignSettings;
    use hspa_phy::harq::HarqStats;
    use std::cell::RefCell;
    use std::collections::{HashMap, VecDeque};

    const NAME: &str = "mock";

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dispatch-test-{}-{tag}", std::process::id()))
    }

    fn tiny_config(tag: &str, legs: u32) -> DispatchConfig {
        let dir = temp_dir(tag);
        let _ = fs::remove_dir_all(&dir);
        DispatchConfig {
            stall_timeout: None,
            poll_interval: Duration::from_millis(1),
            ..DispatchConfig::new(NAME, legs, dir)
        }
    }

    /// Writes the artifacts a healthy leg of `spec` would leave: a
    /// 2-point campaign (keys 0 and 1) with one 4-packet chunk per
    /// owned point.
    fn write_leg_artifacts(dir: &Path, spec: ShardSpec) {
        let mut m = Manifest::new(
            NAME,
            CampaignSettings {
                shard: spec,
                ..Default::default()
            },
        );
        m.points_enumerated = 2;
        let mut records = Vec::new();
        for key in [0u64, 1] {
            if !spec.owns(key) {
                continue;
            }
            m.points.push(PointRecord {
                index: key,
                key,
                label: format!("p{key}"),
                snr_db: 1.0,
                packets: 4,
                max_packets: 4,
                bler: 0.0,
                ci: (0.0, 0.5),
                rel_half_width: 1.0,
                converged: true,
                chunks: 1,
                chunks_from_store: 0,
                packets_from_store: 0,
                tier: hspa_phy::turbo::AccuracyTier::Exact,
            });
            records.push((
                ChunkId {
                    point: key,
                    first_packet: 0,
                    n_packets: 4,
                },
                HarqStats {
                    packets: 4,
                    delivered: 4,
                    transmissions: 4,
                    info_bits: 100,
                    failures_at: vec![0; 4],
                },
            ));
        }
        fs::create_dir_all(dir).unwrap();
        store::write_records(
            &dir.join(shard::store_file(NAME, spec, BackendKind::Jsonl)),
            &records,
        )
        .unwrap();
        m.write(&dir.join(shard::manifest_file(NAME, spec)))
            .unwrap();
    }

    /// What a scripted mock leg does when polled.
    #[derive(Clone, Copy)]
    enum Behavior {
        /// Write valid artifacts, exit 0.
        Complete,
        /// Exit non-zero without artifacts.
        Fail,
        /// Exit 0 without writing anything (dispatcher must distrust).
        LieAboutSuccess,
        /// Never exit, never touch a file (stall fodder).
        Hang,
        /// Look stalled for the given wall-clock time (no file
        /// activity), then complete — a leg deep inside a long chunk.
        CompleteAfter(Duration),
        /// Never touch store/manifest, but bump the live telemetry
        /// snapshot's seq on every poll; complete after the given time.
        /// Models a telemetry-aware leg whose store writes are sparse.
        HeartbeatThenComplete(Duration),
    }

    struct MockLeg {
        spec: ShardSpec,
        dir: PathBuf,
        behavior: Behavior,
        started: Instant,
        seq: u64,
    }

    impl Leg for MockLeg {
        fn poll(&mut self) -> io::Result<LegStatus> {
            Ok(match self.behavior {
                Behavior::Complete => {
                    write_leg_artifacts(&self.dir, self.spec);
                    LegStatus::Exited { success: true }
                }
                Behavior::Fail => LegStatus::Exited { success: false },
                Behavior::LieAboutSuccess => LegStatus::Exited { success: true },
                Behavior::Hang => LegStatus::Running,
                Behavior::CompleteAfter(after) => {
                    if self.started.elapsed() < after {
                        LegStatus::Running
                    } else {
                        write_leg_artifacts(&self.dir, self.spec);
                        LegStatus::Exited { success: true }
                    }
                }
                Behavior::HeartbeatThenComplete(after) => {
                    if self.started.elapsed() < after {
                        self.seq += 1;
                        let snap = crate::telemetry::LiveSnapshot {
                            seq: self.seq,
                            elapsed_ms: self.started.elapsed().as_millis() as u64,
                            done: false,
                            points_total: 1,
                            points_converged: 0,
                            packets_realized: 0,
                            packets_from_store: 0,
                            packets_simulated: 0,
                            packets_per_sec: 0.0,
                            store_chunk_hits: 0,
                            store_chunk_misses: 0,
                            points: Vec::new(),
                        };
                        snap.write_atomic(&self.dir.join(shard::telemetry_file(NAME, self.spec)))
                            .unwrap();
                        LegStatus::Running
                    } else {
                        write_leg_artifacts(&self.dir, self.spec);
                        LegStatus::Exited { success: true }
                    }
                }
            })
        }

        fn kill(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Scripted launcher: each shard index pops its next behavior
    /// (defaulting to `Complete`), so tests can fail the first attempt
    /// and succeed the rescue.
    struct MockLauncher {
        dir: PathBuf,
        plans: RefCell<HashMap<u32, VecDeque<Behavior>>>,
        launches: RefCell<Vec<ShardSpec>>,
    }

    impl MockLauncher {
        fn new(dir: &Path, plans: &[(u32, &[Behavior])]) -> Self {
            Self {
                dir: dir.to_path_buf(),
                plans: RefCell::new(
                    plans
                        .iter()
                        .map(|(i, b)| (*i, b.iter().copied().collect()))
                        .collect(),
                ),
                launches: RefCell::new(Vec::new()),
            }
        }
    }

    impl Launcher for MockLauncher {
        fn launch(&self, spec: ShardSpec) -> io::Result<Box<dyn Leg>> {
            self.launches.borrow_mut().push(spec);
            let behavior = self
                .plans
                .borrow_mut()
                .get_mut(&spec.index)
                .and_then(VecDeque::pop_front)
                .unwrap_or(Behavior::Complete);
            Ok(Box::new(MockLeg {
                spec,
                dir: self.dir.clone(),
                behavior,
                started: Instant::now(),
                seq: 0,
            }))
        }
    }

    #[test]
    fn healthy_legs_merge_and_verify() {
        let cfg = tiny_config("healthy", 2);
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let report = dispatch(&cfg, &launcher).expect("dispatch succeeds");
        assert_eq!(report.launched, 2);
        assert!(report.rescued.is_empty() && report.stalled.is_empty());
        assert_eq!(report.merge.points, 2);
        assert!(report.verify.ok());
        assert!(cfg.dir.join("mock.manifest.json").exists());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn failed_leg_without_steal_aborts() {
        let cfg = DispatchConfig {
            steal: false,
            ..tiny_config("nosteal", 2)
        };
        let launcher = MockLauncher::new(&cfg.dir, &[(1, &[Behavior::Fail])]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("--steal"), "{err}");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn unrecoverable_shard_aborts_siblings_immediately() {
        // Leg 0 would run forever; leg 1 fails with stealing off. The
        // dispatch is doomed at that instant and must return (killing
        // leg 0) instead of waiting on a merge that can never happen —
        // if this regresses, the test hangs rather than fails.
        let cfg = DispatchConfig {
            steal: false,
            stall_timeout: None,
            ..tiny_config("abort", 2)
        };
        let launcher =
            MockLauncher::new(&cfg.dir, &[(0, &[Behavior::Hang]), (1, &[Behavior::Fail])]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leg 1/2"), "{err}");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn failed_leg_is_rescued_when_stealing() {
        let cfg = tiny_config("rescue", 2);
        let launcher = MockLauncher::new(&cfg.dir, &[(1, &[Behavior::Fail, Behavior::Complete])]);
        let report = dispatch(&cfg, &launcher).expect("rescue leg completes the shard");
        assert_eq!(report.launched, 3);
        assert_eq!(report.rescued, vec![ShardSpec::new(1, 2).unwrap()]);
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn lying_success_without_manifest_is_rescued() {
        let cfg = tiny_config("liar", 2);
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[(0, &[Behavior::LieAboutSuccess, Behavior::Complete])],
        );
        let report = dispatch(&cfg, &launcher).expect("manifest check catches the lie");
        assert_eq!(report.rescued, vec![ShardSpec::new(0, 2).unwrap()]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn stalled_leg_is_killed_and_rescued() {
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(30)),
            ..tiny_config("stall", 2)
        };
        let launcher = MockLauncher::new(&cfg.dir, &[(0, &[Behavior::Hang, Behavior::Complete])]);
        let report = dispatch(&cfg, &launcher).expect("straggler is stall-killed and stolen");
        let spec = ShardSpec::new(0, 2).unwrap();
        assert_eq!(report.stalled, vec![spec]);
        assert_eq!(report.rescued, vec![spec]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn stall_timeout_escalates_for_slow_but_healthy_legs() {
        // The heartbeat is chunk-granular: a leg 40 ms into a long
        // chunk looks stalled at a 25 ms timeout and is killed — but
        // the rescue runs at a doubled (50 ms) timeout and must be
        // allowed to finish instead of looping to the attempt cap.
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(25)),
            ..tiny_config("escalate", 2)
        };
        let slow = Behavior::CompleteAfter(Duration::from_millis(40));
        let launcher = MockLauncher::new(&cfg.dir, &[(0, &[slow, slow])]);
        let report = dispatch(&cfg, &launcher).expect("doubled timeout lets the chunk finish");
        let spec = ShardSpec::new(0, 2).unwrap();
        assert_eq!(report.stalled, vec![spec], "exactly one stall-kill");
        assert_eq!(report.rescued, vec![spec]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn snapshot_seq_heartbeat_counts_as_progress() {
        // The leg never touches store or manifest for 80 ms — far past
        // the 25 ms stall timeout — but bumps its live-snapshot seq on
        // every poll. The telemetry heartbeat must keep it alive (the
        // size+mtime fallback alone would stall-kill it, as
        // `stall_timeout_escalates_for_slow_but_healthy_legs` shows).
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(25)),
            ..tiny_config("seq-heartbeat", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[(
                0,
                &[Behavior::HeartbeatThenComplete(Duration::from_millis(80))],
            )],
        );
        let report = dispatch(&cfg, &launcher).expect("heartbeating leg survives");
        assert!(report.stalled.is_empty(), "no stall-kill: {report:?}");
        assert!(report.rescued.is_empty());
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn dispatcher_event_log_records_lifecycle() {
        let cfg = DispatchConfig {
            telemetry: true,
            ..tiny_config("events", 2)
        };
        let launcher = MockLauncher::new(&cfg.dir, &[(1, &[Behavior::Fail, Behavior::Complete])]);
        dispatch(&cfg, &launcher).expect("dispatch succeeds");
        let log = fs::read_to_string(cfg.dir.join(dispatch_events_file(NAME))).unwrap();
        for needle in ["leg_launched", "rescue", "leg_done", "\"event\": \"merge\""] {
            assert!(log.contains(needle), "missing {needle} in:\n{log}");
        }
        // Every line is a parseable flat JSON object with a seq field.
        for line in log.lines() {
            assert!(line.starts_with("{\"seq\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn rescue_attempts_are_capped() {
        let cfg = DispatchConfig {
            max_attempts: 2,
            ..tiny_config("cap", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[(1, &[Behavior::Fail, Behavior::Fail, Behavior::Fail])],
        );
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("giving up"), "{err}");
        assert_eq!(
            launcher.launches.borrow().len(),
            3,
            "2 attempts for shard 1"
        );
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn single_leg_dispatch_canonicalizes_in_place() {
        let cfg = tiny_config("single", 1);
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let report = dispatch(&cfg, &launcher).expect("degenerate 1-leg dispatch");
        assert_eq!(report.merge.points, 2);
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leftover_foreign_family_is_refused_up_front() {
        let cfg = tiny_config("family", 2);
        write_leg_artifacts(&cfg.dir, ShardSpec::new(0, 3).unwrap());
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leftover shard artifact"), "{err}");
        assert!(launcher.launches.borrow().is_empty(), "no leg was started");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leftover_foreign_store_without_manifest_is_refused_too() {
        // A killed leg leaves only its `.jsonl` (the manifest is
        // written at run end) — a store alone must still mark the
        // stale family.
        let cfg = tiny_config("family-store", 2);
        fs::create_dir_all(&cfg.dir).unwrap();
        let stale = shard::store_file(NAME, ShardSpec::new(1, 3).unwrap(), BackendKind::Jsonl);
        fs::write(cfg.dir.join(stale), "").unwrap();
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leftover shard artifact"), "{err}");
        assert!(launcher.launches.borrow().is_empty(), "no leg was started");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leg_count_is_range_checked() {
        for legs in [0, MAX_LEGS + 1] {
            let cfg = tiny_config(&format!("range-{legs}"), legs);
            let launcher = MockLauncher::new(&cfg.dir, &[]);
            let err = dispatch(&cfg, &launcher).unwrap_err();
            assert!(err.to_string().contains("legs"), "{err}");
            assert!(launcher.launches.borrow().is_empty(), "nothing launched");
        }
    }
}
