//! Campaign dispatcher: launches the `--shard i/n` legs of a campaign,
//! watches their liveness, steals work from stragglers, and folds the
//! artifacts back into the single-host files.
//!
//! PR 3's sharding made a multi-host campaign *possible*; running one
//! was still an operator loop — start each `--shard i/n` leg by hand,
//! gather the suffixed files, invoke `campaign-admin merge`, re-run
//! anything that died. [`dispatch`] closes that loop for a pool of legs
//! behind a pluggable [`Launcher`]:
//!
//! 1. **Launch.** One leg per shard spec, `0/n .. (n-1)/n`, through
//!    [`Launcher::launch`]. The in-tree [`LocalLauncher`] spawns this
//!    host's figure binary as child processes; [`CommandLauncher`]
//!    generalizes the same seam to an arbitrary command template —
//!    `ssh {host} {cmd}` fans legs out over a host pool (`sh -c {cmd}`
//!    exercises the identical path locally), with an optional pull
//!    template that fetches remote artifacts back after each leg. A
//!    launch that fails with an I/O error is not fatal: it re-enters
//!    the same attempt accounting and backoff as a dead leg.
//! 2. **Monitor.** Legs are polled for exit and for *progress*: a leg's
//!    primary heartbeat is the monotonic `seq` of its live telemetry
//!    snapshot ([`crate::telemetry::LiveSnapshot`]), which advances once
//!    per scheduling round; when a leg predates telemetry (no snapshot
//!    file), the dispatcher falls back to the (size, mtime) signature of
//!    its shard store and manifest files. A leg that is alive but shows
//!    no progress within the stall timeout is a straggler — it is
//!    killed so its work can be stolen. The heartbeat is chunk-granular
//!    at its finest, so the timeout doubles for a shard after each
//!    stall-kill: a leg that was merely deep inside a long chunk gets
//!    room to finish on its rescue instead of looping to the attempt
//!    cap.
//! 3. **Steal.** When a leg dies (killed, crashed, or stall-killed)
//!    while steal is enabled, the dispatcher immediately relaunches its
//!    shard spec in the freed slot as a *rescue leg*. The rescue leg
//!    resumes the straggler's result store (`--resume` is the campaign
//!    default), so every chunk the straggler already simulated is
//!    served from disk — work is stolen, never redone — and the
//!    deterministic chunk schedule replays the identical ranges before
//!    simulating the remainder. Relaunches wait out a
//!    deterministically-jittered exponential [`BackoffPolicy`] so a
//!    flapping host is not hammered. When two or more dispatch slots
//!    sit idle, a dead shard is *re-sharded* instead of rescued 1-for-1:
//!    its surviving store is partitioned into sub-shard slices
//!    ([`shard::partition_store_into_slices`]) that resume in parallel
//!    across the idle slots. A shard that still fails after
//!    [`DispatchConfig::max_attempts`] launches is **abandoned**, not
//!    allowed to sink the whole dispatch.
//! 4. **Merge + verify.** Once every surviving shard has a clean leg,
//!    the shard merge folds the artifacts into the unsuffixed
//!    store/manifest pair and [`shard::verify`] proves the merged store
//!    can back its manifest. Because the merge normalizes chunk
//!    provenance, the final manifest is **byte-identical** to a
//!    single-host run at the same settings — whether or not any leg was
//!    rescued or re-sharded along the way. If shards were abandoned the
//!    survivors still merge into a *partial* manifest that lists every
//!    finished point and passes verification; the report names the
//!    missing points and `campaign-dispatch` exits non-zero.
//!
//! Determinism makes the self-healing safe: a packet's RNG stream
//! depends only on its absolute position in the seed tree, and stopping
//! decisions are pure functions of merged statistics, so *which* leg
//! (original or rescue) simulated a chunk cannot change any result.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant, SystemTime};

use super::hash::fnv1a64;
use super::shard::{self, MergeReport, ShardSpec, VerifyReport};
use super::store::BackendKind;
use super::DEFAULT_STORE_DIR;
use crate::failpoint;
use crate::telemetry::{self, read_snapshot_seq, Counter, EventLog, Field, Gauge};

/// Largest accepted leg count. Every leg is launched concurrently up
/// front (there is no staggering), so an implausible count — a typo'd
/// `--legs` reaching [`dispatch`] — must error instead of fork-bombing
/// the host or the cluster backend.
pub const MAX_LEGS: u32 = 1024;

/// What a poll of a leg observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegStatus {
    /// Still running.
    Running,
    /// Exited; `success` is the process-level verdict (the dispatcher
    /// additionally requires a readable manifest before trusting it).
    Exited {
        /// Whether the leg reported success (exit code 0).
        success: bool,
    },
}

/// A launched leg the dispatcher can poll and kill.
pub trait Leg {
    /// Non-blocking status check.
    fn poll(&mut self) -> io::Result<LegStatus>;
    /// Terminates the leg (used on stall). Must be idempotent and
    /// reap any process-level resources.
    fn kill(&mut self) -> io::Result<()>;
}

/// Launches one leg of a campaign for a shard spec. The trait is the
/// seam where remote backends (SSH, batch queue) slot in: the
/// coordinator only ever sees [`Leg`] handles and the artifact files
/// the legs leave in the campaign directory.
pub trait Launcher {
    /// Starts the leg that runs shard `spec` of the campaign.
    ///
    /// `attempt` is 1-based across the shard's lifetime (first launch
    /// is 1, each rescue counts up). Backends forward it into the leg's
    /// environment so seeded failpoints can tell an original launch
    /// from its rescues and chaos schedules stay replayable.
    fn launch(&self, spec: ShardSpec, attempt: u32) -> io::Result<Box<dyn Leg>>;
}

/// [`Launcher`] backend that spawns a figure binary on this host, one
/// child process per leg, appending `--shard i/n` to the configured
/// argument list.
///
/// The figure binaries write their campaign artifacts under
/// `target/campaign/` **relative to their working directory**, so the
/// launcher pins each child's working directory: point
/// [`LocalLauncher::store_dir`] at the same place and the dispatcher,
/// the legs and the merge all agree on one campaign directory.
#[derive(Debug, Clone)]
pub struct LocalLauncher {
    bin: PathBuf,
    work_dir: PathBuf,
    args: Vec<String>,
    quiet: bool,
    chaos_seed: Option<u64>,
}

impl LocalLauncher {
    /// A launcher spawning `bin` with children rooted at `work_dir`.
    pub fn new(bin: impl Into<PathBuf>, work_dir: impl Into<PathBuf>) -> Self {
        Self {
            bin: bin.into(),
            work_dir: work_dir.into(),
            args: Vec::new(),
            quiet: false,
            chaos_seed: None,
        }
    }

    /// Extra arguments passed to every leg before `--shard`
    /// (`--precision`, `--packets`, …).
    pub fn with_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        self.args = args.into_iter().collect();
        self
    }

    /// Silences leg stdout (tables from `n` legs interleave badly);
    /// stderr stays inherited so failures remain diagnosable.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Arms every launched leg's failpoints with this chaos seed (via
    /// the [`failpoint::SEED_ENV`] / [`failpoint::ATTEMPT_ENV`]
    /// environment, never the dispatcher's own process environment).
    pub fn with_chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// The campaign directory the legs will write into — what
    /// [`DispatchConfig::dir`] should be set to.
    pub fn store_dir(&self) -> PathBuf {
        self.work_dir.join(DEFAULT_STORE_DIR)
    }
}

impl Launcher for LocalLauncher {
    fn launch(&self, spec: ShardSpec, attempt: u32) -> io::Result<Box<dyn Leg>> {
        fs::create_dir_all(&self.work_dir)?;
        // The child runs with its cwd at `work_dir`, which would
        // re-anchor a relative `--bin` path; resolve it against *this*
        // process's cwd first. Bare names (PATH lookup) have no parent
        // to resolve and pass through.
        let bin = if self.bin.components().count() > 1 {
            fs::canonicalize(&self.bin)?
        } else {
            self.bin.clone()
        };
        let mut cmd = Command::new(bin);
        cmd.args(&self.args)
            .arg("--shard")
            .arg(spec.to_string())
            .current_dir(&self.work_dir)
            .stdout(if self.quiet {
                Stdio::null()
            } else {
                Stdio::inherit()
            })
            .stderr(Stdio::inherit());
        if let Some(seed) = self.chaos_seed {
            cmd.env(failpoint::SEED_ENV, seed.to_string());
            cmd.env(failpoint::ATTEMPT_ENV, attempt.to_string());
        }
        let child = cmd.spawn()?;
        Ok(Box::new(ProcessLeg { child }))
    }
}

/// [`Leg`] over a spawned child process.
struct ProcessLeg {
    child: Child,
}

impl Leg for ProcessLeg {
    fn poll(&mut self) -> io::Result<LegStatus> {
        Ok(match self.child.try_wait()? {
            None => LegStatus::Running,
            Some(status) => LegStatus::Exited {
                success: status.success(),
            },
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        // SIGKILL then reap, so the straggler cannot linger as a
        // zombie holding the store open. Idempotent by construction:
        // `kill` on an exited child is a benign error we ignore, and
        // `wait` after the first reap returns the cached exit status,
        // so any number of repeat calls stay `Ok`.
        let _ = self.child.kill();
        self.child.wait()?;
        Ok(())
    }
}

/// Exponential-backoff schedule for relaunching a failed shard.
///
/// The `n`-th relaunch of a shard waits `base · factor^(n-1)`, capped
/// at `max`, then scaled by a factor in `[1, 1 + jitter)` drawn from a
/// hash of the shard spec and attempt number — deterministic (a chaos
/// schedule replays exactly) yet de-synchronized (a fleet of legs that
/// died together does not relaunch in lockstep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first relaunch.
    pub base: Duration,
    /// Multiplier per additional prior attempt.
    pub factor: f64,
    /// Ceiling on the un-jittered delay.
    pub max: Duration,
    /// Jitter fraction added on top of the capped delay.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    /// 500 ms base, doubling, 30 s cap, 25 % jitter.
    fn default() -> Self {
        Self {
            base: Duration::from_millis(500),
            factor: 2.0,
            max: Duration::from_secs(30),
            jitter: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// No waiting at all (unit tests, impatient local reruns).
    pub fn none() -> Self {
        Self {
            base: Duration::ZERO,
            factor: 1.0,
            max: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Delay before the next launch of `spec` when `prior_attempts`
    /// launches have already been consumed. The first launch
    /// (`prior_attempts == 0`) is always immediate.
    pub fn delay(&self, prior_attempts: u32, spec: ShardSpec) -> Duration {
        if prior_attempts == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = (prior_attempts - 1).min(20) as i32;
        let capped = (self.base.as_secs_f64() * self.factor.powi(exp)).min(self.max.as_secs_f64());
        let h = fnv1a64(format!("{spec}#{prior_attempts}").as_bytes());
        let unit = (h % 1024) as f64 / 1024.0;
        Duration::from_secs_f64(capped * (1.0 + self.jitter * unit))
    }
}

impl std::str::FromStr for BackoffPolicy {
    type Err = String;

    /// Parses `BASE_MS:FACTOR:MAX_MS` (e.g. `500:2:30000`); the jitter
    /// fraction keeps its default.
    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [base, factor, max] = parts.as_slice() else {
            return Err(format!("backoff spec '{s}' must be BASE_MS:FACTOR:MAX_MS"));
        };
        let base_ms: u64 = base
            .parse()
            .map_err(|_| format!("bad backoff base '{base}' (milliseconds)"))?;
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("bad backoff factor '{factor}'"))?;
        let max_ms: u64 = max
            .parse()
            .map_err(|_| format!("bad backoff max '{max}' (milliseconds)"))?;
        if factor.is_nan() || factor < 1.0 {
            return Err(format!("backoff factor must be >= 1, got {factor}"));
        }
        Ok(Self {
            base: Duration::from_millis(base_ms),
            factor,
            max: Duration::from_millis(max_ms),
            ..Self::default()
        })
    }
}

/// [`Launcher`] backend that starts each leg through an arbitrary
/// command template — the remote-execution seam, with no new trait
/// impl per transport.
///
/// The template is a whitespace-split argv in which two placeholders
/// are substituted at every launch:
///
/// * `{host}` — the next host of [`with_hosts`](Self::with_hosts),
///   assigned round-robin, so `ssh {host} {cmd}` fans legs out across
///   a pool;
/// * `{cmd}` — one shell-quoted string that changes into the working
///   directory, exports the chaos environment when a seed is armed,
///   and runs the figure binary with `--shard i/n[:j/m]` appended.
///
/// `ssh {host} {cmd}` is the canonical remote template; the test suite
/// uses `sh -c {cmd}` to drive the exact same code path locally. An
/// optional *pull template* (same `{host}` placeholder) runs once per
/// leg after it exits **or** is killed — the hook where a remote
/// backend rsyncs shard artifacts back into the dispatcher's campaign
/// directory before the merge.
#[derive(Debug)]
pub struct CommandLauncher {
    template: Vec<String>,
    hosts: Vec<String>,
    next_host: AtomicUsize,
    pull: Vec<String>,
    bin: String,
    work_dir: PathBuf,
    args: Vec<String>,
    chaos_seed: Option<u64>,
}

impl CommandLauncher {
    /// A launcher running `template` per leg, where the leg command
    /// `cd`s into `work_dir` and executes `bin`.
    pub fn new(template: &str, bin: impl Into<String>, work_dir: impl Into<PathBuf>) -> Self {
        Self {
            template: template.split_whitespace().map(str::to_string).collect(),
            hosts: Vec::new(),
            next_host: AtomicUsize::new(0),
            pull: Vec::new(),
            bin: bin.into(),
            work_dir: work_dir.into(),
            args: Vec::new(),
            chaos_seed: None,
        }
    }

    /// Comma-separated host pool substituted into `{host}` round-robin.
    pub fn with_hosts(mut self, hosts: &str) -> Self {
        self.hosts = hosts
            .split(',')
            .map(str::trim)
            .filter(|h| !h.is_empty())
            .map(str::to_string)
            .collect();
        self
    }

    /// Pull-back template run after a leg exits or is killed
    /// (`rsync {host}:path path`-shaped; `{host}` is substituted).
    pub fn with_pull(mut self, template: &str) -> Self {
        self.pull = template.split_whitespace().map(str::to_string).collect();
        self
    }

    /// Extra arguments passed to every leg before `--shard`.
    pub fn with_args(mut self, args: impl IntoIterator<Item = String>) -> Self {
        self.args = args.into_iter().collect();
        self
    }

    /// Arms every leg's failpoints with this chaos seed through the
    /// command's environment prefix.
    pub fn with_chaos_seed(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    fn next_host(&self) -> String {
        if self.hosts.is_empty() {
            return String::new();
        }
        let i = self.next_host.fetch_add(1, Ordering::Relaxed);
        self.hosts[i % self.hosts.len()].clone()
    }

    /// The single shell command a leg runs remotely: working directory,
    /// chaos environment, binary, arguments, shard spec.
    fn leg_command(&self, spec: ShardSpec, attempt: u32) -> String {
        let mut cmd = format!(
            "cd {} &&",
            shell_quote(&self.work_dir.display().to_string())
        );
        if let Some(seed) = self.chaos_seed {
            cmd.push_str(&format!(
                " {}={seed} {}={attempt}",
                failpoint::SEED_ENV,
                failpoint::ATTEMPT_ENV
            ));
        }
        cmd.push(' ');
        cmd.push_str(&shell_quote(&self.bin));
        for arg in &self.args {
            cmd.push(' ');
            cmd.push_str(&shell_quote(arg));
        }
        cmd.push_str(" --shard ");
        cmd.push_str(&shell_quote(&spec.to_string()));
        cmd
    }
}

/// Substitutes `{host}` and `{cmd}` into a whitespace-split template.
fn expand_template(template: &[String], host: &str, cmd: Option<&str>) -> Vec<String> {
    template
        .iter()
        .map(|tok| {
            tok.replace("{host}", host)
                .replace("{cmd}", cmd.unwrap_or(""))
        })
        .collect()
}

/// Quotes `s` for POSIX `sh`: plain tokens pass through, anything else
/// is wrapped in single quotes with embedded quotes escaped.
fn shell_quote(s: &str) -> String {
    let plain = |c: char| c.is_ascii_alphanumeric() || "-_./=:@,".contains(c);
    if !s.is_empty() && s.chars().all(plain) {
        return s.to_string();
    }
    format!("'{}'", s.replace('\'', r"'\''"))
}

impl Launcher for CommandLauncher {
    fn launch(&self, spec: ShardSpec, attempt: u32) -> io::Result<Box<dyn Leg>> {
        if self.template.is_empty() {
            return Err(invalid("empty launch template"));
        }
        // For local transports (`sh -c {cmd}`) the work dir must exist
        // before the cd; for remote ones creating it here is harmless.
        fs::create_dir_all(&self.work_dir)?;
        let host = self.next_host();
        let cmd = self.leg_command(spec, attempt);
        let argv = expand_template(&self.template, &host, Some(&cmd));
        // lint: allow(no-unwrap, infallible: expand_template always emits at least the program token and emptiness is rejected above)
        let (program, rest) = argv.split_first().expect("checked non-empty");
        let child = Command::new(program)
            .args(rest)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        let pull = if self.pull.is_empty() {
            None
        } else {
            Some(expand_template(&self.pull, &host, None))
        };
        Ok(Box::new(CommandLeg { child, pull }))
    }
}

/// [`Leg`] over a templated launch: the child is the transport process
/// (`ssh`, `sh`); the pull template runs exactly once, on exit or kill,
/// to fetch the leg's artifacts.
struct CommandLeg {
    child: Child,
    pull: Option<Vec<String>>,
}

impl CommandLeg {
    /// Best-effort artifact pull-back; `take` makes it once-only. A
    /// failed pull is only logged — the missing-manifest check already
    /// routes the leg into the rescue path.
    fn pull_artifacts(&mut self) {
        let Some(argv) = self.pull.take() else { return };
        let Some((program, rest)) = argv.split_first() else {
            return;
        };
        match Command::new(program)
            .args(rest)
            .stdout(Stdio::null())
            .status()
        {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("dispatch: artifact pull {argv:?} exited {status}"),
            Err(e) => eprintln!("dispatch: artifact pull {argv:?} failed: {e}"),
        }
    }
}

impl Leg for CommandLeg {
    fn poll(&mut self) -> io::Result<LegStatus> {
        Ok(match self.child.try_wait()? {
            None => LegStatus::Running,
            Some(status) => {
                self.pull_artifacts();
                LegStatus::Exited {
                    success: status.success(),
                }
            }
        })
    }

    fn kill(&mut self) -> io::Result<()> {
        let _ = self.child.kill();
        self.child.wait()?;
        self.pull_artifacts();
        Ok(())
    }
}

/// Knobs of one [`dispatch`] run.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Campaign name (the store/manifest file stem, e.g. `fig6`).
    pub name: String,
    /// Shard count: legs `0/n .. (n-1)/n`. `1` degenerates to a
    /// supervised single-host run (no suffixed files; merge only
    /// canonicalizes).
    pub legs: u32,
    /// The campaign directory legs write into and the merged output
    /// lands in (for [`LocalLauncher`], its
    /// [`store_dir`](LocalLauncher::store_dir)).
    pub dir: PathBuf,
    /// Steal work from dead or stalled legs by relaunching their shard
    /// spec over the surviving store. With stealing off, any leg
    /// failure aborts the dispatch.
    pub steal: bool,
    /// Launch attempts per shard (first launch + rescues). The cap
    /// keeps a deterministically-crashing leg from looping forever; a
    /// shard that exhausts it is abandoned and the survivors merge
    /// into a partial manifest instead of aborting the dispatch.
    pub max_attempts: u32,
    /// Relaunch schedule: each retry of a shard waits exponentially
    /// longer (deterministically jittered) before its next launch.
    pub backoff: BackoffPolicy,
    /// Elastic re-sharding: when a shard dies while at least two
    /// dispatch slots are idle and it is not already a slice, split
    /// its surviving store into sub-shard slices resumed in parallel
    /// across those slots instead of a 1-for-1 rescue.
    pub reshard: bool,
    /// Kill a leg whose artifacts have not changed for this long while
    /// it is still running (`None` disables stall detection — a leg
    /// then only fails by exiting non-zero).
    ///
    /// The heartbeat is chunk-granular (a leg only touches its files
    /// when a chunk completes) and late chunks of the doubling schedule
    /// can legitimately run long, so a healthy leg deep inside a big
    /// chunk looks stalled. To keep that from looping a shard to the
    /// attempt cap, the effective timeout **doubles for a shard after
    /// each stall-kill** — a genuinely hung leg is still reaped fast,
    /// while a slow-but-alive one eventually gets room to finish its
    /// chunk. Size the base value generously relative to expected
    /// chunk duration.
    pub stall_timeout: Option<Duration>,
    /// Poll cadence of the monitor loop.
    pub poll_interval: Duration,
    /// Write a dispatcher-side telemetry event log
    /// (`<name>.dispatch.telemetry.jsonl` in [`DispatchConfig::dir`])
    /// recording launches, stall-kills, rescues and merge provenance.
    /// Dispatcher metrics (counters/gauges) are recorded regardless;
    /// this flag only controls the file.
    pub telemetry: bool,
}

impl DispatchConfig {
    /// A config with the production defaults: steal on, 3 attempts per
    /// shard, 10-minute stall timeout, 50 ms polls.
    pub fn new(name: impl Into<String>, legs: u32, dir: impl Into<PathBuf>) -> Self {
        Self {
            name: name.into(),
            legs,
            dir: dir.into(),
            steal: true,
            max_attempts: 3,
            backoff: BackoffPolicy::default(),
            reshard: true,
            stall_timeout: Some(Duration::from_secs(600)),
            poll_interval: Duration::from_millis(50),
            telemetry: false,
        }
    }
}

/// File name of the dispatcher's own event log — distinct from the leg
/// event logs ([`shard::events_file`]) so a 1-leg campaign's unsuffixed
/// log is never clobbered by its supervisor.
pub fn dispatch_events_file(name: &str) -> String {
    format!("{name}.dispatch.telemetry.jsonl")
}

/// Outcome of a [`dispatch`] run.
#[derive(Debug)]
pub struct DispatchReport {
    /// Shard count dispatched.
    pub legs: u32,
    /// Legs launched in total (`legs` + rescues).
    pub launched: u32,
    /// Shard specs that needed a rescue leg, in rescue order (repeats
    /// mean repeated rescues of the same shard).
    pub rescued: Vec<ShardSpec>,
    /// Of those, shards whose leg was stall-killed by the heartbeat
    /// monitor (as opposed to dying on its own).
    pub stalled: Vec<ShardSpec>,
    /// Parent shards that were split into sub-shard slices after a
    /// failure (elastic re-sharding).
    pub resharded: Vec<ShardSpec>,
    /// Shards (or slices) that exhausted their launch attempts; their
    /// unfinished points are missing from the partial merge.
    pub abandoned: Vec<ShardSpec>,
    /// The final merge (partial when shards were abandoned — see
    /// [`MergeReport::missing_points`]).
    pub merge: MergeReport,
    /// Post-merge consistency proof.
    pub verify: VerifyReport,
}

fn spec_list(specs: &[ShardSpec]) -> String {
    specs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

impl DispatchReport {
    /// Human-readable summary (what `campaign-dispatch` prints).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "dispatched {} legs ({} launches, {} rescued, {} stall-killed): \
             {} points, {} chunks merged\n",
            self.legs,
            self.launched,
            self.rescued.len(),
            self.stalled.len(),
            self.merge.points,
            self.merge.chunks,
        );
        if self.merge.store_served_chunks > 0 {
            out.push_str(&format!(
                "  {} chunk executions ({} packets) were resumed from shard stores \
                 (stolen work, not re-simulated)\n",
                self.merge.store_served_chunks, self.merge.store_served_packets
            ));
        }
        if !self.resharded.is_empty() {
            out.push_str(&format!(
                "  {} dead shard(s) re-split into slices across idle slots: {}\n",
                self.resharded.len(),
                spec_list(&self.resharded),
            ));
        }
        if !self.abandoned.is_empty() {
            out.push_str(&format!(
                "  WARNING: {} shard(s) abandoned after exhausting launch attempts ({}); \
                 merged manifest is PARTIAL — {} point(s) missing{}\n",
                self.abandoned.len(),
                spec_list(&self.abandoned),
                self.merge.missing_points_total,
                if self.merge.missing_points.is_empty() {
                    String::new()
                } else {
                    format!(
                        " (indices {})",
                        self.merge
                            .missing_points
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                },
            ));
        }
        out.push_str(&format!(
            "  store:    {}\n  manifest: {}\n",
            self.merge.store_path.display(),
            self.merge.manifest_path.display(),
        ));
        out
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The fallback liveness heartbeat of a leg: the (size, mtime)
/// signature of its store and manifest files. Any change counts as
/// progress — a fresh chunk append, a manifest rewrite, even a
/// truncation. The store is watched under **both** backend file names
/// (`.jsonl` and `.seg`) — the dispatcher does not know which
/// `--store-backend` the leg command line carries, and stat'ing a
/// missing file is cheap. Used when a leg predates telemetry (writes
/// no live snapshot); the primary heartbeat is the snapshot's `seq`.
type ArtifactSignature = [Option<(u64, SystemTime)>; 3];

fn artifact_signature(dir: &Path, name: &str, spec: ShardSpec) -> ArtifactSignature {
    let stat = |file: String| {
        let meta = fs::metadata(dir.join(file)).ok()?;
        Some((meta.len(), meta.modified().ok()?))
    };
    [
        stat(shard::store_file(name, spec, BackendKind::Jsonl)),
        stat(shard::store_file(name, spec, BackendKind::Indexed)),
        stat(shard::manifest_file(name, spec)),
    ]
}

/// Whether a finished leg left a usable shard manifest behind: the file
/// must parse and record the campaign + shard it was launched for. An
/// exit-0 leg without one (wrong binary, wrote elsewhere) is treated as
/// failed so it can be rescued — or reported — instead of feeding a
/// confusing merge error.
fn leg_manifest_ok(dir: &Path, name: &str, spec: ShardSpec) -> bool {
    let path = dir.join(shard::manifest_file(name, spec));
    match super::Manifest::read(&path) {
        Ok(m) => m.name == name && m.settings.shard == spec,
        Err(_) => false,
    }
}

/// One leg under supervision.
struct RunningLeg {
    spec: ShardSpec,
    leg: Box<dyn Leg>,
    signature: ArtifactSignature,
    /// Last observed live-snapshot `seq` of the leg (`None` until the
    /// leg writes one — telemetry-less legs stay `None` forever and are
    /// monitored by `signature` alone).
    last_seq: Option<u64>,
    last_progress: Instant,
}

/// Runs a full dispatched campaign: launch, monitor, steal, merge,
/// verify. See the [module docs](self) for the lifecycle. On success
/// the merged, canonicalized store/manifest pair of
/// [`DispatchConfig::name`] is in [`DispatchConfig::dir`], with the
/// manifest byte-identical to a single-host run at the same settings.
pub fn dispatch(cfg: &DispatchConfig, launcher: &dyn Launcher) -> io::Result<DispatchReport> {
    if cfg.legs == 0 || cfg.legs > MAX_LEGS {
        return Err(invalid(format!(
            "dispatch needs 1..={MAX_LEGS} legs, got {}",
            cfg.legs
        )));
    }
    let specs: Vec<ShardSpec> = (0..cfg.legs)
        .map(|i| ShardSpec::new(i, cfg.legs).map_err(invalid))
        .collect::<io::Result<_>>()?;
    fs::create_dir_all(&cfg.dir)?;
    // Pre-flight: leftovers of a differently-sharded run in the same
    // directory would poison the final merge (mixed `of-N` families);
    // refuse before burning any compute. The scan covers stores as
    // well as manifests — a killed leg leaves only its `.jsonl` (the
    // manifest is written at run end), and that alone marks a stale
    // family. Same-family files are fine — they are exactly what a
    // `--steal` re-dispatch resumes from.
    for entry in fs::read_dir(&cfg.dir)? {
        let entry = entry?;
        let file_name = entry.file_name();
        let Some(spec) = file_name
            .to_str()
            .and_then(|f| shard::artifact_shard_spec(&cfg.name, f))
        else {
            continue;
        };
        if spec.count != cfg.legs {
            return Err(invalid(format!(
                "{}: leftover shard artifact of a {}-leg run; this dispatch uses \
                 {} legs — delete the stale family or dispatch with --legs {}",
                entry.path().display(),
                spec.count,
                cfg.legs,
                spec.count,
            )));
        }
    }

    // Dispatcher-side event log (opt-in). Creation failure degrades to
    // an unlogged dispatch — supervision must not die for observability.
    let events: Option<EventLog> = if cfg.telemetry {
        match EventLog::create(&cfg.dir.join(dispatch_events_file(&cfg.name))) {
            Ok(log) => Some(log),
            Err(e) => {
                eprintln!("dispatch {}: event log create failed: {e}", cfg.name);
                None
            }
        }
    } else {
        None
    };

    /// A relaunch waiting out its backoff delay.
    struct PendingLaunch {
        spec: ShardSpec,
        not_before: Instant,
    }

    fn launch_leg(
        cfg: &DispatchConfig,
        launcher: &dyn Launcher,
        spec: ShardSpec,
        attempts: &mut BTreeMap<ShardSpec, u32>,
        running: &mut Vec<RunningLeg>,
        launched: &mut u32,
        events: Option<&EventLog>,
    ) -> io::Result<()> {
        let attempt = {
            let tries = attempts.entry(spec).or_insert(0);
            *tries += 1;
            *tries
        };
        // launch-fails-with-io-error: injected here, above the trait
        // boundary, so every launcher backend exercises the same error
        // path as a genuinely refused connection.
        if failpoint::armed()
            && failpoint::should_fire_attempt(failpoint::Site::LaunchIo, &spec.to_string(), attempt)
        {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("failpoint launch-io (shard {spec}, attempt {attempt})"),
            ));
        }
        let leg = launcher.launch(spec, attempt)?;
        *launched += 1;
        telemetry::counter_add(Counter::LegsLaunched, 1);
        telemetry::gauge_add(Gauge::LegsRunning, 1);
        if let Some(log) = events {
            log.emit(
                "leg_launched",
                &[
                    ("shard", Field::Str(&spec.to_string())),
                    ("attempt", Field::U64(u64::from(attempt))),
                ],
            );
        }
        running.push(RunningLeg {
            spec,
            leg,
            signature: artifact_signature(&cfg.dir, &cfg.name, spec),
            last_seq: read_snapshot_seq(&cfg.dir.join(shard::telemetry_file(&cfg.name, spec))),
            last_progress: Instant::now(),
        });
        Ok(())
    }

    /// A leg left supervision (completed, failed, or was killed).
    fn leg_departed() {
        telemetry::gauge_add(Gauge::LegsRunning, -1);
    }

    /// Routes a failed shard (dead leg or failed launch) to its next
    /// life: abort with stealing off, abandonment past the attempt
    /// cap, an elastic re-shard into idle slots, or a backoff-delayed
    /// rescue relaunch. Only the no-steal abort returns `Err`.
    #[allow(clippy::too_many_arguments)]
    fn handle_failure(
        cfg: &DispatchConfig,
        spec: ShardSpec,
        why: &str,
        attempts: &mut BTreeMap<ShardSpec, u32>,
        pending: &mut Vec<PendingLaunch>,
        running: &mut Vec<RunningLeg>,
        report_rescued: &mut Vec<ShardSpec>,
        report_resharded: &mut Vec<ShardSpec>,
        abandoned: &mut Vec<ShardSpec>,
        events: Option<&EventLog>,
    ) -> io::Result<()> {
        let tried = attempts.get(&spec).copied().unwrap_or(0);
        if !cfg.steal {
            // The dispatch is doomed at this instant: abort instead of
            // letting the sibling legs burn compute toward a merge
            // that will never happen. Their partial stores survive for
            // a later `--steal` re-dispatch to resume.
            kill_all(running);
            return Err(io::Error::other(format!(
                "campaign '{}' dispatch failed: {why} \
                 (stealing disabled — re-dispatch with --steal to recover)",
                cfg.name
            )));
        }
        if tried >= cfg.max_attempts {
            // Attempt cap: give this shard up instead of sinking the
            // dispatch — the survivors still merge into a
            // partial-but-verified manifest, and the report (plus a
            // non-zero process exit) names what is missing.
            abandoned.push(spec);
            telemetry::counter_add(Counter::ShardsAbandoned, 1);
            if let Some(log) = events {
                log.emit(
                    "abandon",
                    &[
                        ("shard", Field::Str(&spec.to_string())),
                        ("attempts", Field::U64(u64::from(tried))),
                        ("why", Field::Str(why)),
                    ],
                );
            }
            return Ok(());
        }
        // Elastic re-shard: with ≥2 slots idle, split the dead shard's
        // surviving store into slices that resume in parallel. Slices
        // inherit the parent's attempt count so a deterministic
        // crasher still terminates at the cap.
        let idle = (cfg.legs as usize).saturating_sub(running.len() + pending.len());
        if cfg.reshard && spec.slice.is_none() && idle >= 2 {
            let slices = (idle as u32).min(4);
            match shard::partition_store_into_slices(&cfg.name, &cfg.dir, spec, slices) {
                Ok(slice_specs) => {
                    report_resharded.push(spec);
                    telemetry::counter_add(Counter::ReshardSplits, 1);
                    if let Some(log) = events {
                        log.emit(
                            "reshard",
                            &[
                                ("shard", Field::Str(&spec.to_string())),
                                ("slices", Field::U64(u64::from(slices))),
                                ("why", Field::Str(why)),
                            ],
                        );
                    }
                    let now = Instant::now();
                    for slice in slice_specs {
                        attempts.insert(slice, tried);
                        let delay = cfg.backoff.delay(tried, slice);
                        if !delay.is_zero() {
                            telemetry::counter_add(Counter::BackoffWaits, 1);
                        }
                        pending.push(PendingLaunch {
                            spec: slice,
                            not_before: now + delay,
                        });
                    }
                    return Ok(());
                }
                Err(e) => {
                    // Fall through to a plain rescue of the parent — a
                    // failed partition must not lose the shard.
                    eprintln!("dispatch {}: re-shard of {spec} failed: {e}", cfg.name);
                }
            }
        }
        // Steal: queue a relaunch over the surviving store — resumed
        // chunks are served from disk, never re-simulated.
        report_rescued.push(spec);
        telemetry::counter_add(Counter::RescueAttempts, 1);
        let delay = cfg.backoff.delay(tried, spec);
        if !delay.is_zero() {
            telemetry::counter_add(Counter::BackoffWaits, 1);
        }
        if let Some(log) = events {
            log.emit(
                "rescue",
                &[
                    ("shard", Field::Str(&spec.to_string())),
                    ("why", Field::Str(why)),
                    ("backoff_ms", Field::U64(delay.as_millis() as u64)),
                ],
            );
        }
        pending.push(PendingLaunch {
            spec,
            not_before: Instant::now() + delay,
        });
        Ok(())
    }

    let mut report_rescued: Vec<ShardSpec> = Vec::new();
    let mut report_stalled: Vec<ShardSpec> = Vec::new();
    let mut report_resharded: Vec<ShardSpec> = Vec::new();
    let mut abandoned: Vec<ShardSpec> = Vec::new();
    let mut completed: Vec<ShardSpec> = Vec::new();
    let mut attempts: BTreeMap<ShardSpec, u32> = BTreeMap::new();
    // Stall-kills per shard: each one doubles that shard's effective
    // stall timeout (see `DispatchConfig::stall_timeout`).
    let mut stall_kills: BTreeMap<ShardSpec, u32> = BTreeMap::new();
    let mut launched = 0u32;
    let mut running: Vec<RunningLeg> = Vec::new();
    let now = Instant::now();
    let mut pending: Vec<PendingLaunch> = specs
        .iter()
        .map(|&spec| PendingLaunch {
            spec,
            not_before: now,
        })
        .collect();

    // Launch + monitor loop: fire pending launches whose backoff has
    // elapsed, then poll every leg; a dead leg is either complete
    // (clean exit + usable manifest) or failed. Failed legs and failed
    // launches route through `handle_failure` — rescue, re-shard, or
    // abandon — while attempts remain and stealing is on.
    while !running.is_empty() || !pending.is_empty() {
        let now = Instant::now();
        let mut due: Vec<ShardSpec> = Vec::new();
        pending.retain(|p| {
            if p.not_before <= now {
                due.push(p.spec);
                false
            } else {
                true
            }
        });
        due.sort();
        for spec in due {
            if let Err(e) = launch_leg(
                cfg,
                launcher,
                spec,
                &mut attempts,
                &mut running,
                &mut launched,
                events.as_ref(),
            ) {
                telemetry::counter_add(Counter::LaunchFailures, 1);
                if let Some(log) = events.as_ref() {
                    log.emit(
                        "launch_failed",
                        &[
                            ("shard", Field::Str(&spec.to_string())),
                            ("error", Field::Str(&e.to_string())),
                        ],
                    );
                }
                handle_failure(
                    cfg,
                    spec,
                    &format!("leg {spec} failed to launch: {e}"),
                    &mut attempts,
                    &mut pending,
                    &mut running,
                    &mut report_rescued,
                    &mut report_resharded,
                    &mut abandoned,
                    events.as_ref(),
                )?;
            }
        }
        let mut idx = 0;
        while idx < running.len() {
            let now = Instant::now();
            let r = &mut running[idx];
            let status = match r.leg.poll() {
                Ok(s) => s,
                Err(e) => {
                    kill_all(&mut running);
                    return Err(e);
                }
            };
            let failed = match status {
                LegStatus::Exited { success } => {
                    let complete = success && leg_manifest_ok(&cfg.dir, &cfg.name, r.spec);
                    if complete {
                        if let Some(log) = events.as_ref() {
                            log.emit("leg_done", &[("shard", Field::Str(&r.spec.to_string()))]);
                        }
                        completed.push(r.spec);
                        leg_departed();
                        running.remove(idx);
                        continue;
                    }
                    Some(if success {
                        format!("leg {} exited 0 without a usable shard manifest", r.spec)
                    } else {
                        format!("leg {} exited with failure", r.spec)
                    })
                }
                LegStatus::Running => {
                    // Primary heartbeat: the live-snapshot seq, bumped
                    // once per scheduling round by a telemetry-aware
                    // leg. The artifact signature stays as a second
                    // signal (a store append lands mid-round, before
                    // the next snapshot) and as the only signal for
                    // legs that predate telemetry.
                    let seq =
                        read_snapshot_seq(&cfg.dir.join(shard::telemetry_file(&cfg.name, r.spec)));
                    if seq.is_some() && seq != r.last_seq {
                        r.last_seq = seq;
                        r.last_progress = now;
                    }
                    let sig = artifact_signature(&cfg.dir, &cfg.name, r.spec);
                    if sig != r.signature {
                        r.signature = sig;
                        r.last_progress = now;
                    }
                    let kills = stall_kills.get(&r.spec).copied().unwrap_or(0);
                    let limit = cfg
                        .stall_timeout
                        .map(|t| t.saturating_mul(1 << kills.min(10)));
                    match limit {
                        Some(limit) if now.duration_since(r.last_progress) > limit => {
                            let _ = r.leg.kill();
                            report_stalled.push(r.spec);
                            *stall_kills.entry(r.spec).or_insert(0) += 1;
                            telemetry::counter_add(Counter::StallKills, 1);
                            if let Some(log) = events.as_ref() {
                                log.emit(
                                    "stall_kill",
                                    &[
                                        ("shard", Field::Str(&r.spec.to_string())),
                                        ("timeout_ms", Field::U64(limit.as_millis() as u64)),
                                    ],
                                );
                            }
                            Some(format!(
                                "leg {} stalled (no artifact progress for {:.1}s) and was killed",
                                r.spec,
                                limit.as_secs_f64()
                            ))
                        }
                        _ => None,
                    }
                }
            };
            let Some(why) = failed else {
                idx += 1;
                continue;
            };
            let spec = r.spec;
            leg_departed();
            running.remove(idx);
            handle_failure(
                cfg,
                spec,
                &why,
                &mut attempts,
                &mut pending,
                &mut running,
                &mut report_rescued,
                &mut report_resharded,
                &mut abandoned,
                events.as_ref(),
            )?;
        }
        if !running.is_empty() || !pending.is_empty() {
            std::thread::sleep(cfg.poll_interval);
        }
    }

    // Every surviving shard has a clean leg: fold its artifacts back
    // into the single-host files and prove the merged store backs its
    // manifest. The manifest list is explicit — completed specs only —
    // because with re-sharding the directory can also hold leftovers
    // of abandoned shards that must stay out of the merge. A 1-leg
    // dispatch degenerates naturally: the lone unsuffixed manifest is
    // merged in place, canonicalizing store order and provenance.
    completed.sort();
    if completed.is_empty() {
        return Err(io::Error::other(format!(
            "campaign '{}' dispatch failed: every shard was abandoned \
             (abandoned: {})",
            cfg.name,
            spec_list(&abandoned),
        )));
    }
    let single = ShardSpec::single();
    let manifests: Vec<PathBuf> = completed
        .iter()
        .map(|&spec| cfg.dir.join(shard::manifest_file(&cfg.name, spec)))
        .collect();
    let merge = shard::merge_manifests_allowing_partial(
        &cfg.name,
        &manifests,
        &cfg.dir,
        !abandoned.is_empty(),
    )?;
    if let Some(log) = events.as_ref() {
        // Merge provenance: where the merged chunk set actually came
        // from — how much was stolen/resumed rather than re-simulated.
        log.emit(
            "merge",
            &[
                ("shards", Field::U64(merge.shards as u64)),
                ("points", Field::U64(merge.points as u64)),
                ("chunks", Field::U64(merge.chunks as u64)),
                (
                    "duplicate_chunks",
                    Field::U64(merge.duplicate_chunks as u64),
                ),
                ("store_served_chunks", Field::U64(merge.store_served_chunks)),
                (
                    "store_served_packets",
                    Field::U64(merge.store_served_packets),
                ),
                ("rescued", Field::U64(report_rescued.len() as u64)),
                ("stalled", Field::U64(report_stalled.len() as u64)),
                ("resharded", Field::U64(report_resharded.len() as u64)),
                ("abandoned", Field::U64(abandoned.len() as u64)),
                ("missing_points", Field::U64(merge.missing_points_total)),
            ],
        );
    }
    let verify = shard::verify(&cfg.name, &cfg.dir, single)?;
    if !verify.ok() {
        return Err(invalid(format!(
            "merged campaign '{}' fails verification: {}",
            cfg.name,
            verify.problems.join("; ")
        )));
    }
    Ok(DispatchReport {
        legs: cfg.legs,
        launched,
        rescued: report_rescued,
        stalled: report_stalled,
        resharded: report_resharded,
        abandoned,
        merge,
        verify,
    })
}

/// Best-effort cleanup on an error path: no leg may outlive a failed
/// dispatch and keep appending to the stores.
fn kill_all(running: &mut Vec<RunningLeg>) {
    telemetry::gauge_add(Gauge::LegsRunning, -(running.len() as i64));
    for r in running.iter_mut() {
        let _ = r.leg.kill();
    }
    running.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::manifest::{Manifest, PointRecord};
    use crate::campaign::store::{self, ChunkId};
    use crate::campaign::CampaignSettings;
    use hspa_phy::harq::HarqStats;
    use std::cell::RefCell;
    use std::collections::{HashMap, VecDeque};

    const NAME: &str = "mock";

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dispatch-test-{}-{tag}", std::process::id()))
    }

    fn tiny_config(tag: &str, legs: u32) -> DispatchConfig {
        let dir = temp_dir(tag);
        let _ = fs::remove_dir_all(&dir);
        DispatchConfig {
            stall_timeout: None,
            poll_interval: Duration::from_millis(1),
            // Mock tests script exact launch sequences; immediate
            // relaunches and 1-for-1 rescues keep them deterministic.
            // Backoff and re-sharding have dedicated tests.
            backoff: BackoffPolicy::none(),
            reshard: false,
            ..DispatchConfig::new(NAME, legs, dir)
        }
    }

    /// Writes the artifacts a healthy leg of `spec` would leave: a
    /// 2-point campaign (keys 0 and 1) with one 4-packet chunk per
    /// owned point.
    fn write_leg_artifacts(dir: &Path, spec: ShardSpec) {
        let mut m = Manifest::new(
            NAME,
            CampaignSettings {
                shard: spec,
                ..Default::default()
            },
        );
        m.points_enumerated = 2;
        let mut records = Vec::new();
        for key in [0u64, 1] {
            if !spec.owns(key) {
                continue;
            }
            m.points.push(PointRecord {
                index: key,
                key,
                label: format!("p{key}"),
                snr_db: 1.0,
                packets: 4,
                max_packets: 4,
                bler: 0.0,
                ci: (0.0, 0.5),
                rel_half_width: 1.0,
                converged: true,
                chunks: 1,
                chunks_from_store: 0,
                packets_from_store: 0,
                tier: hspa_phy::turbo::AccuracyTier::Exact,
            });
            records.push((
                ChunkId {
                    point: key,
                    first_packet: 0,
                    n_packets: 4,
                },
                HarqStats {
                    packets: 4,
                    delivered: 4,
                    transmissions: 4,
                    info_bits: 100,
                    failures_at: vec![0; 4],
                },
            ));
        }
        fs::create_dir_all(dir).unwrap();
        store::write_records(
            &dir.join(shard::store_file(NAME, spec, BackendKind::Jsonl)),
            &records,
        )
        .unwrap();
        m.write(&dir.join(shard::manifest_file(NAME, spec)))
            .unwrap();
    }

    /// What a scripted mock leg does when polled.
    #[derive(Clone, Copy)]
    enum Behavior {
        /// The launch itself fails with an I/O error (no leg exists).
        LaunchFail,
        /// Write valid artifacts, exit 0.
        Complete,
        /// Exit non-zero without artifacts.
        Fail,
        /// Exit 0 without writing anything (dispatcher must distrust).
        LieAboutSuccess,
        /// Never exit, never touch a file (stall fodder).
        Hang,
        /// Look stalled for the given wall-clock time (no file
        /// activity), then complete — a leg deep inside a long chunk.
        CompleteAfter(Duration),
        /// Never touch store/manifest, but bump the live telemetry
        /// snapshot's seq on every poll; complete after the given time.
        /// Models a telemetry-aware leg whose store writes are sparse.
        HeartbeatThenComplete(Duration),
    }

    struct MockLeg {
        spec: ShardSpec,
        dir: PathBuf,
        behavior: Behavior,
        started: Instant,
        seq: u64,
    }

    impl Leg for MockLeg {
        fn poll(&mut self) -> io::Result<LegStatus> {
            Ok(match self.behavior {
                Behavior::LaunchFail => unreachable!("a failed launch never yields a leg"),
                Behavior::Complete => {
                    write_leg_artifacts(&self.dir, self.spec);
                    LegStatus::Exited { success: true }
                }
                Behavior::Fail => LegStatus::Exited { success: false },
                Behavior::LieAboutSuccess => LegStatus::Exited { success: true },
                Behavior::Hang => LegStatus::Running,
                Behavior::CompleteAfter(after) => {
                    if self.started.elapsed() < after {
                        LegStatus::Running
                    } else {
                        write_leg_artifacts(&self.dir, self.spec);
                        LegStatus::Exited { success: true }
                    }
                }
                Behavior::HeartbeatThenComplete(after) => {
                    if self.started.elapsed() < after {
                        self.seq += 1;
                        let snap = crate::telemetry::LiveSnapshot {
                            seq: self.seq,
                            elapsed_ms: self.started.elapsed().as_millis() as u64,
                            done: false,
                            points_total: 1,
                            points_converged: 0,
                            packets_realized: 0,
                            packets_from_store: 0,
                            packets_simulated: 0,
                            packets_per_sec: 0.0,
                            store_chunk_hits: 0,
                            store_chunk_misses: 0,
                            points: Vec::new(),
                        };
                        snap.write_atomic(&self.dir.join(shard::telemetry_file(NAME, self.spec)))
                            .unwrap();
                        LegStatus::Running
                    } else {
                        write_leg_artifacts(&self.dir, self.spec);
                        LegStatus::Exited { success: true }
                    }
                }
            })
        }

        fn kill(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Scripted launcher: each shard spec (rendered, e.g. `"1/2"` or
    /// `"1/2:0/2"`) pops its next behavior (defaulting to `Complete`),
    /// so tests can fail the first attempt and succeed the rescue.
    struct MockLauncher {
        dir: PathBuf,
        plans: RefCell<HashMap<String, VecDeque<Behavior>>>,
        launches: RefCell<Vec<(ShardSpec, u32)>>,
    }

    impl MockLauncher {
        fn new(dir: &Path, plans: &[(&str, &[Behavior])]) -> Self {
            Self {
                dir: dir.to_path_buf(),
                plans: RefCell::new(
                    plans
                        .iter()
                        .map(|(spec, b)| (spec.to_string(), b.iter().copied().collect()))
                        .collect(),
                ),
                launches: RefCell::new(Vec::new()),
            }
        }
    }

    impl Launcher for MockLauncher {
        fn launch(&self, spec: ShardSpec, attempt: u32) -> io::Result<Box<dyn Leg>> {
            self.launches.borrow_mut().push((spec, attempt));
            let behavior = self
                .plans
                .borrow_mut()
                .get_mut(&spec.to_string())
                .and_then(VecDeque::pop_front)
                .unwrap_or(Behavior::Complete);
            if let Behavior::LaunchFail = behavior {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "mock launch refused",
                ));
            }
            Ok(Box::new(MockLeg {
                spec,
                dir: self.dir.clone(),
                behavior,
                started: Instant::now(),
                seq: 0,
            }))
        }
    }

    #[test]
    fn healthy_legs_merge_and_verify() {
        let cfg = tiny_config("healthy", 2);
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let report = dispatch(&cfg, &launcher).expect("dispatch succeeds");
        assert_eq!(report.launched, 2);
        assert!(report.rescued.is_empty() && report.stalled.is_empty());
        assert_eq!(report.merge.points, 2);
        assert!(report.verify.ok());
        assert!(cfg.dir.join("mock.manifest.json").exists());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn failed_leg_without_steal_aborts() {
        let cfg = DispatchConfig {
            steal: false,
            ..tiny_config("nosteal", 2)
        };
        let launcher = MockLauncher::new(&cfg.dir, &[("1/2", &[Behavior::Fail])]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("--steal"), "{err}");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn unrecoverable_shard_aborts_siblings_immediately() {
        // Leg 0 would run forever; leg 1 fails with stealing off. The
        // dispatch is doomed at that instant and must return (killing
        // leg 0) instead of waiting on a merge that can never happen —
        // if this regresses, the test hangs rather than fails.
        let cfg = DispatchConfig {
            steal: false,
            stall_timeout: None,
            ..tiny_config("abort", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[("0/2", &[Behavior::Hang]), ("1/2", &[Behavior::Fail])],
        );
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leg 1/2"), "{err}");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn failed_leg_is_rescued_when_stealing() {
        let cfg = tiny_config("rescue", 2);
        let launcher =
            MockLauncher::new(&cfg.dir, &[("1/2", &[Behavior::Fail, Behavior::Complete])]);
        let report = dispatch(&cfg, &launcher).expect("rescue leg completes the shard");
        assert_eq!(report.launched, 3);
        assert_eq!(report.rescued, vec![ShardSpec::new(1, 2).unwrap()]);
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn lying_success_without_manifest_is_rescued() {
        let cfg = tiny_config("liar", 2);
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[("0/2", &[Behavior::LieAboutSuccess, Behavior::Complete])],
        );
        let report = dispatch(&cfg, &launcher).expect("manifest check catches the lie");
        assert_eq!(report.rescued, vec![ShardSpec::new(0, 2).unwrap()]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn stalled_leg_is_killed_and_rescued() {
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(30)),
            ..tiny_config("stall", 2)
        };
        let launcher =
            MockLauncher::new(&cfg.dir, &[("0/2", &[Behavior::Hang, Behavior::Complete])]);
        let report = dispatch(&cfg, &launcher).expect("straggler is stall-killed and stolen");
        let spec = ShardSpec::new(0, 2).unwrap();
        assert_eq!(report.stalled, vec![spec]);
        assert_eq!(report.rescued, vec![spec]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn stall_timeout_escalates_for_slow_but_healthy_legs() {
        // The heartbeat is chunk-granular: a leg 40 ms into a long
        // chunk looks stalled at a 25 ms timeout and is killed — but
        // the rescue runs at a doubled (50 ms) timeout and must be
        // allowed to finish instead of looping to the attempt cap.
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(25)),
            ..tiny_config("escalate", 2)
        };
        let slow = Behavior::CompleteAfter(Duration::from_millis(40));
        let launcher = MockLauncher::new(&cfg.dir, &[("0/2", &[slow, slow])]);
        let report = dispatch(&cfg, &launcher).expect("doubled timeout lets the chunk finish");
        let spec = ShardSpec::new(0, 2).unwrap();
        assert_eq!(report.stalled, vec![spec], "exactly one stall-kill");
        assert_eq!(report.rescued, vec![spec]);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn snapshot_seq_heartbeat_counts_as_progress() {
        // The leg never touches store or manifest for 80 ms — far past
        // the 25 ms stall timeout — but bumps its live-snapshot seq on
        // every poll. The telemetry heartbeat must keep it alive (the
        // size+mtime fallback alone would stall-kill it, as
        // `stall_timeout_escalates_for_slow_but_healthy_legs` shows).
        let cfg = DispatchConfig {
            stall_timeout: Some(Duration::from_millis(25)),
            ..tiny_config("seq-heartbeat", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[(
                "0/2",
                &[Behavior::HeartbeatThenComplete(Duration::from_millis(80))],
            )],
        );
        let report = dispatch(&cfg, &launcher).expect("heartbeating leg survives");
        assert!(report.stalled.is_empty(), "no stall-kill: {report:?}");
        assert!(report.rescued.is_empty());
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn dispatcher_event_log_records_lifecycle() {
        let cfg = DispatchConfig {
            telemetry: true,
            ..tiny_config("events", 2)
        };
        let launcher =
            MockLauncher::new(&cfg.dir, &[("1/2", &[Behavior::Fail, Behavior::Complete])]);
        dispatch(&cfg, &launcher).expect("dispatch succeeds");
        let log = fs::read_to_string(cfg.dir.join(dispatch_events_file(NAME))).unwrap();
        for needle in ["leg_launched", "rescue", "leg_done", "\"event\": \"merge\""] {
            assert!(log.contains(needle), "missing {needle} in:\n{log}");
        }
        // Every line is a parseable flat JSON object with a seq field.
        for line in log.lines() {
            assert!(line.starts_with("{\"seq\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn exhausted_shard_is_abandoned_into_a_partial_merge() {
        let cfg = DispatchConfig {
            max_attempts: 2,
            ..tiny_config("cap", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[("1/2", &[Behavior::Fail, Behavior::Fail, Behavior::Fail])],
        );
        let report = dispatch(&cfg, &launcher).expect("survivors still merge");
        assert_eq!(
            launcher.launches.borrow().len(),
            3,
            "2 attempts for shard 1, then abandonment — never a third"
        );
        assert_eq!(report.abandoned, vec![ShardSpec::new(1, 2).unwrap()]);
        assert_eq!(
            report.merge.missing_points,
            vec![1],
            "the dead shard's point is reported missing"
        );
        assert_eq!(report.merge.points, 1);
        assert!(report.verify.ok(), "partial merge still verifies");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn all_shards_abandoned_is_an_error() {
        let cfg = DispatchConfig {
            max_attempts: 1,
            ..tiny_config("all-gone", 2)
        };
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[("0/2", &[Behavior::Fail]), ("1/2", &[Behavior::Fail])],
        );
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(
            err.to_string().contains("every shard was abandoned"),
            "{err}"
        );
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn failed_launch_is_retried_not_fatal() {
        let cfg = tiny_config("launch-fail", 2);
        let launcher = MockLauncher::new(
            &cfg.dir,
            &[("0/2", &[Behavior::LaunchFail, Behavior::Complete])],
        );
        let report = dispatch(&cfg, &launcher).expect("second launch attempt succeeds");
        assert_eq!(report.rescued, vec![ShardSpec::new(0, 2).unwrap()]);
        let attempts: Vec<u32> = launcher
            .launches
            .borrow()
            .iter()
            .filter(|(spec, _)| spec.index == 0)
            .map(|&(_, attempt)| attempt)
            .collect();
        assert_eq!(attempts, vec![1, 2], "attempt number reaches the launcher");
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn dead_shard_is_resharded_across_idle_slots() {
        // Shard 0 completes on its first poll, so when shard 1 dies
        // both slots are idle — instead of a 1-for-1 rescue the shard
        // is split into two slices that resume in parallel, and the
        // merge of shard 0 + both slices covers every point.
        let cfg = DispatchConfig {
            reshard: true,
            ..tiny_config("reshard", 2)
        };
        let launcher = MockLauncher::new(&cfg.dir, &[("1/2", &[Behavior::Fail])]);
        let report = dispatch(&cfg, &launcher).expect("slices finish the dead shard");
        let parent = ShardSpec::new(1, 2).unwrap();
        assert_eq!(report.resharded, vec![parent]);
        assert!(report.abandoned.is_empty());
        let slice_launches: Vec<ShardSpec> = launcher
            .launches
            .borrow()
            .iter()
            .map(|&(spec, _)| spec)
            .filter(|spec| spec.slice.is_some())
            .collect();
        assert_eq!(
            slice_launches,
            vec![
                parent.slice_of(0, 2).unwrap(),
                parent.slice_of(1, 2).unwrap()
            ],
            "both slices launched"
        );
        assert_eq!(report.merge.points, 2, "no point lost in the split");
        assert!(report.merge.missing_points.is_empty());
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn process_leg_kill_is_idempotent() {
        let child = Command::new("sh")
            .args(["-c", "sleep 5"])
            .stdout(Stdio::null())
            .spawn()
            .unwrap();
        let mut leg = ProcessLeg { child };
        leg.kill().expect("first kill reaps the child");
        leg.kill()
            .expect("second kill is a no-op on the reaped child");
        assert!(matches!(
            leg.poll().unwrap(),
            LegStatus::Exited { success: false }
        ));
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let policy = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::default()
        };
        let spec = ShardSpec::new(0, 2).unwrap();
        assert_eq!(
            policy.delay(0, spec),
            Duration::ZERO,
            "first launch is immediate"
        );
        assert_eq!(policy.delay(1, spec), Duration::from_millis(500));
        assert_eq!(policy.delay(2, spec), Duration::from_millis(1000));
        assert_eq!(policy.delay(3, spec), Duration::from_millis(2000));
        assert_eq!(policy.delay(10, spec), Duration::from_secs(30), "capped");
        assert_eq!(BackoffPolicy::none().delay(5, spec), Duration::ZERO);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let policy = BackoffPolicy::default();
        let spec = ShardSpec::new(1, 2).unwrap();
        for tries in 1..6u32 {
            let delay = policy.delay(tries, spec);
            assert_eq!(delay, policy.delay(tries, spec), "same inputs replay");
            let capped = (policy.base.as_secs_f64() * policy.factor.powi(tries as i32 - 1))
                .min(policy.max.as_secs_f64());
            let secs = delay.as_secs_f64();
            assert!(
                secs >= capped - 1e-9 && secs < capped * (1.0 + policy.jitter) + 1e-9,
                "attempt {tries}: {secs}s outside [{capped}, {})",
                capped * (1.0 + policy.jitter)
            );
        }
    }

    #[test]
    fn backoff_specs_parse() {
        let policy: BackoffPolicy = "250:3:9000".parse().unwrap();
        assert_eq!(policy.base, Duration::from_millis(250));
        assert_eq!(policy.factor, 3.0);
        assert_eq!(policy.max, Duration::from_millis(9000));
        assert_eq!(policy.jitter, BackoffPolicy::default().jitter);
        for bad in ["250:3", "a:2:100", "100:0.5:1000", "100:nan:1000", ""] {
            assert!(bad.parse::<BackoffPolicy>().is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn command_launcher_builds_quoted_remote_commands() {
        let launcher = CommandLauncher::new("ssh {host} {cmd}", "./fig6a", "/tmp/it's here")
            .with_hosts("alpha, beta")
            .with_args(["--precision".to_string(), "0.2".to_string()])
            .with_chaos_seed(7);
        let spec = ShardSpec::new(1, 2).unwrap();
        assert_eq!(
            launcher.leg_command(spec, 3),
            "cd '/tmp/it'\\''s here' && RESILIENCE_CHAOS_SEED=7 RESILIENCE_CHAOS_ATTEMPT=3 \
             ./fig6a --precision 0.2 --shard 1/2"
        );
        assert_eq!(launcher.next_host(), "alpha");
        assert_eq!(launcher.next_host(), "beta");
        assert_eq!(launcher.next_host(), "alpha", "hosts round-robin");
        let argv = expand_template(&launcher.template, "alpha", Some("echo hi"));
        assert_eq!(argv, vec!["ssh", "alpha", "echo hi"]);
    }

    #[test]
    fn command_launcher_runs_legs_through_a_shell() {
        let dir = temp_dir("cmd-launch");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let marker = dir.join("pulled");
        let launcher = CommandLauncher::new("sh -c {cmd}", "true", &dir)
            .with_pull(&format!("touch {}", marker.display()));
        let mut leg = launcher.launch(ShardSpec::single(), 1).unwrap();
        let success = loop {
            match leg.poll().unwrap() {
                LegStatus::Running => std::thread::sleep(Duration::from_millis(5)),
                LegStatus::Exited { success } => break success,
            }
        };
        assert!(success, "`true --shard 0/1` exits 0");
        assert!(marker.exists(), "pull template ran after exit");
        leg.kill().expect("kill after exit is fine");
        leg.kill().expect("and stays idempotent");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_leg_dispatch_canonicalizes_in_place() {
        let cfg = tiny_config("single", 1);
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let report = dispatch(&cfg, &launcher).expect("degenerate 1-leg dispatch");
        assert_eq!(report.merge.points, 2);
        assert!(report.verify.ok());
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leftover_foreign_family_is_refused_up_front() {
        let cfg = tiny_config("family", 2);
        write_leg_artifacts(&cfg.dir, ShardSpec::new(0, 3).unwrap());
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leftover shard artifact"), "{err}");
        assert!(launcher.launches.borrow().is_empty(), "no leg was started");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leftover_foreign_store_without_manifest_is_refused_too() {
        // A killed leg leaves only its `.jsonl` (the manifest is
        // written at run end) — a store alone must still mark the
        // stale family.
        let cfg = tiny_config("family-store", 2);
        fs::create_dir_all(&cfg.dir).unwrap();
        let stale = shard::store_file(NAME, ShardSpec::new(1, 3).unwrap(), BackendKind::Jsonl);
        fs::write(cfg.dir.join(stale), "").unwrap();
        let launcher = MockLauncher::new(&cfg.dir, &[]);
        let err = dispatch(&cfg, &launcher).unwrap_err();
        assert!(err.to_string().contains("leftover shard artifact"), "{err}");
        assert!(launcher.launches.borrow().is_empty(), "no leg was started");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn leg_count_is_range_checked() {
        for legs in [0, MAX_LEGS + 1] {
            let cfg = tiny_config(&format!("range-{legs}"), legs);
            let launcher = MockLauncher::new(&cfg.dir, &[]);
            let err = dispatch(&cfg, &launcher).unwrap_err();
            assert!(err.to_string().contains("legs"), "{err}");
            assert!(launcher.launches.borrow().is_empty(), "nothing launched");
        }
    }
}
