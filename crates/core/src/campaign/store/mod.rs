//! Persistent, append-only result store for campaign chunks.
//!
//! One store file per campaign (default `target/campaign/<name>.<ext>`):
//! each record is the [`HarqStats`] of one simulated chunk, keyed by the
//! FNV hash of the point's canonical fingerprint (see [`super::hash`])
//! plus the chunk's packet range. Re-running a campaign opens the store
//! once and skips every chunk already on disk, so interrupted campaigns
//! resume and repeated figure regenerations are nearly free.
//!
//! Two interchangeable backends implement the [`StoreBackend`] trait:
//!
//! * [`BackendKind::Jsonl`] (`.jsonl`) — one hand-written JSON line per
//!   record. Human-greppable, trivially diffable, and the interchange
//!   format (`campaign-admin export`/`import`). Every open parses the
//!   whole file.
//! * [`BackendKind::Indexed`] (`.seg`) — append-only binary segment
//!   frames with a persistent point-key index sidecar (`.seg.idx`).
//!   Open replays only the un-indexed tail and lookups seek straight to
//!   the frame, so open/resume cost is proportional to the records
//!   touched, not the file size.
//!
//! The backend is inferred from the file extension, so every path-typed
//! entry point ([`ResultStore::open`], [`load_all`], [`write_records`])
//! transparently serves both formats. The offline `serde` shim has no
//! serializer, so JSONL records are written and parsed by hand; both
//! formats are versioned through the fingerprint schema (a key mismatch
//! is just a store miss, never corruption).

mod jsonl;
mod query;
mod segment;

use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use hspa_phy::harq::HarqStats;

use crate::telemetry::{self, Counter};

pub use jsonl::JsonlBackend;
pub use query::QueryFilter;
pub use segment::SegmentBackend;

/// Identity of one stored chunk: point key + packet range. Ordered by
/// `(point, first_packet, n_packets)` — the canonical store order the
/// merge/GC tooling writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// FNV-1a 64 of the point fingerprint.
    pub point: u64,
    /// First absolute packet index of the chunk.
    pub first_packet: usize,
    /// Packets in the chunk.
    pub n_packets: usize,
}

/// Which on-disk format backs a result store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// One JSON line per chunk record — the interchange/debug format.
    #[default]
    Jsonl,
    /// Binary segment frames plus a persistent point-key index sidecar.
    Indexed,
}

impl BackendKind {
    /// The store-file extension this backend owns.
    pub const fn extension(self) -> &'static str {
        match self {
            BackendKind::Jsonl => "jsonl",
            BackendKind::Indexed => "seg",
        }
    }

    /// Infers the backend from a store path's extension (`.seg` is the
    /// indexed backend, everything else is JSONL — the historical
    /// default and the only format older stores can be in).
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("seg") => BackendKind::Indexed,
            _ => BackendKind::Jsonl,
        }
    }

    /// Opens (or creates) a store of this kind for campaign use — the
    /// resume/truncate semantics of [`ResultStore::open`].
    pub fn open(self, path: &Path, resume: bool) -> std::io::Result<Box<dyn StoreBackend>> {
        Ok(match self {
            BackendKind::Jsonl => Box::new(JsonlBackend::open(path, resume)?),
            BackendKind::Indexed => Box::new(SegmentBackend::open(path, resume)?),
        })
    }

    /// Attaches to a store path without touching the filesystem — the
    /// tooling entry point behind [`load_all`] / [`write_records`].
    /// The returned backend serves the whole-store scan surface
    /// ([`StoreBackend::load_all`], [`StoreBackend::replace_all`]);
    /// it holds no resident records, so [`StoreBackend::get`] misses
    /// until the store is opened properly.
    pub fn attach(self, path: &Path) -> Box<dyn StoreBackend> {
        match self {
            BackendKind::Jsonl => Box::new(JsonlBackend::attach(path)),
            BackendKind::Indexed => Box::new(SegmentBackend::attach(path)),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Jsonl => "jsonl",
            BackendKind::Indexed => "indexed",
        })
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(BackendKind::Jsonl),
            "indexed" | "seg" => Ok(BackendKind::Indexed),
            other => Err(format!(
                "unknown store backend '{other}' (expected 'jsonl' or 'indexed')"
            )),
        }
    }
}

/// The storage contract every result-store format implements. The
/// campaign hot path uses [`get`](Self::get)/[`append`](Self::append);
/// the admin tooling (merge, gc, verify, stats, export) uses the
/// whole-store scan surface, which absorbs what used to be the
/// path-based free functions.
pub trait StoreBackend: fmt::Debug {
    /// Which format this backend is.
    fn kind(&self) -> BackendKind;

    /// The backing store file path.
    fn path(&self) -> &Path;

    /// Number of distinct chunk records resident (last write per
    /// [`ChunkId`] wins, matching resume semantics).
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up one chunk. No hit/miss accounting here — that is
    /// [`ResultStore`]'s concern, so counters survive backend swaps
    /// and compaction.
    fn get(&mut self, id: ChunkId) -> Option<HarqStats>;

    /// Appends a freshly simulated chunk.
    fn append(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()>;

    /// **Strict** whole-store scan in file order, keeping duplicates.
    /// Returns the records plus the count of torn (unparseable) entries
    /// skipped. A record that parses but violates the stats invariants
    /// (`delivered > packets`, or a stats block covering a different
    /// packet count than the chunk range claims) is corruption —
    /// folding it into merged statistics would underflow the failure
    /// count and produce a garbage BLER — so it is an error pointing
    /// the operator at `campaign-admin gc`, never a silent skip.
    fn load_all(&self) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)>;

    /// The **lenient** whole-store scan behind `campaign-admin gc`:
    /// corrupt records (the ones [`load_all`](Self::load_all) refuses)
    /// are dropped and counted instead of fatal — gc is the tool the
    /// strict loaders tell the operator to run, so it must be able to
    /// read past the damage it is asked to remove.
    fn load_all_lenient(&self) -> std::io::Result<LenientLoad>;

    /// Rewrites the store to contain exactly `records`, in the given
    /// order, replacing any previous content (the merge/GC/compaction
    /// rewrite path — the campaign itself only ever appends). The
    /// replacement is atomic (write-to-temp + rename): a rewrite killed
    /// midway must leave the old store intact, never a truncated one.
    fn replace_all(&mut self, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()>;
}

/// What a lenient scan read: the surviving records plus tallies of
/// everything it had to drop.
#[derive(Debug, Default)]
pub struct LenientLoad {
    /// Valid records in file order, duplicates kept.
    pub records: Vec<(ChunkId, HarqStats)>,
    /// Unparseable (torn) entries skipped.
    pub torn_lines: usize,
    /// Parseable records dropped for violating the range invariants.
    pub corrupt_records: usize,
}

/// Persistent chunk store of per-chunk [`HarqStats`], dispatching to
/// the [`StoreBackend`] inferred from the path extension.
#[derive(Debug)]
pub struct ResultStore {
    backend: Box<dyn StoreBackend>,
    /// Chunks served from disk since opening.
    pub hits: u64,
    /// Chunks that had to be simulated since opening.
    pub misses: u64,
}

impl ResultStore {
    /// Opens (or creates) the store file, loading (JSONL) or indexing
    /// (segment) every valid record. With `resume == false` an existing
    /// store is truncated first — the `--no-resume` path.
    ///
    /// A store that exists but cannot be read is an **error**, never an
    /// empty store: silently treating it as missing would re-simulate
    /// every chunk and double-append the results once the file becomes
    /// readable again, so only [`std::io::ErrorKind::NotFound`] counts
    /// as "no store yet" — permission problems, unreadable paths and
    /// read failures all surface to the caller.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> std::io::Result<Self> {
        let path = path.into();
        let backend = BackendKind::for_path(&path).open(&path, resume)?;
        Ok(Self {
            backend,
            hits: 0,
            misses: 0,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        self.backend.path()
    }

    /// Which backend serves this store.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.backend.len() == 0
    }

    /// Looks up a chunk, counting the outcome toward the hit/miss tally
    /// (and the global telemetry hit/miss counters).
    pub fn fetch(&mut self, id: ChunkId) -> Option<HarqStats> {
        match self.backend.get(id) {
            Some(stats) => {
                self.hits += 1;
                telemetry::counter_add(Counter::StoreChunkHits, 1);
                telemetry::counter_add(Counter::StorePacketsServed, id.n_packets as u64);
                Some(stats)
            }
            None => {
                self.misses += 1;
                telemetry::counter_add(Counter::StoreChunkMisses, 1);
                None
            }
        }
    }

    /// Records a freshly simulated chunk and appends it to the file.
    pub fn put(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()> {
        self.backend.append(id, stats)?;
        telemetry::counter_add(Counter::StoreChunksWritten, 1);
        Ok(())
    }

    /// Fraction of lookups served from disk since opening (0 when no
    /// lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Compacts the store in place: drops torn entries and duplicate
    /// chunk records (last write wins) and rewrites the remainder in
    /// canonical `(point, first, len)` order. Returns the number of
    /// entries dropped.
    ///
    /// The hit/miss tallies (and the process-global telemetry store
    /// counters) deliberately survive compaction — served-packet totals
    /// describe this run's lookups, not the file layout.
    pub fn compact(&mut self) -> std::io::Result<usize> {
        let (records, torn) = self.backend.load_all()?;
        let loaded = records.len();
        let mut dedup = std::collections::BTreeMap::new();
        for (id, stats) in records {
            dedup.insert(id, stats);
        }
        let kept: Vec<(ChunkId, HarqStats)> = dedup.into_iter().collect();
        let dropped = torn + (loaded - kept.len());
        self.backend.replace_all(&kept)?;
        Ok(dropped)
    }
}

/// Reads every parseable record of a store file **in file order,
/// keeping duplicates** (unlike [`ResultStore::open`], which keeps the
/// last write per [`ChunkId`]). Returns the records plus the count of
/// torn entries skipped — the merge/GC admin tooling reports both.
/// Extension-dispatching wrapper over [`StoreBackend::load_all`].
pub fn load_all(path: &Path) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)> {
    BackendKind::for_path(path).attach(path).load_all()
}

/// Lenient whole-store scan; extension-dispatching wrapper over
/// [`StoreBackend::load_all_lenient`].
pub fn load_all_lenient(path: &Path) -> std::io::Result<LenientLoad> {
    BackendKind::for_path(path).attach(path).load_all_lenient()
}

/// Writes a store file containing exactly `records`, in the given
/// order, replacing any previous content. Extension-dispatching wrapper
/// over [`StoreBackend::replace_all`].
pub fn write_records(path: &Path, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()> {
    BackendKind::for_path(path)
        .attach(path)
        .replace_all(records)
}

/// Losslessly copies a store between backends (`campaign-admin
/// export`/`import`): a strict whole-store read of `src` rewritten to
/// `dst`, each side in the format its extension names. Record order is
/// preserved, so converting there and back is byte-identical for any
/// gc'd (canonically ordered, duplicate-free) store. Returns the number
/// of records copied.
pub fn convert(src: &Path, dst: &Path) -> std::io::Result<usize> {
    let (records, _torn) = load_all(src)?;
    write_records(dst, &records)?;
    Ok(records.len())
}

/// The error a strict loader raises for a corrupt record — it names the
/// recovery tool because the strict loaders themselves refuse to read
/// past the damage. `loc` is the line number (JSONL) or byte offset
/// (segment) of the offending record.
pub(super) fn corrupt_error(path: &Path, loc: impl fmt::Display, why: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "{}:{loc}: corrupt store record ({why}); run `campaign-admin gc` to drop \
             corrupt records, or delete the record by hand",
            path.display(),
        ),
    )
}

/// Checks the cross-field stats invariants both backends enforce; a
/// violation means the record must not feed merged statistics.
pub(super) fn validate_record(id: ChunkId, stats: &HarqStats) -> Result<(), String> {
    if stats.packets != id.n_packets as u64 {
        return Err(format!(
            "stats cover {} packets but the chunk range claims {}",
            stats.packets, id.n_packets
        ));
    }
    if stats.delivered > stats.packets {
        return Err(format!(
            "delivered {} > packets {} would underflow the failure count",
            stats.delivered, stats.packets
        ));
    }
    Ok(())
}

/// The raw text following `"name":` up to the next `,`/`}`/`]`.
///
/// Only suitable for the flat records this module writes itself — no
/// nesting, no escaped strings.
fn json_raw_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a numeric field of a flat JSON object.
pub(crate) fn json_u64_field(json: &str, name: &str) -> Option<u64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a float field of a flat JSON object.
pub(crate) fn json_f64_field(json: &str, name: &str) -> Option<f64> {
    json_raw_field(json, name)?.parse().ok()
}

/// Parses a quoted string field of a flat JSON object (no escapes).
pub(crate) fn json_str_field(json: &str, name: &str) -> Option<String> {
    let raw = json_raw_field(json, name)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

/// Parses a boolean field of a flat JSON object.
pub(crate) fn json_bool_field(json: &str, name: &str) -> Option<bool> {
    match json_raw_field(json, name)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses a `[u64, …]` array field of a flat JSON object.
pub(crate) fn json_u64_array_field(json: &str, name: &str) -> Option<Vec<u64>> {
    let tag = format!("\"{name}\":[");
    let start = json.find(&tag)? + tag.len();
    let rest = &json[start..];
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
pub(crate) fn sample_stats() -> HarqStats {
    HarqStats {
        packets: 8,
        delivered: 6,
        transmissions: 14,
        info_bits: 120,
        failures_at: vec![3, 2, 2, 2],
    }
}

#[cfg(test)]
pub(crate) fn temp_store_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "campaign-store-test-{}-{tag}.{ext}",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use std::fs;

    use super::*;

    #[test]
    fn backend_kind_parsing_and_paths() {
        assert_eq!("jsonl".parse(), Ok(BackendKind::Jsonl));
        assert_eq!("indexed".parse(), Ok(BackendKind::Indexed));
        assert!("sqlite".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Jsonl.to_string(), "jsonl");
        assert_eq!(BackendKind::Indexed.to_string(), "indexed");
        assert_eq!(
            BackendKind::for_path(Path::new("a/fig6.jsonl")),
            BackendKind::Jsonl
        );
        assert_eq!(
            BackendKind::for_path(Path::new("a/fig6.shard-0-of-2.seg")),
            BackendKind::Indexed
        );
        assert_eq!(BackendKind::default(), BackendKind::Jsonl);
    }

    #[test]
    fn store_persists_and_resumes_on_both_backends() {
        for kind in [BackendKind::Jsonl, BackendKind::Indexed] {
            let path = temp_store_path("persist", kind.extension());
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(path.with_extension("seg.idx"));
            let id = ChunkId {
                point: 42,
                first_packet: 0,
                n_packets: 8,
            };
            {
                let mut store = ResultStore::open(&path, true).unwrap();
                assert_eq!(store.backend_kind(), kind);
                assert!(store.fetch(id).is_none());
                store.put(id, &sample_stats()).unwrap();
            }
            {
                let mut store = ResultStore::open(&path, true).unwrap();
                assert_eq!(store.len(), 1);
                assert_eq!(store.fetch(id).unwrap(), sample_stats());
                assert_eq!(store.hits, 1);
                assert!((store.hit_rate() - 1.0).abs() < 1e-12);
            }
            // --no-resume truncates.
            let store = ResultStore::open(&path, false).unwrap();
            assert!(store.is_empty());
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(path.with_extension("seg.idx"));
        }
    }

    #[test]
    fn compaction_preserves_hit_accounting() {
        for kind in [BackendKind::Jsonl, BackendKind::Indexed] {
            let path = temp_store_path("compact", kind.extension());
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(path.with_extension("seg.idx"));
            let a = ChunkId {
                point: 7,
                first_packet: 0,
                n_packets: 8,
            };
            let b = ChunkId {
                point: 7,
                first_packet: 8,
                n_packets: 8,
            };
            let mut store = ResultStore::open(&path, true).unwrap();
            store.put(a, &sample_stats()).unwrap();
            store.put(a, &sample_stats()).unwrap(); // duplicate append
            store.put(b, &sample_stats()).unwrap();
            assert!(store.fetch(a).is_some());
            assert!(store
                .fetch(ChunkId {
                    point: 9,
                    first_packet: 0,
                    n_packets: 8,
                })
                .is_none());
            let (hits, misses, rate) = (store.hits, store.misses, store.hit_rate());

            let dropped = store.compact().unwrap();
            assert_eq!(dropped, 1, "one duplicate dropped");
            assert_eq!(store.len(), 2);
            assert_eq!((store.hits, store.misses), (hits, misses));
            assert!((store.hit_rate() - rate).abs() < 1e-12);
            // Served lookups keep working against the compacted file.
            assert_eq!(store.fetch(b).unwrap(), sample_stats());

            // And the compacted store reopens cleanly.
            let reopened = ResultStore::open(&path, true).unwrap();
            assert_eq!(reopened.len(), 2);
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(path.with_extension("seg.idx"));
        }
    }

    #[test]
    fn convert_round_trips_between_backends() {
        let jsonl = temp_store_path("convert", "jsonl");
        let seg = temp_store_path("convert", "seg");
        let back = temp_store_path("convert-back", "jsonl");
        for p in [&jsonl, &seg, &back] {
            let _ = fs::remove_file(p);
        }
        let _ = fs::remove_file(seg.with_extension("seg.idx"));
        let records: Vec<(ChunkId, HarqStats)> = (0..5)
            .map(|i| {
                (
                    ChunkId {
                        point: 100 + i,
                        first_packet: 0,
                        n_packets: 8,
                    },
                    sample_stats(),
                )
            })
            .collect();
        write_records(&jsonl, &records).unwrap();
        assert_eq!(convert(&jsonl, &seg).unwrap(), 5);
        let (seg_records, torn) = load_all(&seg).unwrap();
        assert_eq!(seg_records, records);
        assert_eq!(torn, 0);
        assert_eq!(convert(&seg, &back).unwrap(), 5);
        // export → import → export is byte-identical.
        assert_eq!(fs::read(&jsonl).unwrap(), fs::read(&back).unwrap());
        for p in [&jsonl, &seg, &back] {
            let _ = fs::remove_file(p);
        }
        let _ = fs::remove_file(seg.with_extension("seg.idx"));
    }

    #[test]
    fn json_field_helpers() {
        let j = "{\"a\":3,\"b\":\"0f\",\"c\":[1, 2,3],\"d\":2.5,\"e\":true}";
        assert_eq!(json_u64_field(j, "a"), Some(3));
        assert_eq!(json_str_field(j, "b").as_deref(), Some("0f"));
        assert_eq!(json_u64_array_field(j, "c"), Some(vec![1, 2, 3]));
        assert_eq!(json_f64_field(j, "d"), Some(2.5));
        assert_eq!(json_bool_field(j, "e"), Some(true));
        assert_eq!(json_u64_field(j, "missing"), None);
        assert_eq!(json_bool_field(j, "a"), None);
    }

    #[test]
    fn unreadable_store_is_an_error_not_a_miss() {
        // A store path that exists but cannot be read as a store file
        // (here: a directory) must surface an io::Error — treating it
        // as an empty store would re-simulate and then double-append
        // every chunk.
        let dir = std::env::temp_dir().join(format!(
            "campaign-store-test-{}-unreadable",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(ResultStore::open(&dir, true).is_err());
        assert!(load_all(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
