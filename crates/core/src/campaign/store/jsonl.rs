//! The JSONL store backend: one hand-written JSON line per chunk
//! record. This is the interchange/debug format — human-greppable,
//! trivially diffable, and what `campaign-admin export` emits — at the
//! cost of parsing the whole file on every open.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use hspa_phy::harq::HarqStats;

use super::{
    corrupt_error, json_str_field, json_u64_array_field, json_u64_field, validate_record,
    BackendKind, ChunkId, LenientLoad, StoreBackend,
};

/// Append-only JSONL store of per-chunk [`HarqStats`].
#[derive(Debug)]
pub struct JsonlBackend {
    path: PathBuf,
    // determinism: unordered-ok(keyed access only; never iterated — exports re-read the file in line order)
    records: HashMap<ChunkId, HarqStats>,
}

impl JsonlBackend {
    /// Opens (or creates) the store file, loading every valid record.
    /// With `resume == false` an existing file is truncated first.
    pub fn open(path: &Path, resume: bool) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // `Path::exists` swallows stat errors (it answers `false` for a
        // permission-denied path); query the metadata directly so those
        // errors are distinguishable from a genuinely absent store.
        let exists = match fs::metadata(path) {
            Ok(_) => true,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        if !resume && exists {
            fs::remove_file(path)?;
        }
        if !(resume && exists) {
            // Materialize an empty store eagerly: a campaign whose every
            // chunk is a store hit (or whose shard owns no points) still
            // leaves a well-formed `.jsonl` behind, so shard artifact
            // collection and `campaign-admin merge` never chase a file
            // that only the first miss would have created.
            File::create(path)?;
        }
        // determinism: unordered-ok(keyed access only; never iterated)
        let mut records = HashMap::new();
        if resume && exists {
            let reader = BufReader::new(File::open(path)?);
            for (line_no, line) in reader.lines().enumerate() {
                let line = line?;
                // Torn tails of interrupted runs are skipped, not fatal;
                // records that parse but violate the stats invariants
                // are corruption and must not feed merged statistics.
                match classify_record(&line) {
                    Ok((id, stats)) => {
                        records.insert(id, stats);
                    }
                    Err(LineIssue::Torn) => {
                        crate::telemetry::counter_add(
                            crate::telemetry::Counter::StoreTornTailsDropped,
                            1,
                        );
                    }
                    Err(LineIssue::Corrupt(why)) => {
                        return Err(corrupt_error(path, line_no + 1, &why));
                    }
                }
            }
            // A killed writer can leave the final line without its
            // newline. Terminate it now, or the first fresh append of
            // this (rescue) run would concatenate onto the torn tail
            // and turn a valid new record into a second torn line.
            terminate_torn_tail(path)?;
        }
        Ok(Self {
            path: path.to_path_buf(),
            records,
        })
    }

    /// Attaches to a path for the whole-store scan surface without
    /// loading anything.
    pub fn attach(path: &Path) -> Self {
        Self {
            path: path.to_path_buf(),
            // determinism: unordered-ok(keyed access only; never iterated)
            records: HashMap::new(),
        }
    }
}

impl StoreBackend for JsonlBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Jsonl
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn get(&mut self, id: ChunkId) -> Option<HarqStats> {
        self.records.get(&id).cloned()
    }

    fn append(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let line = encode_record(id, stats);
        if crate::failpoint::armed() {
            let ctx = self.path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if crate::failpoint::should_fire(crate::failpoint::Site::AppendTorn, ctx) {
                // Tear the record mid-write and die, like a SIGKILL
                // landing inside `writeln!`: the half record becomes the
                // file's tail. Continuing instead of exiting would weld
                // the next append onto the torn prefix — precisely the
                // corruption the resume path is hardened against.
                file.write_all(&line.as_bytes()[..line.len() / 2])?;
                file.flush()?;
                std::process::exit(43);
            }
        }
        writeln!(file, "{line}")?;
        self.records.insert(id, stats.clone());
        Ok(())
    }

    fn load_all(&self) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)> {
        let reader = BufReader::new(File::open(&self.path)?);
        let mut records = Vec::new();
        let mut malformed = 0usize;
        for (line_no, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match classify_record(&line) {
                Ok(rec) => records.push(rec),
                Err(LineIssue::Torn) => malformed += 1,
                Err(LineIssue::Corrupt(why)) => {
                    return Err(corrupt_error(&self.path, line_no + 1, &why))
                }
            }
        }
        Ok((records, malformed))
    }

    fn load_all_lenient(&self) -> std::io::Result<LenientLoad> {
        let reader = BufReader::new(File::open(&self.path)?);
        let mut load = LenientLoad::default();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match classify_record(&line) {
                Ok(rec) => load.records.push(rec),
                Err(LineIssue::Torn) => load.torn_lines += 1,
                Err(LineIssue::Corrupt(_)) => load.corrupt_records += 1,
            }
        }
        Ok(load)
    }

    fn replace_all(&mut self, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        for (id, stats) in records {
            out.push_str(&encode_record(*id, stats));
            out.push('\n');
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.path)?;
        self.records = records.iter().cloned().collect();
        Ok(())
    }
}

/// Renders one chunk record as a single JSON line.
fn encode_record(id: ChunkId, stats: &HarqStats) -> String {
    let failures: Vec<String> = stats.failures_at.iter().map(|f| f.to_string()).collect();
    format!(
        "{{\"point\":\"{:016x}\",\"first\":{},\"len\":{},\"packets\":{},\"delivered\":{},\"transmissions\":{},\"info_bits\":{},\"failures_at\":[{}]}}",
        id.point,
        id.first_packet,
        id.n_packets,
        stats.packets,
        stats.delivered,
        stats.transmissions,
        stats.info_bits,
        failures.join(",")
    )
}

/// Appends a newline to `path` if its last byte is not one (the tail a
/// `SIGKILL` mid-`writeln` leaves), so subsequent appends start on a
/// fresh line. The torn line itself stays in place — it is skipped on
/// every load and `campaign-admin gc` drops it.
fn terminate_torn_tail(path: &Path) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = OpenOptions::new().read(true).append(true).open(path)?;
    if file.seek(SeekFrom::End(0))? == 0 {
        return Ok(());
    }
    file.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    file.read_exact(&mut last)?;
    if last != [b'\n'] {
        file.write_all(b"\n")?;
    }
    Ok(())
}

/// Why a store line was rejected: torn lines (truncated writes — a
/// field is missing or unparseable) are routine and tolerated; corrupt
/// records parse fully but violate the stats invariants, so using them
/// would poison merged statistics.
enum LineIssue {
    Torn,
    Corrupt(String),
}

/// Parses the raw fields of a record line; `None` when a field is
/// missing or unparseable (torn tail). Invariants between the fields
/// are **not** checked here — that is [`classify_record`]'s job, so the
/// strict loaders can distinguish a routine torn line from corruption.
fn parse_record(line: &str) -> Option<(ChunkId, HarqStats)> {
    let point = u64::from_str_radix(&json_str_field(line, "point")?, 16).ok()?;
    let id = ChunkId {
        point,
        first_packet: json_u64_field(line, "first")? as usize,
        n_packets: json_u64_field(line, "len")? as usize,
    };
    let stats = HarqStats {
        packets: json_u64_field(line, "packets")?,
        delivered: json_u64_field(line, "delivered")?,
        transmissions: json_u64_field(line, "transmissions")?,
        info_bits: json_u64_field(line, "info_bits")?,
        failures_at: json_u64_array_field(line, "failures_at")?,
    };
    Some((id, stats))
}

/// Parses and range-validates one store line.
fn classify_record(line: &str) -> Result<(ChunkId, HarqStats), LineIssue> {
    let (id, stats) = parse_record(line).ok_or(LineIssue::Torn)?;
    validate_record(id, &stats).map_err(LineIssue::Corrupt)?;
    Ok((id, stats))
}

#[cfg(test)]
mod tests {
    use super::super::{load_all, load_all_lenient, sample_stats, temp_store_path, write_records};
    use super::*;
    use crate::campaign::store::ResultStore;

    #[test]
    fn record_roundtrip() {
        let id = ChunkId {
            point: 0xdead_beef_0123_4567,
            first_packet: 32,
            n_packets: 8,
        };
        let stats = sample_stats();
        let line = encode_record(id, &stats);
        let (rid, rstats) = parse_record(&line).expect("parses");
        assert_eq!(rid, id);
        assert_eq!(rstats, stats);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(parse_record("").is_none());
        assert!(parse_record("{\"point\":\"zz\"}").is_none());
        // Truncated tail (interrupted write).
        let id = ChunkId {
            point: 1,
            first_packet: 0,
            n_packets: 8,
        };
        let full = encode_record(id, &sample_stats());
        assert!(parse_record(&full[..full.len() / 2]).is_none());
        assert!(matches!(
            classify_record(&full[..full.len() / 2]),
            Err(LineIssue::Torn)
        ));
    }

    #[test]
    fn invariant_violations_classify_as_corrupt_not_torn() {
        let id = ChunkId {
            point: 1,
            first_packet: 0,
            n_packets: 8,
        };
        // Packet-count mismatch against the chunk range.
        let mut wrong_len = sample_stats();
        wrong_len.packets = 9;
        assert!(matches!(
            classify_record(&encode_record(id, &wrong_len)),
            Err(LineIssue::Corrupt(_))
        ));
        // delivered > packets would underflow `packets - delivered`.
        let mut inverted = sample_stats();
        inverted.delivered = inverted.packets + 1;
        let Err(LineIssue::Corrupt(why)) = classify_record(&encode_record(id, &inverted)) else {
            panic!("delivered > packets must classify as corrupt");
        };
        assert!(why.contains("underflow"), "{why}");
    }

    #[test]
    fn corrupt_records_are_a_load_error_pointing_at_gc() {
        let path = temp_store_path("corrupt", "jsonl");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 3,
            first_packet: 0,
            n_packets: 8,
        };
        let mut bad = sample_stats();
        bad.delivered = bad.packets + 4;
        let good = encode_record(
            ChunkId {
                point: 4,
                first_packet: 0,
                n_packets: 8,
            },
            &sample_stats(),
        );
        fs::write(&path, format!("{good}\n{}\n", encode_record(id, &bad))).unwrap();

        // Both strict loaders refuse, naming the recovery tool and the
        // offending line.
        let err = load_all(&path).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");
        assert!(err.to_string().contains(":2:"), "{err}");
        let err = ResultStore::open(&path, true).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");

        // The lenient loader (gc's entry) drops and counts it.
        let load = load_all_lenient(&path).unwrap();
        assert_eq!(load.records.len(), 1);
        assert_eq!((load.torn_lines, load.corrupt_records), (0, 1));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resumed_store_never_appends_onto_a_torn_tail() {
        // A SIGKILL mid-writeln leaves a final line without its
        // newline; a rescue leg resuming that store must not weld its
        // first fresh record onto the torn prefix.
        let path = temp_store_path("torn-tail", "jsonl");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 9,
            first_packet: 0,
            n_packets: 8,
        };
        let torn = &encode_record(id, &sample_stats())[..30];
        fs::write(&path, torn).unwrap(); // no trailing newline
        let fresh = ChunkId {
            point: 10,
            first_packet: 0,
            n_packets: 8,
        };
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert!(store.is_empty(), "torn line is not a record");
            store.put(fresh, &sample_stats()).unwrap();
        }
        let (records, malformed) = load_all(&path).unwrap();
        assert_eq!(malformed, 1, "torn prefix stays torn");
        assert_eq!(records, vec![(fresh, sample_stats())]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_all_keeps_duplicates_and_counts_malformed() {
        let path = temp_store_path("load-all", "jsonl");
        let _ = fs::remove_file(&path);
        let id = ChunkId {
            point: 7,
            first_packet: 0,
            n_packets: 8,
        };
        let mut store = ResultStore::open(&path, true).unwrap();
        store.put(id, &sample_stats()).unwrap();
        store.put(id, &sample_stats()).unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{torn"))
            .unwrap();
        let (records, malformed) = load_all(&path).unwrap();
        assert_eq!(records.len(), 2, "duplicates preserved");
        assert_eq!(malformed, 1);

        // write_records round-trips the exact record list.
        write_records(&path, &records[..1]).unwrap();
        let (rewritten, malformed) = load_all(&path).unwrap();
        assert_eq!(rewritten, records[..1]);
        assert_eq!(malformed, 0);
        let _ = fs::remove_file(&path);
    }
}
