//! The indexed segment store backend: append-only binary frames plus a
//! persistent point-key index sidecar, so opening a store costs the
//! un-indexed tail (usually nothing) instead of a whole-file parse, and
//! a chunk lookup is one seek + one frame read.
//!
//! ## Segment file (`<name>.seg`)
//!
//! ```text
//! magic "RSEG0001" (8 bytes)
//! frame*: payload_len u32 LE | crc u32 LE (FNV-1a 32 of payload) | payload
//! payload: point, first, len, packets, delivered, transmissions,
//!          info_bits, n_failures (u64 LE each), then n_failures × u64 LE
//! ```
//!
//! ## Index sidecar (`<name>.seg.idx`)
//!
//! ```text
//! magic "RIDX0001" (8 bytes)
//! covered u64 LE — segment bytes the entries below account for
//! entry*: point u64 | first u64 | len u64 | frame offset u64 (LE)
//! ```
//!
//! The sidecar is a **checkpoint**, not a source of truth: appends
//! during a run touch only the segment file, and the next open replays
//! the segment tail past `covered`, then rewrites the sidecar
//! atomically. A missing, stale or damaged sidecar merely degrades one
//! open to a full segment scan — it can never lose or corrupt records.
//! A torn trailing frame (a `SIGKILL` mid-append) is truncated away on
//! open so fresh appends never weld onto garbage; a frame whose
//! checksum or stats invariants fail is corruption and handled exactly
//! like the JSONL backend: strict scans error pointing at
//! `campaign-admin gc`, the lenient scan drops and counts it.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hspa_phy::harq::HarqStats;

use super::{corrupt_error, validate_record, BackendKind, ChunkId, LenientLoad, StoreBackend};

const SEG_MAGIC: &[u8; 8] = b"RSEG0001";
const IDX_MAGIC: &[u8; 8] = b"RIDX0001";
/// Bytes before the first frame (the magic).
const SEG_HEADER: u64 = 8;
/// Frame header: payload length + checksum.
const FRAME_HEADER: usize = 8;
/// Fixed payload fields before the failures array.
const PAYLOAD_FIXED: usize = 64;
/// Upper bound on a plausible payload — anything larger is damage, not
/// a record (chunks are at most a few hundred packets).
const MAX_PAYLOAD: usize = 1 << 20;

/// Indexed binary segment store of per-chunk [`HarqStats`].
#[derive(Debug)]
pub struct SegmentBackend {
    path: PathBuf,
    index_path: PathBuf,
    /// Read handle into the segment file; `None` until opened for
    /// campaign use (attached backends only serve whole-store scans).
    file: Option<File>,
    /// Indexed frames in segment order, duplicates kept.
    frames: Vec<(ChunkId, u64)>,
    /// Latest frame offset per chunk (resume semantics: last write wins).
    // determinism: unordered-ok(keyed access only; never iterated — scans walk the ordered frames vec)
    lookup: HashMap<ChunkId, u64>,
    /// Logical end of the segment — the next append offset.
    end: u64,
}

impl SegmentBackend {
    /// Opens (or creates) the segment store: loads the index sidecar,
    /// replays any segment tail it does not cover, truncates a torn
    /// trailing frame, and checkpoints the refreshed index. With
    /// `resume == false` an existing store (and its sidecar) is
    /// truncated first.
    pub fn open(path: &Path, resume: bool) -> std::io::Result<Self> {
        let mut backend = Self::attach(path);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let exists = match fs::metadata(path) {
            Ok(m) => m.len() > 0,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        if !resume && exists {
            fs::remove_file(path)?;
            let _ = fs::remove_file(&backend.index_path);
        }
        if !(resume && exists) {
            // Materialize an empty store eagerly, same as the JSONL
            // backend: shard artifact collection and merge never chase
            // a file only the first miss would have created.
            fs::write(path, SEG_MAGIC)?;
            backend.end = SEG_HEADER;
            backend.write_index()?;
            backend.file = Some(File::open(path)?);
            return Ok(backend);
        }

        let seg_len = fs::metadata(path)?.len();
        {
            let mut f = File::open(path)?;
            let mut magic = [0u8; 8];
            if seg_len < SEG_HEADER || {
                f.read_exact(&mut magic)?;
                &magic != SEG_MAGIC
            } {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: not a segment store (bad magic)", path.display()),
                ));
            }
        }

        // The sidecar is advisory: any damage falls back to covered=0,
        // i.e. a full segment scan.
        let (mut frames, covered) = match backend.read_index(seg_len) {
            Some(ok) => ok,
            None => (Vec::new(), SEG_HEADER),
        };

        // Replay the tail the checkpoint does not cover. Strict
        // semantics, like the JSONL resume load: a torn trailing frame
        // is truncated away, a corrupt frame is an error naming gc.
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(covered))?;
        let mut tail = Vec::new();
        file.read_to_end(&mut tail)?;
        let mut pos = 0usize;
        let mut truncate_at = None;
        while pos < tail.len() {
            match read_frame(&tail[pos..]) {
                FrameRead::Ok(id, stats, consumed) => {
                    validate_record(id, &stats)
                        .map_err(|why| corrupt_error(path, covered + pos as u64, &why))?;
                    frames.push((id, covered + pos as u64));
                    pos += consumed;
                }
                FrameRead::Torn => {
                    truncate_at = Some(covered + pos as u64);
                    break;
                }
                FrameRead::Corrupt(why) => {
                    return Err(corrupt_error(path, covered + pos as u64, &why));
                }
            }
        }
        backend.end = truncate_at.unwrap_or(seg_len);
        if truncate_at.is_some() {
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(backend.end)?;
            crate::telemetry::counter_add(crate::telemetry::Counter::StoreTornTailsDropped, 1);
        }

        // Frames inherited from the sidecar are trusted here and
        // checksum-verified at fetch time; a stale entry is a warned
        // miss, never corruption. Resume semantics: the lookup keeps
        // the last write per chunk, while the frame list keeps every
        // frame so the sidecar stays duplicate-preserving.
        backend.lookup = frames.iter().copied().collect();
        backend.frames = frames;
        if covered != backend.end {
            // Only checkpoint when the replay learned something; a
            // sidecar that already covers the segment is left alone,
            // keeping a cold open free of writes.
            backend.write_index()?;
        }
        backend.file = Some(File::open(path)?);
        Ok(backend)
    }

    /// Attaches to a path for the whole-store scan surface without
    /// touching the filesystem.
    pub fn attach(path: &Path) -> Self {
        Self {
            path: path.to_path_buf(),
            index_path: path.with_extension("seg.idx"),
            file: None,
            frames: Vec::new(),
            // determinism: unordered-ok(keyed access only; never iterated)
            lookup: HashMap::new(),
            end: SEG_HEADER,
        }
    }

    /// Reads the index sidecar; `None` when it is missing, malformed,
    /// or claims to cover more segment than exists (all of which just
    /// degrade to a full scan).
    fn read_index(&self, seg_len: u64) -> Option<(Vec<(ChunkId, u64)>, u64)> {
        let bytes = fs::read(&self.index_path).ok()?;
        if bytes.len() < 16 || &bytes[..8] != IDX_MAGIC {
            return None;
        }
        let covered = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        if covered < SEG_HEADER || covered > seg_len {
            return None;
        }
        let mut frames = Vec::new();
        // A partial trailing entry (torn sidecar write) is dropped with
        // the whole sidecar: entry count and checkpoint must agree.
        let body = &bytes[16..];
        if body.len() % 32 != 0 {
            return None;
        }
        for entry in body.chunks_exact(32) {
            // lint: allow(no-unwrap, infallible: chunks_exact(32) guarantees every 8-byte sub-slice exists)
            let word = |i: usize| u64::from_le_bytes(entry[i * 8..(i + 1) * 8].try_into().unwrap());
            let id = ChunkId {
                point: word(0),
                first_packet: word(1) as usize,
                n_packets: word(2) as usize,
            };
            let offset = word(3);
            if offset < SEG_HEADER || offset >= covered {
                return None;
            }
            frames.push((id, offset));
        }
        Some((frames, covered))
    }

    /// Atomically rewrites the index sidecar to checkpoint the current
    /// in-memory frame list.
    fn write_index(&self) -> std::io::Result<()> {
        if crate::failpoint::armed() {
            let ctx = self
                .index_path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("");
            if crate::failpoint::should_fire(crate::failpoint::Site::IndexCorrupt, ctx) {
                // Silent sidecar rot: a corrupt checkpoint must degrade
                // the next open to a full scan, never lose a record.
                fs::write(&self.index_path, b"RIDX0001 rotted checkpoint")?;
                return Ok(());
            }
        }
        let mut out = Vec::with_capacity(16 + self.frames.len() * 32);
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(&self.end.to_le_bytes());
        for &(id, offset) in &self.frames {
            out.extend_from_slice(&id.point.to_le_bytes());
            out.extend_from_slice(&(id.first_packet as u64).to_le_bytes());
            out.extend_from_slice(&(id.n_packets as u64).to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        let mut tmp = self.index_path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.index_path)
    }

    /// Scans every frame of the segment file. `strict` errors on the
    /// first corrupt frame; lenient counts it and, when the frame
    /// boundary is still trustworthy, keeps scanning.
    fn scan(&self, strict: bool) -> std::io::Result<LenientLoad> {
        let bytes = fs::read(&self.path)?;
        if bytes.len() < SEG_HEADER as usize || &bytes[..8] != SEG_MAGIC {
            if bytes.is_empty() {
                // An eagerly-created-but-never-written store from an
                // older interrupted run: no records, nothing torn.
                return Ok(LenientLoad::default());
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: not a segment store (bad magic)", self.path.display()),
            ));
        }
        let mut load = LenientLoad::default();
        let mut pos = SEG_HEADER as usize;
        while pos < bytes.len() {
            match read_frame(&bytes[pos..]) {
                FrameRead::Ok(id, stats, consumed) => {
                    match validate_record(id, &stats) {
                        Ok(()) => load.records.push((id, stats)),
                        Err(why) if strict => {
                            return Err(corrupt_error(&self.path, pos, &why));
                        }
                        Err(_) => load.corrupt_records += 1,
                    }
                    pos += consumed;
                }
                FrameRead::Torn => {
                    load.torn_lines += 1;
                    break;
                }
                FrameRead::Corrupt(why) => {
                    if strict {
                        return Err(corrupt_error(&self.path, pos, &why));
                    }
                    load.corrupt_records += 1;
                    // The length field still frames the damage, so the
                    // scan can step over it to the next boundary.
                    let payload_len =
                        // lint: allow(no-unwrap, infallible: a 4-byte slice always converts to [u8; 4])
                        u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += FRAME_HEADER + payload_len;
                }
            }
        }
        Ok(load)
    }
}

impl StoreBackend for SegmentBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Indexed
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn len(&self) -> usize {
        self.lookup.len()
    }

    fn get(&mut self, id: ChunkId) -> Option<HarqStats> {
        let offset = *self.lookup.get(&id)?;
        let file = self.file.as_mut()?;
        // Lazy fetch: one seek + one frame read, checksum-verified. A
        // frame that fails here is a warned miss, not an error — the
        // chunk is deterministically re-simulated to the identical
        // stats, so campaign output is unaffected.
        let read = (|| -> std::io::Result<FrameRead> {
            file.seek(SeekFrom::Start(offset))?;
            let mut header = [0u8; FRAME_HEADER];
            file.read_exact(&mut header)?;
            // lint: allow(no-unwrap, infallible: a 4-byte slice always converts to [u8; 4])
            let payload_len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            if payload_len > MAX_PAYLOAD {
                return Ok(FrameRead::Corrupt("implausible frame length".into()));
            }
            let mut frame = vec![0u8; FRAME_HEADER + payload_len];
            frame[..FRAME_HEADER].copy_from_slice(&header);
            file.read_exact(&mut frame[FRAME_HEADER..])?;
            Ok(read_frame(&frame))
        })();
        match read {
            Ok(FrameRead::Ok(frame_id, stats, _)) if frame_id == id => Some(stats),
            _ => {
                crate::telemetry::counter_add(crate::telemetry::Counter::StoreIndexStaleMisses, 1);
                eprintln!(
                    "warning: {}: unreadable frame at offset {offset} for chunk \
                     {:016x}/{}+{}; treating as a store miss",
                    self.path.display(),
                    id.point,
                    id.first_packet,
                    id.n_packets
                );
                None
            }
        }
    }

    fn append(&mut self, id: ChunkId, stats: &HarqStats) -> std::io::Result<()> {
        let frame = encode_frame(id, stats);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if crate::failpoint::armed() {
            let ctx = self.path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if crate::failpoint::should_fire(crate::failpoint::Site::AppendTorn, ctx) {
                // Tear the frame mid-write and die, like a SIGKILL
                // mid-append: the half frame becomes the segment tail,
                // which the next open truncates away.
                file.write_all(&frame[..frame.len() / 2])?;
                file.flush()?;
                std::process::exit(43);
            }
        }
        file.write_all(&frame)?;
        self.frames.push((id, self.end));
        self.lookup.insert(id, self.end);
        self.end += frame.len() as u64;
        Ok(())
    }

    fn load_all(&self) -> std::io::Result<(Vec<(ChunkId, HarqStats)>, usize)> {
        let load = self.scan(true)?;
        Ok((load.records, load.torn_lines))
    }

    fn load_all_lenient(&self) -> std::io::Result<LenientLoad> {
        self.scan(false)
    }

    fn replace_all(&mut self, records: &[(ChunkId, HarqStats)]) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = Vec::from(*SEG_MAGIC);
        let mut frames = Vec::with_capacity(records.len());
        for (id, stats) in records {
            frames.push((*id, out.len() as u64));
            out.extend_from_slice(&encode_frame(*id, stats));
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, &self.path)?;
        self.end = out.len() as u64;
        self.lookup = frames.iter().copied().collect();
        self.frames = frames;
        self.write_index()?;
        if self.file.is_some() {
            // The rename orphaned the old inode behind the read handle.
            self.file = Some(File::open(&self.path)?);
        }
        Ok(())
    }
}

/// One attempt to decode a frame from the head of `bytes`.
enum FrameRead {
    /// A valid frame: id, stats, and the bytes it consumed.
    Ok(ChunkId, HarqStats, usize),
    /// Not enough bytes for a whole frame — the torn tail of an
    /// interrupted append.
    Torn,
    /// A complete frame that fails its checksum or shape checks.
    Corrupt(String),
}

fn read_frame(bytes: &[u8]) -> FrameRead {
    if bytes.len() < FRAME_HEADER {
        return FrameRead::Torn;
    }
    // lint: allow(no-unwrap, infallible: the FRAME_HEADER length check above guarantees both 4-byte slices)
    let payload_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    // lint: allow(no-unwrap, infallible: the FRAME_HEADER length check above guarantees both 4-byte slices)
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return FrameRead::Corrupt(format!("implausible frame length {payload_len}"));
    }
    if bytes.len() < FRAME_HEADER + payload_len {
        return FrameRead::Torn;
    }
    let payload = &bytes[FRAME_HEADER..FRAME_HEADER + payload_len];
    if fnv1a32(payload) != crc {
        return FrameRead::Corrupt("frame checksum mismatch".into());
    }
    if payload_len < PAYLOAD_FIXED || !(payload_len - PAYLOAD_FIXED).is_multiple_of(8) {
        return FrameRead::Corrupt(format!("malformed frame payload of {payload_len} bytes"));
    }
    // lint: allow(no-unwrap, infallible: the payload shape checks above guarantee every 8-byte word slice)
    let word = |i: usize| u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap());
    let n_failures = word(7) as usize;
    if n_failures * 8 != payload_len - PAYLOAD_FIXED {
        return FrameRead::Corrupt(format!(
            "frame claims {n_failures} failure entries in a {payload_len}-byte payload"
        ));
    }
    let id = ChunkId {
        point: word(0),
        first_packet: word(1) as usize,
        n_packets: word(2) as usize,
    };
    let stats = HarqStats {
        packets: word(3),
        delivered: word(4),
        transmissions: word(5),
        info_bits: word(6),
        failures_at: (0..n_failures).map(|i| word(8 + i)).collect(),
    };
    FrameRead::Ok(id, stats, FRAME_HEADER + payload_len)
}

fn encode_frame(id: ChunkId, stats: &HarqStats) -> Vec<u8> {
    let mut payload = Vec::with_capacity(PAYLOAD_FIXED + stats.failures_at.len() * 8);
    for word in [
        id.point,
        id.first_packet as u64,
        id.n_packets as u64,
        stats.packets,
        stats.delivered,
        stats.transmissions,
        stats.info_bits,
        stats.failures_at.len() as u64,
    ] {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    for &f in &stats.failures_at {
        payload.extend_from_slice(&f.to_le_bytes());
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// FNV-1a 32 — the sibling of the 64-bit point-fingerprint hash.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash = 0x811c_9dc5u32;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::super::{
        load_all, load_all_lenient, sample_stats, temp_store_path, write_records, ResultStore,
    };
    use super::*;

    fn clean(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(path.with_extension("seg.idx"));
    }

    fn id(point: u64, first: usize) -> ChunkId {
        ChunkId {
            point,
            first_packet: first,
            n_packets: 8,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(id(0xdead_beef, 32), &sample_stats());
        let FrameRead::Ok(rid, rstats, consumed) = read_frame(&frame) else {
            panic!("frame must decode");
        };
        assert_eq!(rid, id(0xdead_beef, 32));
        assert_eq!(rstats, sample_stats());
        assert_eq!(consumed, frame.len());
        // Truncated prefixes are torn, never corrupt.
        for cut in 0..frame.len() {
            assert!(matches!(read_frame(&frame[..cut]), FrameRead::Torn));
        }
        // A flipped payload byte is a checksum failure.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() ^= 0x5a;
        assert!(matches!(read_frame(&bad), FrameRead::Corrupt(_)));
    }

    #[test]
    fn open_replays_only_the_unindexed_tail_and_truncates_torn_frames() {
        let path = temp_store_path("seg-tail", "seg");
        clean(&path);
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            store.put(id(1, 0), &sample_stats()).unwrap();
        }
        // Appends past the checkpoint (simulating a run that died before
        // any reopen), plus a torn half-frame from a SIGKILL mid-append.
        let full = encode_frame(id(2, 0), &sample_stats());
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&full).unwrap();
        f.write_all(&full[..full.len() / 2]).unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();

        let mut store = ResultStore::open(&path, true).unwrap();
        assert_eq!(store.len(), 2, "tail frame replayed");
        assert_eq!(store.fetch(id(2, 0)).unwrap(), sample_stats());
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            before - (full.len() as u64 - full.len() as u64 / 2),
            "torn tail truncated away"
        );
        // Fresh appends after the truncation read back cleanly.
        store.put(id(3, 0), &sample_stats()).unwrap();
        drop(store);
        let (records, torn) = load_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(torn, 0);
        clean(&path);
    }

    #[test]
    fn damaged_or_missing_sidecar_degrades_to_a_full_scan() {
        let path = temp_store_path("seg-noidx", "seg");
        clean(&path);
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            store.put(id(5, 0), &sample_stats()).unwrap();
            store.put(id(5, 8), &sample_stats()).unwrap();
        }
        let idx = path.with_extension("seg.idx");
        fs::remove_file(&idx).unwrap();
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(store.fetch(id(5, 8)).unwrap(), sample_stats());
        }
        assert!(fs::metadata(&idx).unwrap().len() > 16, "sidecar rebuilt");
        // Garbage sidecar: same degradation, no error.
        fs::write(&idx, b"RIDX0001garbage").unwrap();
        let store = ResultStore::open(&path, true).unwrap();
        assert_eq!(store.len(), 2);
        clean(&path);
    }

    #[test]
    fn corrupt_frames_error_strictly_and_gc_leniently() {
        let path = temp_store_path("seg-corrupt", "seg");
        clean(&path);
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            store.put(id(6, 0), &sample_stats()).unwrap();
        }
        // An invariant-violating record (delivered > packets) with a
        // valid checksum: parses, but must never feed statistics.
        let mut bad = sample_stats();
        bad.delivered = bad.packets + 2;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&encode_frame(id(7, 0), &bad)).unwrap();
        f.write_all(&encode_frame(id(8, 0), &sample_stats()))
            .unwrap();
        drop(f);

        let err = load_all(&path).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");
        let err = ResultStore::open(&path, true).unwrap_err();
        assert!(err.to_string().contains("campaign-admin gc"), "{err}");

        let load = load_all_lenient(&path).unwrap();
        assert_eq!(load.records.len(), 2, "good frames survive");
        assert_eq!((load.torn_lines, load.corrupt_records), (0, 1));

        // gc's rewrite path: write back only the good records.
        write_records(&path, &load.records).unwrap();
        let (records, torn) = load_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(torn, 0);
        let store = ResultStore::open(&path, true).unwrap();
        assert_eq!(store.len(), 2);
        clean(&path);
    }

    #[test]
    fn stale_sidecar_entry_is_a_warned_miss_not_an_error() {
        let path = temp_store_path("seg-stale", "seg");
        clean(&path);
        {
            let mut store = ResultStore::open(&path, true).unwrap();
            store.put(id(9, 0), &sample_stats()).unwrap();
        }
        // Appends never touch the sidecar; a reopen replays the tail
        // and checkpoints the index so it now covers the frame.
        drop(ResultStore::open(&path, true).unwrap());
        // Flip a payload byte behind the sidecar's back: the index
        // still points at the frame, the checksum no longer matches.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        // Open trusts the sidecar (no tail to replay)…
        let mut store = ResultStore::open(&path, true).unwrap();
        assert_eq!(store.len(), 1);
        // …and the damage surfaces as a fetch miss, not a panic.
        assert!(store.fetch(id(9, 0)).is_none());
        assert_eq!(store.misses, 1);
        clean(&path);
    }
}
