//! Typed query filters over campaign results — the filter-builder
//! surface behind `campaign-admin query`. Filters select manifest
//! points (by key, SNR range, accuracy tier, convergence state); the
//! matching point keys then drive indexed per-point store lookups, so
//! a query touches only the records it selects.

use crate::campaign::manifest::PointRecord;
use hspa_phy::turbo::AccuracyTier;

/// A conjunction of typed point filters; an empty filter matches every
/// point. Built with the `with_*` builders, applied with
/// [`matches`](Self::matches)/[`select`](Self::select).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryFilter {
    key: Option<u64>,
    snr: Option<(f64, f64)>,
    tier: Option<AccuracyTier>,
    converged: Option<bool>,
}

impl QueryFilter {
    /// The match-everything filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts to one point key (the FNV-1a 64 fingerprint hash).
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = Some(key);
        self
    }

    /// Restricts to points with `lo <= snr_db <= hi`.
    pub fn with_snr_range(mut self, lo: f64, hi: f64) -> Self {
        self.snr = Some((lo, hi));
        self
    }

    /// Restricts to points simulated at one accuracy tier.
    pub fn with_tier(mut self, tier: AccuracyTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Restricts by convergence state (`true`: Wilson CI met the
    /// precision target within budget).
    pub fn with_converged(mut self, converged: bool) -> Self {
        self.converged = Some(converged);
        self
    }

    /// Whether any restriction is set.
    pub fn is_empty(&self) -> bool {
        self.key.is_none() && self.snr.is_none() && self.tier.is_none() && self.converged.is_none()
    }

    /// Whether one manifest point passes every set restriction.
    pub fn matches(&self, point: &PointRecord) -> bool {
        if let Some(key) = self.key {
            if point.key != key {
                return false;
            }
        }
        if let Some((lo, hi)) = self.snr {
            if point.snr_db < lo || point.snr_db > hi {
                return false;
            }
        }
        if let Some(tier) = self.tier {
            if point.tier != tier {
                return false;
            }
        }
        if let Some(converged) = self.converged {
            if point.converged != converged {
                return false;
            }
        }
        true
    }

    /// The matching subset of `points`, in manifest order.
    pub fn select<'a>(&self, points: &'a [PointRecord]) -> Vec<&'a PointRecord> {
        points.iter().filter(|p| self.matches(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(key: u64, snr_db: f64, converged: bool, tier: AccuracyTier) -> PointRecord {
        PointRecord {
            index: 0,
            key,
            label: format!("p{key}"),
            snr_db,
            packets: 32,
            max_packets: 64,
            bler: 0.25,
            ci: (0.1, 0.4),
            rel_half_width: 0.2,
            converged,
            chunks: 2,
            chunks_from_store: 0,
            packets_from_store: 0,
            tier,
        }
    }

    #[test]
    fn filters_conjoin() {
        let points = vec![
            point(1, -2.0, true, AccuracyTier::Exact),
            point(2, 4.0, false, AccuracyTier::Exact),
            point(3, 9.0, true, AccuracyTier::Fast32),
        ];
        assert_eq!(QueryFilter::new().select(&points).len(), 3);
        assert!(QueryFilter::new().is_empty());

        let f = QueryFilter::new().with_snr_range(0.0, 10.0);
        assert!(!f.is_empty());
        assert_eq!(
            f.select(&points).iter().map(|p| p.key).collect::<Vec<_>>(),
            vec![2, 3]
        );

        let f = f.with_converged(true);
        assert_eq!(
            f.select(&points).iter().map(|p| p.key).collect::<Vec<_>>(),
            vec![3]
        );

        let f = QueryFilter::new().with_tier(AccuracyTier::Fast32);
        assert_eq!(
            f.select(&points).iter().map(|p| p.key).collect::<Vec<_>>(),
            vec![3]
        );

        assert_eq!(QueryFilter::new().with_key(2).select(&points).len(), 1);
        assert_eq!(QueryFilter::new().with_key(99).select(&points).len(), 0);
    }

    #[test]
    fn snr_bounds_are_inclusive() {
        let points = vec![point(1, 4.0, true, AccuracyTier::Exact)];
        assert_eq!(
            QueryFilter::new()
                .with_snr_range(4.0, 4.0)
                .select(&points)
                .len(),
            1
        );
        assert_eq!(
            QueryFilter::new()
                .with_snr_range(4.1, 9.0)
                .select(&points)
                .len(),
            0
        );
    }
}
