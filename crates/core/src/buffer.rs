//! LLR storage backends: where silicon faults meet the HARQ protocol.
//!
//! The paper's methodology maps every stored LLR bit onto a memory cell
//! and inverts bits that land on faulty cells. These buffers implement
//! [`hspa_phy::harq::LlrBuffer`] on top of [`silicon::FaultyMemory`], so
//! the HARQ process is oblivious to whether its storage is ideal,
//! quantized, defective, or ECC-protected.

use dsp::LlrQuantizer;
use hspa_phy::harq::LlrBuffer;
use silicon::ecc::Secded;
use silicon::fault_map::FaultMap;
use silicon::FaultyMemory;

/// Quantized but fault-free storage — isolates pure quantization loss.
///
/// # Example
///
/// ```
/// use resilience_core::QuantizedLlrBuffer;
/// use hspa_phy::harq::LlrBuffer;
/// use dsp::LlrQuantizer;
///
/// let mut buf = QuantizedLlrBuffer::new(16, LlrQuantizer::default());
/// buf.store(&vec![3.2; 16]);
/// let back = buf.load();
/// assert!((back[0] - 3.2).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedLlrBuffer {
    quantizer: LlrQuantizer,
    codes: Vec<u32>,
}

impl QuantizedLlrBuffer {
    /// Creates a zeroed buffer of `capacity` LLR words.
    pub fn new(capacity: usize, quantizer: LlrQuantizer) -> Self {
        Self {
            quantizer,
            codes: vec![quantizer.quantize(0.0); capacity],
        }
    }
}

impl LlrBuffer for QuantizedLlrBuffer {
    fn capacity(&self) -> usize {
        self.codes.len()
    }

    fn store(&mut self, llrs: &[f64]) {
        assert_eq!(llrs.len(), self.codes.len(), "buffer length mismatch");
        for (c, &l) in self.codes.iter_mut().zip(llrs) {
            *c = self.quantizer.quantize(l);
        }
    }

    fn load(&self) -> Vec<f64> {
        self.codes
            .iter()
            .map(|&c| self.quantizer.dequantize(c))
            .collect()
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.codes.iter().map(|&c| self.quantizer.dequantize(c)));
    }

    fn store_load(&mut self, data: &mut Vec<f64>) {
        assert_eq!(data.len(), self.codes.len(), "buffer length mismatch");
        // One sweep: quantize, store the code, hand the decoded value
        // straight back — exactly store + load_into without re-walking
        // the code array.
        let q = self.quantizer;
        for (c, l) in self.codes.iter_mut().zip(data.iter_mut()) {
            let w = q.quantize(*l);
            *c = w;
            *l = q.dequantize(w);
        }
    }

    fn reset(&mut self) {
        self.codes.fill(self.quantizer.quantize(0.0));
    }
}

/// LLR storage on a defective SRAM array — the paper's object of study.
///
/// Each LLR is quantized to a `W`-bit word and stored in a
/// [`FaultyMemory`] whose fault map marks defective cells; reads corrupt
/// the affected bits, exactly reproducing the Section 4 methodology.
#[derive(Debug, Clone)]
pub struct FaultyLlrBuffer {
    quantizer: LlrQuantizer,
    memory: FaultyMemory,
}

impl FaultyLlrBuffer {
    /// Creates the buffer over a fault map; the map's word width must
    /// match the quantizer's.
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree.
    pub fn new(map: FaultMap, quantizer: LlrQuantizer) -> Self {
        assert_eq!(
            map.bits_per_word(),
            quantizer.bits(),
            "fault map width must match quantizer width"
        );
        Self {
            quantizer,
            memory: FaultyMemory::new(map),
        }
    }

    /// Convenience: a defect-free array of the same geometry (reference
    /// system with quantization only).
    pub fn defect_free(capacity: usize, quantizer: LlrQuantizer) -> Self {
        let map = FaultMap::defect_free(capacity as u32, quantizer.bits());
        Self::new(map, quantizer)
    }

    /// The quantizer in use.
    pub fn quantizer(&self) -> &LlrQuantizer {
        &self.quantizer
    }

    /// Fraction of defective cells in the underlying array.
    pub fn defect_fraction(&self) -> f64 {
        self.memory.fault_map().defect_fraction()
    }
}

impl LlrBuffer for FaultyLlrBuffer {
    fn capacity(&self) -> usize {
        self.memory.words() as usize
    }

    fn store(&mut self, llrs: &[f64]) {
        assert_eq!(
            llrs.len(),
            self.memory.words() as usize,
            "buffer length mismatch"
        );
        // Bulk path: one tight quantize loop instead of a per-word
        // bounds-checked write (this runs once per HARQ attempt).
        let q = self.quantizer;
        self.memory.fill_from(llrs.iter().map(|&l| q.quantize(l)));
    }

    fn load(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.load_into(&mut out);
        out
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        // Fused corrupt + dequantize over plain slices (no per-element
        // capacity or bounds checks), applying exactly
        // `FaultMap::corrupt` per word. This is the hottest buffer loop:
        // it runs twice per HARQ combine.
        let data = self.memory.pristine_words();
        let q = self.quantizer;
        out.clear();
        out.resize(data.len(), 0.0);
        match self.memory.fault_map().masks() {
            None => {
                for (o, &v) in out.iter_mut().zip(data) {
                    *o = q.dequantize(v);
                }
            }
            Some((xor, clear, set)) => {
                for ((o, &v), ((&x, &c), &s)) in
                    out.iter_mut().zip(data).zip(xor.iter().zip(clear).zip(set))
                {
                    *o = q.dequantize(((v ^ x) & !c) | s);
                }
            }
        }
    }

    fn store_load(&mut self, data: &mut Vec<f64>) {
        assert_eq!(
            data.len(),
            self.memory.words() as usize,
            "buffer length mismatch"
        );
        // The HARQ combiner's write-then-read round trip as one sweep:
        // quantize, store the pristine word, and dequantize the
        // corrupted read-back in place — the same word and mask ops as
        // store + load_into, minus the second walk over the array.
        let q = self.quantizer;
        self.memory
            .write_read_all(data, |&l| q.quantize(l), |w| q.dequantize(w));
    }

    fn reset(&mut self) {
        let zero = self.quantizer.quantize(0.0);
        self.memory
            .fill_from(std::iter::repeat_n(zero, self.memory.words() as usize));
    }
}

/// SECDED-protected LLR storage — the conventional baseline of §6.2.
///
/// Every quantized word is Hamming-encoded before hitting the (faulty)
/// array and decoded (with single-error correction) on read. The array is
/// wider — `codeword_bits` per LLR — which is exactly the ≥35 % overhead
/// the paper charges against ECC.
#[derive(Debug, Clone)]
pub struct EccLlrBuffer {
    quantizer: LlrQuantizer,
    code: Secded,
    memory: FaultyMemory,
}

impl EccLlrBuffer {
    /// Creates the buffer over a fault map sized for the ECC codeword
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if the map's word width differs from the SECDED codeword
    /// width for the quantizer's data width.
    pub fn new(map: FaultMap, quantizer: LlrQuantizer) -> Self {
        let code = Secded::new(quantizer.bits());
        assert_eq!(
            map.bits_per_word(),
            code.codeword_bits(),
            "fault map width must match the ECC codeword width"
        );
        Self {
            quantizer,
            code,
            memory: FaultyMemory::new(map),
        }
    }

    /// The SECDED code in use.
    pub fn code(&self) -> &Secded {
        &self.code
    }
}

impl LlrBuffer for EccLlrBuffer {
    fn capacity(&self) -> usize {
        self.memory.words() as usize
    }

    fn store(&mut self, llrs: &[f64]) {
        assert_eq!(
            llrs.len(),
            self.memory.words() as usize,
            "buffer length mismatch"
        );
        for (addr, &l) in llrs.iter().enumerate() {
            let data = self.quantizer.quantize(l);
            self.memory.write(addr as u32, self.code.encode(data));
        }
    }

    fn load(&self) -> Vec<f64> {
        (0..self.memory.words())
            .map(|addr| {
                let (data, _outcome) = self.code.decode(self.memory.read(addr));
                self.quantizer.dequantize(data)
            })
            .collect()
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.memory.words()).map(|addr| {
            let (data, _outcome) = self.code.decode(self.memory.read(addr));
            self.quantizer.dequantize(data)
        }));
    }

    fn reset(&mut self) {
        let zero = self.code.encode(self.quantizer.quantize(0.0));
        for addr in 0..self.memory.words() {
            self.memory.write(addr, zero);
        }
    }
}

/// Adds non-persistent soft errors (radiation upsets, §3 of the paper)
/// on top of any other storage backend.
///
/// Unlike the static fault map, each [`LlrBuffer::load`] independently
/// flips every stored bit with probability `p_upset` — the behaviour of
/// transient single-event upsets. The RNG is owned and seeded, so runs
/// remain reproducible. Used by the soft-error extension study.
#[derive(Debug, Clone)]
pub struct TransientLlrBuffer<B> {
    inner: B,
    quantizer: LlrQuantizer,
    p_upset: f64,
    seed: u64,
    rng: std::cell::RefCell<rand::rngs::StdRng>,
}

impl<B: LlrBuffer> TransientLlrBuffer<B> {
    /// Wraps `inner` with per-read upset probability `p_upset` per bit.
    ///
    /// The quantizer must match the one used by `inner` so the upset is
    /// applied in the stored-word domain.
    ///
    /// # Panics
    ///
    /// Panics if `p_upset` is not in `[0, 1]`.
    pub fn new(inner: B, quantizer: LlrQuantizer, p_upset: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_upset), "upset probability in [0,1]");
        Self {
            inner,
            quantizer,
            p_upset,
            seed,
            rng: std::cell::RefCell::new(dsp::rng::seeded(seed)),
        }
    }

    /// The per-bit, per-read upset probability.
    pub fn p_upset(&self) -> f64 {
        self.p_upset
    }
}

impl<B: LlrBuffer> LlrBuffer for TransientLlrBuffer<B> {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn store(&mut self, llrs: &[f64]) {
        self.inner.store(llrs);
    }

    fn load(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.load_into(&mut out);
        out
    }

    fn load_into(&self, out: &mut Vec<f64>) {
        use rand::Rng;
        self.inner.load_into(out);
        if self.p_upset == 0.0 {
            return;
        }
        let bits = self.quantizer.bits();
        let mut rng = self.rng.borrow_mut();
        for l in out.iter_mut() {
            let mut code = self.quantizer.quantize(*l);
            for b in 0..bits {
                if rng.gen::<f64>() < self.p_upset {
                    code = dsp::fixed::flip_bit(code, b);
                }
            }
            *l = self.quantizer.dequantize(code);
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn begin_packet(&mut self, packet_seed: u64) {
        // Upset draws restart from a per-packet stream: results no longer
        // depend on how many packets this buffer served before, which is
        // what lets the Monte-Carlo engine shard packets across threads.
        *self.rng.borrow_mut() = dsp::rng::seeded(dsp::rng::derive_seed(self.seed, packet_seed));
        self.inner.begin_packet(packet_seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silicon::fault_map::FaultKind;
    use silicon::ProtectionPlan;

    fn q10() -> LlrQuantizer {
        LlrQuantizer::new(10, 32.0, dsp::LlrFormat::TwosComplement)
    }

    #[test]
    fn quantized_buffer_roundtrip_within_step() {
        let q = q10();
        let mut buf = QuantizedLlrBuffer::new(8, q);
        let v: Vec<f64> = (0..8).map(|i| i as f64 - 4.0).collect();
        buf.store(&v);
        for (a, b) in buf.load().iter().zip(&v) {
            assert!((a - b).abs() <= q.step());
        }
        buf.reset();
        assert!(buf.load().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn defect_free_faulty_buffer_equals_quantized() {
        let q = q10();
        let mut a = FaultyLlrBuffer::defect_free(32, q);
        let mut b = QuantizedLlrBuffer::new(32, q);
        let v: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) * 1.7).collect();
        a.store(&v);
        b.store(&v);
        assert_eq!(a.load(), b.load());
        assert_eq!(a.defect_fraction(), 0.0);
    }

    #[test]
    fn faults_perturb_stored_llrs() {
        let q = q10();
        let map = FaultMap::random_exact(64, 10, 64, FaultKind::Flip, 3);
        let mut buf = FaultyLlrBuffer::new(map, q);
        let v = vec![5.0; 64];
        buf.store(&v);
        let out = buf.load();
        let perturbed = out.iter().filter(|&&x| (x - 5.0).abs() > q.step()).count();
        assert!(
            perturbed > 0,
            "64 faults in 64 words must corrupt something"
        );
        // About 10% of faults hit the sign bit → large negative values.
        assert!(
            out.iter().any(|&x| x < 0.0),
            "expected at least one sign flip"
        );
    }

    #[test]
    fn msb_protected_array_never_flips_sign() {
        // Put ALL faults in the 6 unprotected LSBs: worst corruption of a
        // 4-MSB-protected hybrid. Sign bits survive by construction.
        let q = q10();
        let plan = ProtectionPlan::msb_protected(10, 4);
        let map = plan.fault_map_exact_unprotected(128, 400, FaultKind::Flip, 5);
        let mut buf = FaultyLlrBuffer::new(map, q);
        buf.store(&vec![10.0; 128]);
        let out = buf.load();
        assert!(
            out.iter().all(|&x| x > 0.0),
            "protected sign bits must never flip"
        );
        // Magnitude errors bounded by the unprotected bits' weight (2⁶-1
        // levels ≈ 63 steps ≈ 3.9 LLR units with clip 32).
        for &x in &out {
            assert!((x - 10.0).abs() <= 64.0 * q.step() + 1e-9);
        }
    }

    #[test]
    fn ecc_buffer_corrects_sparse_faults() {
        // One fault per word: SECDED corrects every single-bit error, so
        // the read-back equals the defect-free value.
        let q = q10();
        let code = Secded::new(10);
        let words = 50u32;
        let mut faults = Vec::new();
        for w in 0..words {
            faults.push(silicon::fault_map::Fault {
                word: w,
                bit: (w % code.codeword_bits() as u32) as u8,
                kind: FaultKind::Flip,
            });
        }
        let mut map = FaultMap::defect_free(words, code.codeword_bits());
        map.set_faults(faults);
        let mut buf = EccLlrBuffer::new(map, q);
        let v: Vec<f64> = (0..words).map(|i| (i as f64) * 0.5 - 12.0).collect();
        buf.store(&v);
        for (a, b) in buf.load().iter().zip(&v) {
            assert!((a - b).abs() <= q.step(), "{a} vs {b}");
        }
    }

    #[test]
    fn ecc_buffer_fails_on_double_faults() {
        // Two faults in one word exceed SECDED: corruption leaks through.
        let q = q10();
        let code = Secded::new(10);
        let mut map = FaultMap::defect_free(4, code.codeword_bits());
        map.set_faults(vec![
            silicon::fault_map::Fault {
                word: 0,
                bit: 2,
                kind: FaultKind::Flip,
            },
            silicon::fault_map::Fault {
                word: 0,
                bit: 7,
                kind: FaultKind::Flip,
            },
        ]);
        let mut buf = EccLlrBuffer::new(map, q);
        buf.store(&[8.0; 4]);
        let out = buf.load();
        // Words 1..4 are clean; word 0 is unreliable (double error).
        for &x in &out[1..] {
            assert!((x - 8.0).abs() <= q.step());
        }
    }

    #[test]
    fn reset_clears_all_backends() {
        let q = q10();
        let mut f = FaultyLlrBuffer::defect_free(8, q);
        f.store(&[3.0; 8]);
        f.reset();
        assert!(f.load().iter().all(|&x| x == 0.0));

        let code = Secded::new(10);
        let map = FaultMap::defect_free(8, code.codeword_bits());
        let mut e = EccLlrBuffer::new(map, q);
        e.store(&[3.0; 8]);
        e.reset();
        assert!(e.load().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transient_buffer_zero_rate_is_transparent() {
        let q = q10();
        let inner = QuantizedLlrBuffer::new(16, q);
        let mut buf = TransientLlrBuffer::new(inner, q, 0.0, 1);
        let v = vec![2.5; 16];
        buf.store(&v);
        let out = buf.load();
        for x in out {
            assert!((x - 2.5).abs() <= q.step());
        }
    }

    #[test]
    fn transient_buffer_upsets_vary_per_read() {
        let q = q10();
        let inner = QuantizedLlrBuffer::new(256, q);
        let mut buf = TransientLlrBuffer::new(inner, q, 0.05, 2);
        buf.store(&vec![4.0; 256]);
        let a = buf.load();
        let b = buf.load();
        assert_ne!(a, b, "transient upsets must differ between reads");
        // Roughly 5% of bits upset -> far fewer than half the words clean.
        let clean = a.iter().filter(|&&x| (x - 4.0).abs() <= q.step()).count();
        assert!(clean > 100 && clean < 256, "clean words {clean}");
    }

    #[test]
    fn transient_buffer_is_seed_deterministic() {
        let q = q10();
        let mk = |seed| {
            let inner = QuantizedLlrBuffer::new(64, q);
            let mut buf = TransientLlrBuffer::new(inner, q, 0.1, seed);
            buf.store(&vec![1.0; 64]);
            buf.load()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }

    #[test]
    #[should_panic(expected = "upset probability")]
    fn transient_buffer_rejects_bad_rate() {
        let q = q10();
        let _ = TransientLlrBuffer::new(QuantizedLlrBuffer::new(4, q), q, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn width_mismatch_rejected() {
        let map = FaultMap::defect_free(8, 12);
        let _ = FaultyLlrBuffer::new(map, q10());
    }
}
